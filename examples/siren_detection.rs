//! Emergency-sound detection: generate a small dataset with the paper's protocol,
//! train the CNN detector and compare it against the classical baselines.
//!
//! Run with: `cargo run --release --example siren_detection`

use ispot::sed::baseline::{EnergyDetector, SpectralTemplateDetector};
use ispot::sed::dataset::{Dataset, DatasetConfig};
use ispot::sed::detector::{CnnDetector, DetectorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;

    // A reduced version of the paper's 15 000-sample protocol (Sec. IV-A): events on
    // random trajectories mixed with urban noise at random SNR.
    let config = DatasetConfig {
        num_samples: 160,
        duration_s: 1.0,
        spatialize: false, // set to true for the full road-acoustics rendering
        snr_min_db: -15.0,
        snr_max_db: 5.0,
        background_fraction: 0.3,
        ..DatasetConfig::default()
    };
    println!("generating {} samples...", config.num_samples);
    let dataset = Dataset::generate(&config, 42)?;
    let (train, test) = dataset.split(0.75)?;
    println!(
        "train: {} samples, test: {} samples",
        train.len(),
        test.len()
    );

    // Train the low-complexity CNN detector.
    let mut cnn = CnnDetector::new(DetectorConfig::tiny(), fs)?;
    println!("training CNN ({} parameters)...", cnn.num_parameters());
    let losses = cnn.train(&train)?;
    println!(
        "loss: {:.3} -> {:.3} over {} epochs",
        losses.first().unwrap(),
        losses.last().unwrap(),
        losses.len()
    );

    // Evaluate against the classical baselines.
    let cnn_report = cnn.evaluate(&test)?;
    let template_report = SpectralTemplateDetector::new(fs)?.evaluate(&test)?;
    let energy_accuracy = EnergyDetector::new(fs)?.evaluate(&test)?;

    println!("\nCNN detector:\n{cnn_report}");
    println!("spectral-template baseline:\n{template_report}");
    println!("energy-threshold baseline (event detection accuracy): {energy_accuracy:.3}");
    Ok(())
}
