//! Emergency-sound detection: generate a small dataset with the paper's protocol,
//! train the CNN detector and compare it against the classical baselines.
//!
//! Run with: `cargo run --release --example siren_detection`

use ispot::core::prelude::*;
use ispot::sed::baseline::{EnergyDetector, SpectralTemplateDetector};
use ispot::sed::dataset::{Dataset, DatasetConfig};
use ispot::sed::detector::{CnnDetector, DetectorConfig};
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;

    // A reduced version of the paper's 15 000-sample protocol (Sec. IV-A): events on
    // random trajectories mixed with urban noise at random SNR.
    let config = DatasetConfig {
        num_samples: 160,
        duration_s: 1.0,
        spatialize: false, // set to true for the full road-acoustics rendering
        snr_min_db: -15.0,
        snr_max_db: 5.0,
        background_fraction: 0.3,
        ..DatasetConfig::default()
    };
    println!("generating {} samples...", config.num_samples);
    let dataset = Dataset::generate(&config, 42)?;
    let (train, test) = dataset.split(0.75)?;
    println!(
        "train: {} samples, test: {} samples",
        train.len(),
        test.len()
    );

    // Train the low-complexity CNN detector.
    let mut cnn = CnnDetector::new(DetectorConfig::tiny(), fs)?;
    println!("training CNN ({} parameters)...", cnn.num_parameters());
    let losses = cnn.train(&train)?;
    println!(
        "loss: {:.3} -> {:.3} over {} epochs",
        losses.first().unwrap(),
        losses.last().unwrap(),
        losses.len()
    );

    // Evaluate against the classical baselines.
    let cnn_report = cnn.evaluate(&test)?;
    let template_report = SpectralTemplateDetector::new(fs)?.evaluate(&test)?;
    let energy_accuracy = EnergyDetector::new(fs)?.evaluate(&test)?;

    println!("\nCNN detector:\n{cnn_report}");
    println!("spectral-template baseline:\n{template_report}");
    println!("energy-threshold baseline (event detection accuracy): {energy_accuracy:.3}");

    // Finally, run detection the way it is deployed: a perception engine fed by
    // a capture driver. The driver side delivers interleaved 16-bit PCM blocks;
    // the session converts and de-interleaves them straight into its frame
    // assembler and reports events by reference through a sink — zero heap
    // allocation per frame in steady state.
    let engine = PipelineBuilder::new(fs).channels(1).build_engine()?;
    let mut session = engine.open_session();
    let pcm: Vec<i16> = SirenSynthesizer::new(SirenKind::Yelp, fs)
        .synthesize(1.5)
        .iter()
        .map(|x| (x * 24_000.0).round().clamp(-32768.0, 32767.0) as i16)
        .collect();
    let mut counter = AlertCounter::new();
    for block in pcm.chunks(160) {
        // 10 ms capture blocks at 16 kHz
        session.push_input_with(AudioInput::interleaved(block, 1), &mut counter)?;
    }
    println!(
        "\nstreaming deployment: {} frames analysed, {} alert events ({} total)",
        counter.frames, counter.alerts, counter.events
    );
    Ok(())
}
