//! Quickstart: simulate a siren passing a microphone array on a road and run the full
//! acoustic-perception pipeline on the rendered audio.
//!
//! Run with: `cargo run --release --example quickstart`

use ispot::core::pipeline::{AcousticPerceptionPipeline, PipelineConfig};
use ispot::roadsim::prelude::*;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;

    // 1. Synthesize two seconds of a "wail" siren.
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);

    // 2. Describe the road scene: the emergency vehicle drives past the car at 20 m/s,
    //    4 m to the side; the car carries a 6-microphone circular array on its roof.
    let trajectory = Trajectory::linear(
        Position::new(-40.0, 4.0, 0.8),
        Position::new(40.0, 4.0, 0.8),
        20.0,
    );
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.4));
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, trajectory))
        .array(array.clone())
        .reflection(true)
        .air_absorption(true)
        .build()?;

    // 3. Render the microphone signals (Doppler, spreading, asphalt reflection and air
    //    absorption are all applied by the simulator).
    let audio = Simulator::new(scene)?.run()?;
    println!(
        "rendered {} channels x {:.1} s of road audio",
        audio.num_channels(),
        audio.len() as f64 / fs
    );

    // 4. Run the perception pipeline: detection, localization and tracking.
    let mut pipeline =
        AcousticPerceptionPipeline::with_array(PipelineConfig::default(), fs, &array)?;
    let events = pipeline.process_recording(&audio)?;

    println!("\nperception events:");
    for event in events.iter().filter(|e| e.is_alert()) {
        println!("  {}", event.summary());
    }
    println!("\nlatency breakdown:\n{}", pipeline.latency_report());
    Ok(())
}
