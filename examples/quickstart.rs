//! Quickstart: simulate a siren passing a microphone array on a road and run the full
//! acoustic-perception pipeline on the rendered audio.
//!
//! Run with: `cargo run --release --example quickstart`

use ispot::core::prelude::*;
use ispot::roadsim::prelude::*;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;

    // 1. Synthesize two seconds of a "wail" siren.
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);

    // 2. Describe the road scene: the emergency vehicle drives past the car at 15 m/s,
    //    6 m to the side; the car carries a 6-microphone roof array. The mics sit on
    //    an irregular hexagon (jittered angles/radii) — breaking the regular array's
    //    reflection symmetry suppresses the mirror lobes that would otherwise appear
    //    as phantom sources (see ARCHITECTURE.md, tracking subsystem).
    let trajectory = Trajectory::linear(
        Position::new(-30.0, 6.0, 0.8),
        Position::new(30.0, 6.0, 0.8),
        15.0,
    );
    let array = MicrophoneArray::irregular_hexagon(Position::new(0.0, 0.0, 1.4));
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, trajectory))
        .array(array.clone())
        .reflection(true)
        .air_absorption(true)
        .build()?;

    // 3. Render the microphone signals (Doppler, spreading, asphalt reflection and air
    //    absorption are all applied by the simulator).
    let audio = Simulator::new(scene)?.run()?;
    println!(
        "rendered {} channels x {:.1} s of road audio",
        audio.num_channels(),
        audio.len() as f64 / fs
    );

    // 4. Build the perception engine (validated config, shared detector +
    //    steering state) and open a session for this stream.
    let engine = PipelineBuilder::new(fs).array(&array).build_engine()?;
    let mut session = engine.open_session();

    // 5. Stream the recording in capture-sized chunks (10 ms blocks at 16 kHz),
    //    sinking events by reference as they fire — the deployment shape of the
    //    API. A `VecSink` collects them; an `AlertCounter` would keep the path
    //    allocation-free.
    let mut sink = VecSink::new();
    let block = 160;
    let mut start = 0;
    while start < audio.len() {
        let end = (start + block).min(audio.len());
        let chunk: Vec<&[f64]> = audio.channels().iter().map(|c| &c[start..end]).collect();
        session.push_chunk_with(&chunk, &mut sink)?;
        start = end;
    }

    println!("\nperception events:");
    for event in sink.events().iter().filter(|e| e.is_alert()) {
        println!("  {}", event.summary());
    }
    println!("\nlatency breakdown:\n{}", session.latency_report());
    Ok(())
}
