//! Multi-source road scene: a siren passes the array while an oncoming vehicle
//! masks it from the opposite lane. The scene is rendered source-parallel by
//! `ispot-roadsim`, pushed through a full perception session, and every alert is
//! scored against the bearing of the nearest simultaneously active source.
//!
//! Run with: `cargo run --release --example multi_source_scene`

use ispot::core::prelude::*;
use ispot::roadsim::prelude::*;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
use ispot::ssl::metrics::MultiSourceDoaScore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;
    let duration = 3.0;
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));

    // Source 1: a yelp siren driving past on the near lane, left to right.
    let siren_traj = Trajectory::linear(
        Position::new(-22.5, 6.0, 1.0),
        Position::new(22.5, 6.0, 1.0),
        15.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration);

    // Source 2: an oncoming broadband vehicle on the far lane, right to left.
    let masker_traj = Trajectory::linear(
        Position::new(20.0, -8.0, 1.0),
        Position::new(-20.0, -8.0, 1.0),
        13.0,
    );
    let masker: Vec<f64> =
        ispot::dsp::generator::NoiseSource::new(ispot::dsp::generator::NoiseKind::Pink, 17)
            .take((duration * fs) as usize)
            .collect();

    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(3.0))
        .source(SoundSource::new(masker, masker_traj.clone()).with_gain(0.25))
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()?;
    println!(
        "rendering {} sources x {} mics ({:.1} s) in parallel...",
        scene.sources.len(),
        array.len(),
        duration
    );
    let audio = Simulator::new(scene)?.run()?;

    // One engine, one session; events arrive by reference through the sink.
    let engine = PipelineBuilder::new(fs).array(&array).build_engine()?;
    let mut session = engine.open_session();
    let origin = array.centroid();
    let mut score = MultiSourceDoaScore::new();
    let trajectories = [siren_traj, masker_traj];
    let mut sink = FnSink(|event: &PerceptionEvent| {
        let Some(tracked) = event.tracked_azimuth_deg else {
            return;
        };
        // Bearings of every active source at the event time: the estimate is
        // scored against whichever one the localizer locked onto.
        let truths: Vec<f64> = trajectories
            .iter()
            .map(|t| {
                t.position_at(event.time_s)
                    .azimuth_from(origin)
                    .to_degrees()
            })
            .collect();
        let err = score.add(tracked, &truths).unwrap_or(f64::NAN);
        println!(
            "  t={:.2}s  {:8}  conf {:.2}  tracked {:+7.1} deg  nearest-truth err {:4.1} deg",
            event.time_s,
            event.class.label(),
            event.confidence,
            tracked,
            err
        );
    });
    session.process_recording_with(&audio, &mut sink)?;

    println!(
        "\n{} events scored, mean nearest-truth DoA error {:.1} deg ({}% within 10 deg)",
        score.count(),
        score.mean_error_deg().unwrap_or(f64::NAN),
        (score.fraction_within(10.0) * 100.0).round()
    );
    Ok(())
}
