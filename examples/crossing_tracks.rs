//! Multi-target tracking of two crossing emergency vehicles: run the full
//! perception session on the `crossing-vehicles` scenario (a wail siren and a
//! yelp ambulance on perpendicular roads whose bearings sweep towards each
//! other and cross) and print the two labelled tracks — stable identities,
//! lifecycle state and Kalman-smoothed bearings — as the scene unfolds.
//!
//! Run with: `cargo run --release --example crossing_tracks`

use ispot::core::prelude::*;
use ispot::roadsim::engine::Simulator;
use ispot::ssl::metrics::TrackIdentityScore;
use ispot_bench::scenarios;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = scenarios::crossing_vehicles(16_000.0);
    let fs = scenario.scene.sample_rate;
    println!("scene: {} — {}\n", scenario.name, scenario.description);

    let audio = Simulator::new(scenario.scene.clone())?.run()?;
    let engine = PipelineBuilder::new(fs)
        .array(&scenario.array)
        .frame_len(scenarios::FRAME_LEN)
        .hop(scenarios::HOP)
        .build_engine()?;
    let mut session = engine.open_session();

    // Stream the scene; every alert event carries the full track list.
    let origin = scenario.array.centroid();
    let truth_bearing = |truth: &scenarios::DoaTruth, t: f64| {
        truth
            .trajectory
            .position_at(t)
            .azimuth_from(origin)
            .to_degrees()
    };
    let mut identities = BTreeSet::new();
    let mut score = TrackIdentityScore::with_hysteresis(scenarios::IDENTITY_HYSTERESIS_DEG);
    println!("  time    truth wail   truth yelp   confirmed tracks (id @ bearing, rate)");
    let mut sink = FnSink(|event: &PerceptionEvent| {
        let truths: Vec<f64> = scenario
            .doa_truth
            .iter()
            .map(|d| truth_bearing(d, event.time_s))
            .collect();
        let mut line = format!(
            "  {:>5.2}s  {:>+9.1}°  {:>+9.1}°  ",
            event.time_s, truths[0], truths[1]
        );
        let mut frame_tracks = Vec::new();
        for track in event.tracks.confirmed() {
            identities.insert(track.id);
            frame_tracks.push((track.id, track.azimuth_deg));
            line.push_str(&format!(
                "[{} @ {:+7.1}°, {:+5.2}°/frame]  ",
                track.id, track.azimuth_deg, track.rate_deg_per_step
            ));
        }
        score.observe_frame(&frame_tracks, &truths);
        // Print every 4th frame to keep the trace readable.
        if event.frame_index.is_multiple_of(4) {
            println!("{line}");
        }
    });
    session.process_recording_with(&audio, &mut sink)?;

    println!("\ndistinct confirmed identities: {}", identities.len());
    println!(
        "identity swaps through the crossing: {}",
        score.swap_count()
    );
    if let Some(mean) = score.mean_error_deg() {
        println!("mean per-track bearing error: {mean:.1}°");
    }
    Ok(())
}
