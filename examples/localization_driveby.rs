//! Sound source localization of a drive-by: track the azimuth of a passing siren with
//! the low-complexity SRP-PHAT front-end and the Kalman tracker, and compare against
//! the ground-truth geometry.
//!
//! Run with: `cargo run --release --example localization_driveby`

use ispot::roadsim::prelude::*;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
use ispot::ssl::metrics::mean_angular_error_deg;
use ispot::ssl::srp_fast::SrpPhatFast;
use ispot::ssl::srp_phat::SrpConfig;
use ispot::ssl::tracking::AzimuthKalmanTracker;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;
    let speed = 15.0;
    let offset = 6.0;

    // The siren drives past the array from left to right.
    let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(4.0);
    let trajectory = Trajectory::linear(
        Position::new(-30.0, offset, 1.0),
        Position::new(30.0, offset, 1.0),
        speed,
    );
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, trajectory.clone()))
        .array(array.clone())
        .reflection(false)
        .air_absorption(false)
        .build()?;
    let audio = Simulator::new(scene)?.run()?;

    // Frame-by-frame localization with the low-complexity SRP-PHAT.
    let config = SrpConfig::default();
    let srp = SrpPhatFast::new(config, &array, fs)?;
    let mut tracker = AzimuthKalmanTracker::new(2.0, 64.0);
    let frame_len = config.frame_len;
    let hop = frame_len;
    let num_frames = (audio.len() - frame_len) / hop;

    println!("  time (s)   truth (deg)   SRP (deg)   tracked (deg)");
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for f in 1..num_frames {
        let start = f * hop;
        let frame: Vec<&[f64]> = audio
            .channels()
            .iter()
            .map(|c| &c[start..start + frame_len])
            .collect();
        let estimate = srp.localize(&frame)?;
        let tracked = tracker.update(estimate.azimuth_deg());
        let t = start as f64 / fs;
        // Ground-truth azimuth of the source at the time the frame was emitted
        // (ignoring the small propagation delay).
        let truth = trajectory
            .position_at(t)
            .azimuth_from(Position::new(0.0, 0.0, 1.0))
            .to_degrees();
        println!(
            "  {t:>7.2}   {truth:>10.1}   {:>9.1}   {:>12.1}",
            estimate.azimuth_deg(),
            tracked.azimuth_deg
        );
        estimates.push(tracked.azimuth_deg);
        truths.push(truth);
    }
    println!(
        "\nmean tracked azimuth error: {:.1} deg over {} frames",
        mean_angular_error_deg(&estimates, &truths),
        estimates.len()
    );
    Ok(())
}
