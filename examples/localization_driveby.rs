//! Sound source localization of a drive-by: run the full perception session
//! (detection -> low-complexity SRP-PHAT -> Kalman tracker) on a passing siren
//! and compare the tracked azimuth of every alert event against the
//! ground-truth geometry.
//!
//! Run with: `cargo run --release --example localization_driveby`

use ispot::core::prelude::*;
use ispot::roadsim::prelude::*;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
use ispot::ssl::metrics::mean_angular_error_deg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;
    let speed = 15.0;
    let offset = 6.0;

    // The siren drives past the array from left to right.
    let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(4.0);
    let trajectory = Trajectory::linear(
        Position::new(-30.0, offset, 1.0),
        Position::new(30.0, offset, 1.0),
        speed,
    );
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, trajectory.clone()))
        .array(array.clone())
        .reflection(false)
        .air_absorption(false)
        .build()?;
    let audio = Simulator::new(scene)?.run()?;

    // Run the full perception session on the rendered drive-by: the detector
    // gates localization, SRP-PHAT estimates the azimuth on every confident
    // detection, and the Kalman tracker smooths it. Events arrive by reference
    // through the sink as frames complete.
    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .frame_len(2048)
        .hop(2048)
        .build_engine()?;
    let mut session = engine.open_session();

    println!("  time (s)   truth (deg)   SRP (deg)   tracked (deg)");
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    let origin = Position::new(0.0, 0.0, 1.0);
    let mut sink = FnSink(|event: &PerceptionEvent| {
        let (Some(az), Some(tracked)) = (event.azimuth_deg, event.tracked_azimuth_deg) else {
            return;
        };
        // Ground-truth azimuth of the source at the time the frame was emitted
        // (ignoring the small propagation delay).
        let truth = trajectory
            .position_at(event.time_s)
            .azimuth_from(origin)
            .to_degrees();
        println!(
            "  {:>7.2}   {truth:>10.1}   {az:>9.1}   {tracked:>12.1}",
            event.time_s
        );
        estimates.push(tracked);
        truths.push(truth);
    });
    session.process_recording_with(&audio, &mut sink)?;
    println!(
        "\nmean tracked azimuth error: {:.1} deg over {} alert frames",
        mean_angular_error_deg(&estimates, &truths),
        estimates.len()
    );
    Ok(())
}
