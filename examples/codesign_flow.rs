//! Hardware–algorithm co-design: run the Fig. 4 workflow on a real trained detector.
//!
//! The example trains the small CNN detector, lowers it to the operator IR, explores
//! the compression design space against a RasPi-4B-class platform model and finally
//! applies the selected pruning/quantization to the *actual* network, reporting the
//! accuracy before and after.
//!
//! Run with: `cargo run --release --example codesign_flow`

use ispot::codesign::dse::{AnalyticEvaluator, CoDesignLoop, DesignSpace};
use ispot::codesign::ir::OpGraph;
use ispot::codesign::platform::EdgePlatform;
use ispot::nn::prune::{prune_magnitude, sparsity};
use ispot::nn::quantize::quantize_model;
use ispot::sed::dataset::{Dataset, DatasetConfig};
use ispot::sed::detector::{CnnDetector, DetectorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = 16_000.0;

    // 1. Train the baseline detector on a small dataset.
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_samples: 100,
            duration_s: 0.8,
            spatialize: false,
            snr_min_db: 0.0,
            snr_max_db: 15.0,
            background_fraction: 0.3,
            ..DatasetConfig::default()
        },
        11,
    )?;
    let (train, test) = dataset.split(0.7)?;
    let mut detector = CnnDetector::new(DetectorConfig::tiny(), fs)?;
    detector.train(&train)?;
    let baseline_accuracy = detector.evaluate(&test)?.accuracy();
    println!("baseline detector accuracy: {baseline_accuracy:.3}");
    println!("baseline parameters: {}", detector.num_parameters());

    // 2. Lower the network to the operator IR and explore the design space on the
    //    RasPi-4B-class platform model.
    let graph = OpGraph::from_sequential("sed-cnn", detector.model_mut(), &[1, 16, 16]);
    let platform = EdgePlatform::raspberry_pi4();
    println!(
        "baseline: {:.2} ms/frame, {:.0} kB weights (platform model `{}`)",
        platform.graph_latency_ms(&graph),
        graph.total_weight_bytes() as f64 / 1e3,
        platform.name
    );
    let mut evaluator = AnalyticEvaluator::new(graph.clone(), baseline_accuracy);
    let dse = CoDesignLoop::new(platform, DesignSpace::default(), baseline_accuracy - 0.1)?;
    let report = dse.run(&mut evaluator)?;
    println!(
        "selected design point: {:?}\n  estimated speedup {:.2}x, size reduction {:.1} %",
        report.best.point,
        report.speedup(),
        100.0 * report.size_reduction()
    );

    // 3. Apply the selected compression to the real network and re-measure accuracy.
    if report.best.point.prune_ratio > 0.0 {
        prune_magnitude(detector.model_mut(), report.best.point.prune_ratio)?;
    }
    if let Some(bits) = report.best.point.quantize_bits {
        let q = quantize_model(detector.model_mut(), bits)?;
        println!(
            "quantized to {bits} bits: {:.1} % smaller weights",
            100.0 * q.size_reduction()
        );
    }
    println!(
        "model sparsity after passes: {:.2}",
        sparsity(detector.model_mut())
    );
    let compressed_accuracy = detector.evaluate(&test)?.accuracy();
    println!("accuracy: baseline {baseline_accuracy:.3} -> compressed {compressed_accuracy:.3}");
    Ok(())
}
