//! # ispot
//!
//! Umbrella crate for the I-SPOT reproduction: real-time acoustic perception for
//! automotive applications. It re-exports every sub-crate so that examples and
//! downstream users can depend on a single package.
//!
//! See the individual crates for details:
//!
//! * [`dsp`] — signal-processing substrate (FFT, filters, delay lines)
//! * [`roadsim`] — road acoustics simulator (pyroadacoustics equivalent)
//! * [`features`] — acoustic feature extraction
//! * [`nn`] — minimal neural-network library
//! * [`sed`] — emergency sound event detection
//! * [`ssl`] — sound source localization
//! * [`codesign`] — hardware–algorithm co-design workflow
//! * [`core`] — the end-to-end real-time pipeline

#![forbid(unsafe_code)]

pub use ispot_codesign as codesign;
pub use ispot_core as core;
pub use ispot_dsp as dsp;
pub use ispot_features as features;
pub use ispot_nn as nn;
pub use ispot_roadsim as roadsim;
pub use ispot_sed as sed;
pub use ispot_ssl as ssl;
