//! Property-based tests for the ingestion layer: every sample format and layout
//! of the same physical signal must produce identical perception events, and the
//! sink-based and `Vec`-wrapper entry points must agree under any chunking.

use ispot::core::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

const FS: f64 = 16_000.0;

/// One engine for the whole file: template synthesis is the expensive part and
/// is exactly what sessions are meant to share.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        PipelineBuilder::new(FS)
            .channels(1)
            .build_engine()
            .expect("engine")
    })
}

/// A bank of deterministic signals with event content (sirens at various gains
/// over a noise floor), quantized to i16 so the same signal is exactly
/// representable in every supported format.
fn signal_bank() -> &'static Vec<Vec<i16>> {
    static BANK: OnceLock<Vec<Vec<i16>>> = OnceLock::new();
    BANK.get_or_init(|| {
        use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
        [SirenKind::Wail, SirenKind::Yelp, SirenKind::HiLow]
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                SirenSynthesizer::new(kind, FS)
                    .synthesize(0.45)
                    .iter()
                    .map(|x| {
                        let gain = 0.35 + 0.2 * i as f64;
                        (x * gain * 32_000.0).round().clamp(-32768.0, 32767.0) as i16
                    })
                    .collect()
            })
            .collect()
    })
}

/// Streams `pcm` into a fresh session, cut at `cuts` (cycled), in the format
/// chosen by `feed`, returning (frames, events).
fn stream_with<F>(pcm: &[i16], cuts: &[usize], mut feed: F) -> (usize, Vec<PerceptionEvent>)
where
    F: FnMut(&mut Session, &[i16], &mut Vec<PerceptionEvent>) -> usize,
{
    let mut session = engine().open_session();
    let mut events = Vec::new();
    let mut frames = 0;
    let mut pos = 0;
    let mut cut_iter = cuts.iter().cycle();
    while pos < pcm.len() {
        let take = (*cut_iter.next().unwrap()).min(pcm.len() - pos);
        frames += feed(&mut session, &pcm[pos..pos + take], &mut events);
        pos += take;
    }
    (frames, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite contract: interleaved-i16, interleaved-f32 and planar-f64
    /// presentations of the same signal produce identical events under
    /// independent random chunkings.
    #[test]
    fn sample_formats_and_layouts_produce_identical_events(
        which in 0usize..3,
        cuts_a in prop::collection::vec(1usize..1500, 1..8),
        cuts_b in prop::collection::vec(1usize..1500, 1..8),
    ) {
        let pcm = &signal_bank()[which];
        let (frames_ref, reference) = stream_with(pcm, &cuts_a, |s, block, events| {
            let as_f64: Vec<f64> = block.iter().map(|&v| v as f64 / 32768.0).collect();
            s.push_input_with(AudioInput::planar(&[&as_f64[..]]), events).unwrap()
        });
        prop_assert!(!reference.is_empty(), "bank signal fired no events");

        let (frames_i16, via_i16) = stream_with(pcm, &cuts_b, |s, block, events| {
            s.push_input_with(AudioInput::interleaved(block, 1), events).unwrap()
        });
        let (frames_f32, via_f32) = stream_with(pcm, &cuts_a, |s, block, events| {
            let as_f32: Vec<f32> = block.iter().map(|&v| (v as f64 / 32768.0) as f32).collect();
            s.push_input_with(AudioInput::interleaved(&as_f32, 1), events).unwrap()
        });

        prop_assert_eq!(frames_ref, frames_i16);
        prop_assert_eq!(frames_ref, frames_f32);
        prop_assert_eq!(&reference, &via_i16);
        prop_assert_eq!(&reference, &via_f32);
    }

    /// Sink-based and `Vec`-wrapper entry points agree for any chunking, and
    /// both match batch processing of the whole stream.
    #[test]
    fn sink_and_vec_entry_points_agree_chunk_size_invariantly(
        which in 0usize..3,
        cuts in prop::collection::vec(1usize..2500, 1..10),
    ) {
        let pcm = &signal_bank()[which];
        let as_f64: Vec<f64> = pcm.iter().map(|&v| v as f64 / 32768.0).collect();

        // Whole stream in one push through the sink API (the batch reference).
        let mut batch = engine().open_session();
        let mut batch_sink = VecSink::new();
        let batch_frames = batch
            .push_chunk_with(&[&as_f64[..]], &mut batch_sink)
            .unwrap();

        // Random chunking through the sink API...
        let (sink_frames, sink_events) = stream_with(pcm, &cuts, |s, block, events| {
            let chunk: Vec<f64> = block.iter().map(|&v| v as f64 / 32768.0).collect();
            s.push_chunk_with(&[&chunk[..]], events).unwrap()
        });
        // ...and the same chunking through the Vec convenience wrapper.
        let (vec_frames, vec_events) = stream_with(pcm, &cuts, |s, block, events| {
            let chunk: Vec<f64> = block.iter().map(|&v| v as f64 / 32768.0).collect();
            s.push_chunk_into(&[&chunk[..]], events).unwrap()
        });

        prop_assert_eq!(batch_frames, sink_frames);
        prop_assert_eq!(batch_frames, vec_frames);
        prop_assert_eq!(batch_sink.events(), &sink_events[..]);
        prop_assert_eq!(&sink_events, &vec_events);
    }
}
