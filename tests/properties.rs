//! Property-based tests (proptest) on the core data structures and invariants of the
//! DSP substrate, the feature extractors and the geometry/metric helpers.

use ispot::dsp::delay::{DelayLine, InterpolationKind};
use ispot::dsp::fft::Fft;
use ispot::dsp::level::{measure_snr, mix_at_snr, signal_power};
use ispot::dsp::ring::RingBuffer;
use ispot::dsp::window::{Window, WindowKind};
use ispot::roadsim::geometry::{reflected_path_length, Position};
use ispot::ssl::metrics::angular_error_deg;
use ispot::ssl::tracking::wrap_deg;
use proptest::prelude::*;

fn finite_signal(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_recovers_any_signal(signal in finite_signal(2..200)) {
        let n = signal.len();
        let fft = Fft::new(n);
        let spectrum = fft.forward_real(&signal).unwrap();
        let back = fft.inverse_real(&spectrum).unwrap();
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_holds_for_any_signal(signal in finite_signal(4..128)) {
        let n = signal.len();
        let fft = Fft::new(n);
        let spectrum = fft.forward_real(&signal).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn mix_at_snr_hits_any_requested_snr(
        signal in finite_signal(64..512),
        noise in finite_signal(64..512),
        snr_db in -40.0f64..20.0,
    ) {
        prop_assume!(signal_power(&signal) > 1e-6);
        prop_assume!(signal_power(&noise) > 1e-6);
        let (mix, scaled_noise) = mix_at_snr(&signal, &noise, snr_db).unwrap();
        prop_assert_eq!(mix.len(), signal.len());
        let measured = measure_snr(&signal, &scaled_noise).unwrap();
        prop_assert!((measured - snr_db).abs() < 1e-6);
    }

    #[test]
    fn delay_line_places_an_impulse_at_the_requested_delay(
        delay in 0usize..60,
        amplitude in 0.1f64..2.0,
    ) {
        let mut line = DelayLine::new(64, InterpolationKind::Linear).unwrap();
        let mut peak_index = None;
        for n in 0..128 {
            let x = if n == 0 { amplitude } else { 0.0 };
            let y = line.process(x, delay as f64).unwrap();
            if y.abs() > amplitude * 0.9 {
                peak_index.get_or_insert(n);
            }
        }
        prop_assert_eq!(peak_index, Some(delay));
    }

    #[test]
    fn ring_buffer_is_fifo_for_any_interleaving(
        chunks in prop::collection::vec(finite_signal(1..8), 1..12),
    ) {
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut rb = RingBuffer::new(total.max(1)).unwrap();
        let mut expected = Vec::new();
        for c in &chunks {
            rb.write(c).unwrap();
            expected.extend_from_slice(c);
        }
        let mut out = vec![0.0; total];
        rb.read(&mut out).unwrap();
        prop_assert_eq!(out, expected);
        prop_assert!(rb.is_empty());
    }

    #[test]
    fn window_coefficients_are_bounded(
        len in 1usize..512,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ][kind_idx];
        let w = Window::new(kind, len);
        prop_assert_eq!(w.len(), len);
        prop_assert!(w.coefficients().iter().all(|&c| (-1e-9..=1.0 + 1e-12).contains(&c)));
        prop_assert!(w.coherent_gain() <= 1.0 + 1e-12);
    }

    #[test]
    fn angular_error_is_a_bounded_symmetric_metric(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let e = angular_error_deg(a, b);
        prop_assert!((0.0..=180.0 + 1e-9).contains(&e));
        prop_assert!((angular_error_deg(b, a) - e).abs() < 1e-9);
        prop_assert!(angular_error_deg(a, a) < 1e-9);
    }

    #[test]
    fn wrap_deg_is_idempotent_and_in_range(angle in -2000.0f64..2000.0) {
        let w = wrap_deg(angle);
        prop_assert!((-180.0..=180.0).contains(&w));
        prop_assert!((wrap_deg(w) - w).abs() < 1e-9);
        // Wrapping preserves the direction (angular error to the original is zero).
        prop_assert!(angular_error_deg(w, angle) < 1e-6);
    }

    #[test]
    fn reflected_path_is_never_shorter_than_direct_path(
        sx in -50.0f64..50.0, sy in -50.0f64..50.0, sz in 0.0f64..5.0,
        mx in -50.0f64..50.0, my in -50.0f64..50.0, mz in 0.0f64..5.0,
    ) {
        let s = Position::new(sx, sy, sz);
        let m = Position::new(mx, my, mz);
        let direct = s.distance_to(m);
        let reflected = reflected_path_length(s, m);
        prop_assert!(reflected >= direct - 1e-9);
    }

    #[test]
    fn feature_matrix_standardize_is_zero_mean(rows in prop::collection::vec(finite_signal(3..4), 2..20)) {
        let cols = rows[0].len();
        prop_assume!(rows.iter().all(|r| r.len() == cols));
        let mut m = ispot::features::FeatureMatrix::from_rows(rows);
        m.standardize();
        for mean in m.column_means() {
            prop_assert!(mean.abs() < 1e-9);
        }
    }
}

// Chunk-size invariance of the streaming pipeline: however a recording is cut into
// push_chunk calls, the emitted events must be identical (frame index, class,
// confidence — byte-identical analysis) to batch `process_recording`. The pipeline
// runs a full detector per frame, so the case count is kept small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn streaming_any_chunking_matches_batch_events(
        cuts in prop::collection::vec(1usize..6144, 2..24),
        seed in 0usize..1000,
    ) {
        use ispot::core::api::PipelineBuilder;
        use ispot::core::pipeline::PipelineConfig;
        use ispot::sed::sirens::{SirenKind, SirenSynthesizer};

        let fs = 16_000.0;
        // Half a second of siren bracketed by quiet noise; the seed varies the
        // phase so different cases see different signals.
        let mut signal: Vec<f64> = (0..2000)
            .map(|i| 0.01 * ((i + seed) as f64 * 0.37).sin())
            .collect();
        signal.extend(SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(0.5));
        signal.extend((0..1000).map(|i| 0.01 * ((i * 7 + seed) as f64 * 0.11).sin()));
        let audio = ispot::roadsim::engine::MultichannelAudio::new(vec![signal.clone()], fs);

        let config = PipelineConfig::default();
        let engine = PipelineBuilder::new(fs).config(config).build_engine().unwrap();
        let mut batch = engine.open_session();
        let batch_events = batch.process_recording(&audio).unwrap();

        let mut streaming = engine.open_session();
        let mut events = Vec::new();
        let mut frames = 0usize;
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        while pos < signal.len() {
            let take = (*cut_iter.next().unwrap()).min(signal.len() - pos);
            frames += streaming
                .push_chunk_into(&[&signal[pos..pos + take]], &mut events)
                .unwrap();
            pos += take;
        }

        let expected_frames = if signal.len() < config.frame_len {
            0
        } else {
            (signal.len() - config.frame_len) / config.hop + 1
        };
        prop_assert_eq!(frames, expected_frames);
        prop_assert_eq!(events.len(), batch_events.len());
        for (a, b) in batch_events.iter().zip(&events) {
            prop_assert_eq!(a.frame_index, b.frame_index);
            prop_assert_eq!(a.class, b.class);
            prop_assert!((a.confidence - b.confidence).abs() == 0.0, "confidence drift");
            prop_assert!((a.time_s - b.time_s).abs() == 0.0, "timestamp drift");
        }
    }
}

// Multi-source linearity, carried through the full pipeline: the rendered 2-source
// scene is chunk-size invariant end to end — however the multichannel audio is cut
// into streaming pushes, the session emits byte-identical events. The scene is
// rendered once (it is deterministic) and shared across proptest cases.
mod multi_source_pipeline {
    use super::*;
    use ispot::core::api::PipelineBuilder;
    use ispot::roadsim::engine::{MultichannelAudio, Simulator};
    use ispot::roadsim::geometry::Position;
    use ispot::roadsim::microphone::MicrophoneArray;
    use ispot::roadsim::scene::SceneBuilder;
    use ispot::roadsim::source::SoundSource;
    use ispot::roadsim::trajectory::Trajectory;
    use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
    use std::sync::OnceLock;

    fn array() -> MicrophoneArray {
        MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0))
    }

    fn rendered_scene() -> &'static MultichannelAudio {
        static AUDIO: OnceLock<MultichannelAudio> = OnceLock::new();
        AUDIO.get_or_init(|| {
            let fs = 16_000.0;
            let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(1.0);
            let masker: Vec<f64> =
                ispot::dsp::generator::NoiseSource::new(ispot::dsp::generator::NoiseKind::Pink, 5)
                    .take(16_000)
                    .collect();
            let scene = SceneBuilder::new(fs)
                .source(
                    SoundSource::new(
                        siren,
                        Trajectory::linear(
                            Position::new(-8.0, 5.0, 1.0),
                            Position::new(8.0, 5.0, 1.0),
                            16.0,
                        ),
                    )
                    .with_gain(2.0),
                )
                .source(
                    SoundSource::new(masker, Trajectory::fixed(Position::new(10.0, -7.0, 0.8)))
                        .with_gain(0.2),
                )
                .array(array())
                .reflection(true)
                .air_absorption(false)
                .filter_taps(33)
                .build()
                .expect("valid scene");
            Simulator::new(scene)
                .expect("valid simulator")
                .run()
                .expect("render succeeds")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn multi_source_scene_is_chunk_invariant_through_the_pipeline(
            cuts in prop::collection::vec(1usize..5000, 2..16),
        ) {
            let audio = rendered_scene();
            let fs = audio.sample_rate();
            let engine = PipelineBuilder::new(fs).array(&array()).build_engine().unwrap();

            let mut batch = engine.open_session();
            let batch_events = batch.process_recording(audio).unwrap();
            prop_assert!(!batch_events.is_empty(), "scene produces events");

            let mut streaming = engine.open_session();
            let mut events = Vec::new();
            let mut pos = 0usize;
            let mut cut_iter = cuts.iter().cycle();
            let len = audio.len();
            while pos < len {
                let take = (*cut_iter.next().unwrap()).min(len - pos);
                let chunk: Vec<&[f64]> = audio
                    .channels()
                    .iter()
                    .map(|ch| &ch[pos..pos + take])
                    .collect();
                streaming.push_chunk_into(&chunk, &mut events).unwrap();
                pos += take;
            }

            prop_assert_eq!(events.len(), batch_events.len());
            for (a, b) in batch_events.iter().zip(&events) {
                prop_assert_eq!(a, b);
            }
        }
    }
}
