//! Integration tests spanning the whole workspace: simulation → features → detection →
//! localization → pipeline → co-design.

use ispot::codesign::dse::{AnalyticEvaluator, CoDesignLoop, DesignSpace};
use ispot::codesign::ir::OpGraph;
use ispot::codesign::platform::EdgePlatform;
use ispot::core::api::PipelineBuilder;
use ispot::core::mode::OperatingMode;
use ispot::roadsim::prelude::*;
use ispot::sed::baseline::SpectralTemplateDetector;
use ispot::sed::dataset::{Dataset, DatasetConfig};
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
use ispot::sed::EventClass;
use ispot::ssl::metrics::angular_error_deg;
use ispot::ssl::srp_fast::SrpPhatFast;
use ispot::ssl::srp_phat::{SrpConfig, SrpPhat};

const FS: f64 = 16_000.0;

fn render_static_siren(
    azimuth_deg: f64,
    mics: usize,
) -> (ispot::roadsim::engine::MultichannelAudio, MicrophoneArray) {
    let siren = SirenSynthesizer::new(SirenKind::Wail, FS).synthesize(1.0);
    let az = azimuth_deg.to_radians();
    let array = MicrophoneArray::circular(mics, 0.2, Position::new(0.0, 0.0, 1.0));
    let scene = SceneBuilder::new(FS)
        .source(SoundSource::new(
            siren,
            Trajectory::fixed(Position::new(18.0 * az.cos(), 18.0 * az.sin(), 1.0)),
        ))
        .array(array.clone())
        .reflection(false)
        .air_absorption(false)
        .build()
        .unwrap();
    (Simulator::new(scene).unwrap().run().unwrap(), array)
}

#[test]
fn simulated_siren_is_detected_and_localized_end_to_end() {
    let truth = -60.0;
    let (audio, array) = render_static_siren(truth, 6);
    let mut pipeline = PipelineBuilder::new(FS).array(&array).build().unwrap();
    let events = pipeline.process_recording(&audio).unwrap();
    let alerts: Vec<_> = events.iter().filter(|e| e.is_alert()).collect();
    assert!(!alerts.is_empty(), "the siren was not detected");
    let mean_azimuth: f64 =
        alerts.iter().filter_map(|e| e.azimuth_deg).sum::<f64>() / alerts.len() as f64;
    assert!(
        angular_error_deg(mean_azimuth, truth) < 20.0,
        "mean azimuth {mean_azimuth} vs truth {truth}"
    );
}

#[test]
fn conventional_and_fast_srp_agree_on_simulated_scenes() {
    for &truth in &[25.0, -120.0] {
        let (audio, array) = render_static_siren(truth, 6);
        let config = SrpConfig::default();
        let conventional = SrpPhat::new(config, &array, FS).unwrap();
        let fast = SrpPhatFast::new(config, &array, FS).unwrap();
        let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[8192..10240]).collect();
        let map_a = conventional.compute_map(&frame).unwrap();
        let map_b = fast.compute_map(&frame).unwrap();
        assert!(map_a.correlation(&map_b) > 0.97);
        let (_, az_a) = map_a.peak().expect("non-empty map");
        let (_, az_b) = map_b.peak().expect("non-empty map");
        assert!(angular_error_deg(az_a, az_b) <= 4.0);
        assert!(fast.coefficient_reduction() >= 0.5);
    }
}

#[test]
fn detector_separates_dataset_classes_from_background() {
    let dataset = Dataset::generate(
        &DatasetConfig {
            num_samples: 30,
            duration_s: 0.8,
            spatialize: false,
            snr_min_db: 5.0,
            snr_max_db: 15.0,
            background_fraction: 0.4,
            ..DatasetConfig::default()
        },
        3,
    )
    .unwrap();
    let detector = SpectralTemplateDetector::new(FS).unwrap();
    let report = detector.evaluate(&dataset).unwrap();
    assert!(
        report.event_detection_accuracy() > 0.7,
        "event-detection accuracy {}",
        report.event_detection_accuracy()
    );
}

#[test]
fn park_mode_saves_work_but_still_detects_events() {
    // Quiet background followed by a loud horn.
    let mut signal: Vec<f64> = ispot::sed::noise::UrbanNoiseSynthesizer::new(FS, 2)
        .synthesize(2.0)
        .iter()
        .map(|x| x * 0.02)
        .collect();
    signal.extend(ispot::sed::sirens::synthesize_event(
        EventClass::CarHorn,
        FS,
        1.0,
    ));
    let audio = ispot::roadsim::engine::MultichannelAudio::new(vec![signal], FS);
    let run = |mode: OperatingMode| {
        let mut pipeline = PipelineBuilder::new(FS).mode(mode).build().unwrap();
        let events = pipeline.process_recording(&audio).unwrap();
        (pipeline.analysis_duty_cycle(), events)
    };
    let (drive_duty, drive_events) = run(OperatingMode::Drive);
    let (park_duty, park_events) = run(OperatingMode::Park);
    assert!(park_duty < drive_duty);
    assert!(drive_events.iter().any(|e| e.is_alert()));
    assert!(park_events.iter().any(|e| e.is_alert()));
}

#[test]
fn codesign_loop_runs_on_the_real_detector_graph() {
    // Build the IR straight from an (untrained) detector network and make sure the
    // exploration finds a feasible faster point on every platform model.
    let mut detector =
        ispot::sed::detector::CnnDetector::new(ispot::sed::detector::DetectorConfig::tiny(), FS)
            .unwrap();
    let graph = OpGraph::from_sequential("sed-cnn", detector.model_mut(), &[1, 16, 16]);
    assert_eq!(graph.total_parameters(), detector.num_parameters());
    for platform in [
        EdgePlatform::raspberry_pi4(),
        EdgePlatform::microcontroller(),
        EdgePlatform::accelerator(),
    ] {
        let mut evaluator = AnalyticEvaluator::new(graph.clone(), 0.9);
        let report = CoDesignLoop::new(platform, DesignSpace::default(), 0.8)
            .unwrap()
            .run(&mut evaluator)
            .unwrap();
        assert!(report.speedup() >= 1.0);
        assert!(report.size_reduction() >= 0.0);
        assert!(report.best.accuracy >= 0.8);
    }
}

#[test]
fn dataset_statistics_match_the_protocol() {
    let config = DatasetConfig {
        num_samples: 40,
        duration_s: 0.5,
        spatialize: false,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(&config, 9).unwrap();
    assert_eq!(dataset.len(), 40);
    for sample in dataset.samples() {
        assert_eq!(sample.audio.len(), (0.5 * FS) as usize);
        if let Some(snr) = sample.snr_db {
            assert!((-30.0..=0.0).contains(&snr));
        } else {
            assert_eq!(sample.label, EventClass::Background);
        }
    }
    // The paper-scale protocol is exposed but not generated here (it is exercised by
    // `exp_dataset --full`).
    assert_eq!(DatasetConfig::paper_protocol().num_samples, 15_000);
}
