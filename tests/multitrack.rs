//! Multi-target tracking invariants at the whole-pipeline level:
//!
//! * **equivalence pin** — on a single-source scene, the multi-track path must
//!   reproduce the pre-multi-track behaviour exactly: `azimuth_deg` is the SRP
//!   peak and `tracked_azimuth_deg` equals what a bare [`AzimuthKalmanTracker`]
//!   produces when fed those very peaks (the old single-track stage was exactly
//!   that filter);
//! * **chunk-size invariance of identities** — however the audio is cut into
//!   streaming pushes, every event's track list (ids included) is identical.

use ispot::core::api::PipelineBuilder;
use ispot::roadsim::engine::{MultichannelAudio, Simulator};
use ispot::roadsim::geometry::Position;
use ispot::roadsim::microphone::MicrophoneArray;
use ispot::roadsim::scene::SceneBuilder;
use ispot::roadsim::source::SoundSource;
use ispot::roadsim::trajectory::Trajectory;
use ispot::sed::sirens::{SirenKind, SirenSynthesizer};
use ispot::ssl::tracking::AzimuthKalmanTracker;
use proptest::prelude::*;
use std::sync::OnceLock;

fn array() -> MicrophoneArray {
    MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0))
}

/// One deterministic single-source drive-by, rendered once and shared.
fn rendered_single_source() -> &'static MultichannelAudio {
    static AUDIO: OnceLock<MultichannelAudio> = OnceLock::new();
    AUDIO.get_or_init(|| {
        let fs = 16_000.0;
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.5);
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::linear(
                    Position::new(-12.0, 8.0, 1.0),
                    Position::new(12.0, 8.0, 1.0),
                    16.0,
                ),
            ))
            .array(array())
            .reflection(false)
            .air_absorption(false)
            .build()
            .expect("valid scene");
        Simulator::new(scene)
            .expect("valid simulator")
            .run()
            .expect("render succeeds")
    })
}

/// A clean static single-source scene (no reflections, stable bearing): here
/// the multi-track path must be indistinguishable from the old single-track
/// stage, frame for frame, bit for bit.
fn rendered_static_source() -> &'static MultichannelAudio {
    static AUDIO: OnceLock<MultichannelAudio> = OnceLock::new();
    AUDIO.get_or_init(|| {
        let fs = 16_000.0;
        let az = 40.0_f64.to_radians();
        let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(1.5);
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                siren,
                Trajectory::fixed(Position::new(18.0 * az.cos(), 18.0 * az.sin(), 1.0)),
            ))
            .array(array())
            .reflection(false)
            .air_absorption(false)
            .build()
            .expect("valid scene");
        Simulator::new(scene)
            .expect("valid simulator")
            .run()
            .expect("render succeeds")
    })
}

/// The equivalence pin as a plain test: the multi-track path on a single-source
/// scene reports exactly what the old single-tracker stage would have.
#[test]
fn single_source_multi_track_path_matches_single_tracker() {
    let audio = rendered_static_source();
    let fs = audio.sample_rate();
    let mut session = PipelineBuilder::new(fs)
        .array(&array())
        .build()
        .expect("valid pipeline");
    let events = session.process_recording(audio).expect("runs");
    assert!(!events.is_empty(), "scene produces events");
    // The pre-PR tracking stage was a bare constant-velocity Kalman filter fed
    // with the per-frame SRP peak (the same process/measurement noise the
    // default TrackingConfig carries). Replaying the emitted raw peaks through
    // that filter must reproduce every tracked azimuth bit for bit.
    let mut reference = AzimuthKalmanTracker::new(1.0, 36.0);
    let mut compared = 0;
    for event in &events {
        let (Some(raw), Some(tracked)) = (event.azimuth_deg, event.tracked_azimuth_deg) else {
            continue;
        };
        let expected = reference.update(raw).azimuth_deg;
        assert_eq!(
            tracked, expected,
            "t={:.2}s: multi-track best {tracked} != single-tracker {expected}",
            event.time_s
        );
        compared += 1;
        // And the track list view agrees with the legacy fields: one dominant
        // track carrying the same bearing.
        assert!(!event.tracks.is_empty());
        assert_eq!(event.tracks[0].azimuth_deg, tracked);
    }
    assert!(compared > 10, "only {compared} events compared");
    // A single source must never fork identities: every event's best track is
    // the same id.
    let first_id = events
        .iter()
        .find_map(|e| e.tracks.first().map(|t| t.id))
        .expect("an event with a track");
    for event in &events {
        if let Some(best) = event.tracks.first() {
            assert_eq!(best.id, first_id, "best-track identity changed");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunk-size invariance of the full multi-track event payload: however the
    /// recording is cut into streaming pushes, the emitted events — including
    /// every track snapshot and its id — are byte-identical to the batch run.
    #[test]
    fn track_ids_are_chunk_size_invariant(
        cuts in prop::collection::vec(1usize..5000, 2..16),
    ) {
        let audio = rendered_single_source();
        let fs = audio.sample_rate();
        let engine = PipelineBuilder::new(fs).array(&array()).build_engine().unwrap();

        let mut batch = engine.open_session();
        let batch_events = batch.process_recording(audio).unwrap();
        prop_assert!(!batch_events.is_empty());

        let mut streaming = engine.open_session();
        let mut events = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        let len = audio.len();
        while pos < len {
            let take = (*cut_iter.next().unwrap()).min(len - pos);
            let chunk: Vec<&[f64]> = audio
                .channels()
                .iter()
                .map(|ch| &ch[pos..pos + take])
                .collect();
            streaming.push_chunk_into(&chunk, &mut events).unwrap();
            pos += take;
        }

        prop_assert_eq!(events.len(), batch_events.len());
        for (a, b) in batch_events.iter().zip(&events) {
            // PartialEq on PerceptionEvent covers the track list, but compare
            // the identity-bearing fields explicitly for a sharp message.
            let ta: Vec<_> = a.tracks.iter().map(|t| (t.id, t.azimuth_deg, t.status)).collect();
            let tb: Vec<_> = b.tracks.iter().map(|t| (t.id, t.azimuth_deg, t.status)).collect();
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a, b);
        }
    }
}
