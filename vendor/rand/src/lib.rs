//! Offline stand-in for the `rand` crate (0.9 API surface used by this workspace).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the subset of
//! [`Rng`] the codebase calls: `random::<f64>()`, `random::<bool>()`, and
//! `random_range` over half-open and inclusive `f64` / integer ranges. The generator
//! is SplitMix64 — statistically fine for simulation and dataset seeding, *not*
//! cryptographic. Deterministic for a given seed, which is all the experiment
//! protocol requires. Swap for crates.io `rand` when the registry is reachable; the
//! call sites use only the stable 0.9 names.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A seedable pseudo-random generator (SplitMix64 core).
    ///
    /// The real `rand::rngs::StdRng` is ChaCha-based; this stand-in trades quality
    /// guarantees for zero dependencies. Sequences are deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero state pathologies by pre-mixing the seed once.
        let mut rng = StdRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's "standard" distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + u * (b - a)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
                // irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                if a == <$t>::MIN && b == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (b - a) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                a + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64, i32, i64);

/// The subset of the `rand::Rng` trait used by this workspace.
pub trait Rng {
    /// Draws one value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(-3.0..15.0);
            assert!((-3.0..15.0).contains(&y));
            let z = rng.random_range(-30.0..=0.0);
            assert!((-30.0..=0.0).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }
}
