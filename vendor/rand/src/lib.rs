//! Offline stand-in for the `rand` crate (0.9 API surface used by this workspace).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the subset of
//! [`Rng`] the codebase calls: `random::<f64>()`, `random::<bool>()`, and
//! `random_range` over half-open and inclusive `f64` / integer ranges. The generator
//! is SplitMix64 — statistically fine for simulation and dataset seeding, *not*
//! cryptographic. Deterministic for a given seed, which is all the experiment
//! protocol requires. Swap for crates.io `rand` when the registry is reachable; the
//! call sites use only the stable 0.9 names.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A seedable pseudo-random generator (SplitMix64 core).
    ///
    /// The real `rand::rngs::StdRng` is ChaCha-based; this stand-in trades quality
    /// guarantees for zero dependencies. Sequences are deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from a 64-bit seed — alias for
    /// [`seed_from_u64`](Self::seed_from_u64), mirroring the real crate's
    /// `SeedableRng::from_seed` entry point (which takes a seed byte array;
    /// this stand-in keeps the ergonomic `u64` form).
    ///
    /// The mapping from seed to stream is a **stable contract**: the scenario
    /// matrix persists bare `u64` seeds in reports and reconstructs scenes
    /// from them across runs and machines, so the first draws for a given
    /// seed must never change. The `from_seed_streams_are_pinned` test pins
    /// the first 16 `u64` draws for two seeds.
    fn from_seed(seed: u64) -> Self {
        Self::seed_from_u64(seed)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero state pathologies by pre-mixing the seed once.
        let mut rng = StdRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's "standard" distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + u * (b - a)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
                // irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                if a == <$t>::MIN && b == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (b - a) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                a + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64, i32, i64);

/// The subset of the `rand::Rng` trait used by this workspace.
pub trait Rng {
    /// Draws one value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn from_seed_is_an_alias_of_seed_from_u64() {
        let mut a = StdRng::from_seed(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn from_seed_streams_are_pinned() {
        // Cross-run stability contract: persisted u64 seeds must reproduce
        // the same streams forever. If this test fails, the generator change
        // silently re-rolls every seeded scenario matrix — don't "fix" the
        // constants, fix the generator.
        let pinned: [(u64, [u64; 16]); 2] = [
            (
                0x0,
                [
                    0x06C45D188009454F,
                    0xF88BB8A8724C81EC,
                    0x1B39896A51A8749B,
                    0x53CB9F0C747EA2EA,
                    0x2C829ABE1F4532E1,
                    0xC584133AC916AB3C,
                    0x3EE5789041C98AC3,
                    0xF3B8488C368CB0A6,
                    0x657EECDD3CB13D09,
                    0xC2D326E0055BDEF6,
                    0x8621A03FE0BBDB7B,
                    0x8E1F7555983AA92F,
                    0xB54E0F1600CC4D19,
                    0x84BB3F97971D80AB,
                    0x7D29825C75521255,
                    0xC3CF17102B7F7F86,
                ],
            ),
            (
                0xDEAD_BEEF,
                [
                    0x021FBC2F8E1CFC1D,
                    0x7466CE737BE16790,
                    0x3BFA8764F685BD1C,
                    0xAB203E503CB55B3F,
                    0x5A2FDC2BF68CEDB3,
                    0xB30A4CCF430B1B5A,
                    0x0A90415039BD5985,
                    0x26AE50847745EB7E,
                    0xE239ED306D9B1929,
                    0xFB7D9A8D444D41BC,
                    0x1BB52E523960D559,
                    0xCF8631B40292B5D5,
                    0xF6186C41B838B122,
                    0x432497FFB78C1173,
                    0x138BE7AFF970BF01,
                    0x9539D89821A47C8A,
                ],
            ),
        ];
        for (seed, expected) in pinned {
            let mut rng = StdRng::from_seed(seed);
            for (i, &want) in expected.iter().enumerate() {
                let got: u64 = rng.random();
                assert_eq!(got, want, "seed {seed:#X} draw {i}");
            }
        }
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(-3.0..15.0);
            assert!((-3.0..15.0).contains(&y));
            let z = rng.random_range(-30.0..=0.0);
            assert!((-30.0..=0.0).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }
}
