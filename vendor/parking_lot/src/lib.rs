//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind the `parking_lot` API shape the workspace uses:
//! `Mutex::new` and an infallible `lock()` returning the guard directly (poisoning is
//! ignored, matching parking_lot semantics where poisoning does not exist). Swap for
//! the real crate when the registry is reachable.

#![warn(missing_docs)]

use std::sync::MutexGuard;

/// A mutex with `parking_lot`-style (non-poisoning) `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard. Never panics on poisoning: a panic in
    /// another thread while holding the lock does not prevent future locking
    /// (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mutates_in_place() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
