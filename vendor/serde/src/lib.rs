//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros from the vendored
//! `serde_derive` so that `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile without network access. No
//! serialization machinery is provided — nothing in the workspace calls a serializer
//! yet. Replace with the real crates.io `serde` when the registry is reachable.

pub use serde_derive::{Deserialize, Serialize};
