//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `measurement_time`,
//! `bench_function`, [`Bencher::iter`], `criterion_group!`, `criterion_main!` — with
//! a simple but honest wall-clock harness: per sample the closure is run in a batch
//! sized from a warm-up calibration, and the report prints min / mean / median / max
//! per-iteration time. No statistical outlier analysis, no HTML report. Swap for
//! crates.io `criterion` when the registry is reachable; the bench sources compile
//! against either.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export: benches commonly use `criterion::black_box`; delegate to std.
pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    run_benches: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`; Criterion's
        // contract is to skip measurement entirely in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            run_benches: !test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if self.run_benches {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let run = self.run_benches;
        let mut group = BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        };
        if run {
            group.bench_function(id, f);
        }
        self
    }
}

/// A group of benchmarks sharing sample-count and measurement-time settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        if !self.criterion.run_benches {
            return self;
        }
        // Calibration pass: find how many iterations fit in ~1 ms so that short
        // closures are batched and Instant overhead stays negligible.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).max(1) as u64;
        // Split the measurement budget across the requested number of samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let batches_per_sample =
            (per_sample.as_nanos() / (per_iter.as_nanos() * batch as u128)).max(1) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: batch * batches_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} min {}  mean {}  median {}  max {}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(median),
            fmt_time(max),
            self.sample_size,
            batch * batches_per_sample,
        );
        self
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Timing handle passed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function registered in this group.
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test_group");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn harness_runs_without_panicking() {
        // Note: under `cargo test` the arg scan sees `--test`-less args for unit
        // tests, so force-run by constructing Criterion manually.
        let mut c = Criterion { run_benches: true };
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
