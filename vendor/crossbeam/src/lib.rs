//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset the workspace uses — [`channel::bounded`]
//! with blocking `send`/`recv`, `try_recv` and iteration — implemented over
//! `std::sync::mpsc::sync_channel`. Semantics match crossbeam for the SPSC patterns
//! used here (bounded back-pressure, disconnect on drop). Swap for the real crate
//! when the registry is reachable.

#![warn(missing_docs)]

/// Multi-producer, single-consumer bounded channels.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver has disconnected; the
    /// unsent message is returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and every
    /// sender has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender has disconnected and no messages remain.
        Disconnected,
    }

    /// The sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it if the receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages, blocking between them, until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Blocking iterator over received messages.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a bounded channel with space for `capacity` in-flight messages
    /// (clamped to at least 1 so `send` + `recv` cannot deadlock in SPSC use).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips_in_order() {
        let (tx, rx) = channel::bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = channel::bounded::<i32>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
