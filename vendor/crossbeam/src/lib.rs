//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset the workspace uses — [`channel::bounded`]
//! with blocking `send`/`recv`, non-blocking `try_send`/`try_recv`, deadline-bounded
//! `recv_timeout`, a **cloneable receiver** (real crossbeam channels are MPMC; the
//! serving layer's worker pool shares one ready-queue receiver across threads) and
//! iteration — implemented over `std::sync::mpsc::sync_channel`. Semantics match
//! crossbeam for the patterns used here (bounded back-pressure, typed full-queue
//! rejection, disconnect on drop). Swap for the real crate when the registry is
//! reachable.

#![warn(missing_docs)]

/// Multi-producer, multi-consumer bounded channels.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver has disconnected; the
    /// unsent message is returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; the unsent message is returned to
    /// the caller in both cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel's bounded buffer is full — back-pressure, retry later.
        Full(T),
        /// Every receiver has disconnected; the message can never be delivered.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and every
    /// sender has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender has disconnected and no messages remain.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has disconnected and no messages remain.
        Disconnected,
    }

    /// The sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it if the receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Enqueues the message without blocking, or returns it with the typed
        /// reason ([`TrySendError::Full`] under back-pressure,
        /// [`TrySendError::Disconnected`] after every receiver dropped).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a bounded channel.
    ///
    /// Cloneable, like real crossbeam receivers: clones share one message stream
    /// (each message is delivered to exactly one receiver), which is how a worker
    /// pool shares a ready queue. The stand-in serializes competing receivers
    /// through a mutex; a blocking [`Receiver::recv`]/[`Receiver::recv_timeout`]
    /// holds it until a message (or its deadline) arrives, so competing clones
    /// queue behind the current waiter — acceptable for the work-distribution
    /// patterns used here, where all consumers wait for the same stream anyway.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Locks the shared receiver, recovering from poison: the inner std
        /// receiver holds no invariants a panicking holder could break (a message
        /// is either fully taken or still queued), so a panicked peer must not
        /// wedge every other consumer of the channel.
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, every sender disconnects, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages, blocking between them, until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Blocking iterator over received messages.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a bounded channel with space for `capacity` in-flight messages
    /// (clamped to at least 1 so `send` + `recv` cannot deadlock in SPSC use).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_channel_round_trips_in_order() {
        let (tx, rx) = channel::bounded(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn try_send_reports_full_then_succeeds_after_drain() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        // The buffer is full: the message comes back typed, nothing is dropped.
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        // One slot freed: the retry goes through and order is preserved.
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_disconnect_with_the_message() {
        let (tx, rx) = channel::bounded(4);
        drop(rx);
        assert_eq!(tx.try_send(7), Err(channel::TrySendError::Disconnected(7)));
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = channel::bounded::<i32>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_share_one_stream() {
        let (tx, rx_a) = channel::bounded(8);
        let rx_b = rx_a.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
            // Whichever clone polls sees the message exactly once.
            let via_a = i % 2 == 0;
            let got = if via_a {
                rx_a.try_recv()
            } else {
                rx_b.try_recv()
            };
            assert_eq!(got, Ok(i));
        }
        drop(tx);
        assert_eq!(rx_a.try_recv(), Err(channel::TryRecvError::Disconnected));
        assert_eq!(rx_b.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_receivers_drain_a_shared_workload_across_threads() {
        let (tx, rx) = channel::bounded(16);
        let mut workers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv_timeout(Duration::from_millis(200)) {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        // Every message was delivered to exactly one worker.
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
