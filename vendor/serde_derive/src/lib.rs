//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! minimal substitute: the `Serialize` / `Deserialize` derive macros are accepted
//! (including `#[serde(...)]` attributes) but expand to nothing. No trait impls are
//! generated — the codebase only uses the derives as annotations and never calls a
//! serializer. Swap this crate for the real `serde`/`serde_derive` once the registry
//! is reachable; no source changes will be needed.

use proc_macro::TokenStream;

/// Derive macro stand-in for `serde::Serialize`. Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro stand-in for `serde::Deserialize`. Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
