//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range and
//! [`collection::vec`] strategies, `prop_map`, [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] — as a plain randomized test runner:
//! each case samples fresh inputs from the strategies and runs the body; failures
//! report the sampled inputs. **No shrinking** is performed (the real proptest
//! minimizes counterexamples; this stand-in just prints the failing inputs), and
//! the default case count is 64 to keep offline CI fast. Sampling is
//! deterministic: the seed is fixed per test unless `PROPTEST_SEED` is set in the
//! environment. Swap for crates.io `proptest` when the registry is reachable; the
//! test sources compile against either.

#![warn(missing_docs)]

/// Runner configuration and error plumbing.
pub mod test_runner {
    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps the offline suite quick.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection (from `prop_assume!`).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// Builds a failure (from `prop_assert!` and friends).
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic generator driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from `PROPTEST_SEED` (if set) mixed with `salt`.
        pub fn for_test(salt: u64) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            TestRng {
                state: base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in [0, bound). Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Strategies: descriptions of how to generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "empty f64 range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            a + u * (b - a)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty integer range");
                    a + rng.below((b - a) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u8, u16, u32, u64, i32, i64);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length is
    /// uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works as in real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ..) {..}`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Salt the RNG with the test name so sibling tests explore different
            // input sequences even under one fixed global seed.
            let salt = stringify!($name)
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
            let mut rng = $crate::test_runner::TestRng::for_test(salt);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                if rejected > config.cases.saturating_mul(16).max(256) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} rejections, {} passes)",
                        stringify!($name), rejected, passed
                    );
                }
                $(let $arg = ($strat).sample(&mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed after {} passing cases: {}\n  inputs: {}",
                        stringify!($name), passed, msg, inputs
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with the
/// sampled inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if c {} else` rather than `if !c` so partially ordered comparands do
        // not trip clippy::neg_cmp_op_on_partial_ord at every call site.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l != *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its preconditions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0.0f64..1.0) {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test(1);
        let doubled = (1usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }
}
