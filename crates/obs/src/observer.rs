//! The pipeline-facing instrumentation contract.
//!
//! A [`StageObserver`] is the only thing the core pipeline knows about
//! observability: a per-stream hook that receives one [`Span`] per executed
//! stage. The pipeline holds `Option<Box<dyn StageObserver>>`; `None` is the
//! default and costs a single branch per stage, so uninstrumented sessions pay
//! nothing. What an attached observer does with the span (ring it, histogram
//! it, both) is the host's business.

use crate::span::Span;

/// Identifies a pipeline stage in timing records.
///
/// The discriminants are stable on-the-wire values used inside span-ring
/// records and exported metric labels; append new stages, never renumber.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Energy/onset gate deciding whether a frame is analyzed at all.
    Trigger = 0,
    /// Siren/horn classification of the mixdown frame.
    Detection = 1,
    /// SRP-PHAT localization map + peak extraction.
    Localization = 2,
    /// Multi-target azimuth tracking.
    Tracking = 3,
}

impl StageId {
    /// All stages in pipeline order.
    pub const ALL: [StageId; 4] = [
        StageId::Trigger,
        StageId::Detection,
        StageId::Localization,
        StageId::Tracking,
    ];

    /// Number of stages.
    pub const COUNT: usize = 4;

    /// Dense index (0..[`StageId::COUNT`]) for per-stage tables.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case stage name used as a metric label value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageId::Trigger => "trigger",
            StageId::Detection => "detection",
            StageId::Localization => "localization",
            StageId::Tracking => "tracking",
        }
    }

    /// Inverse of the on-the-wire discriminant; `None` for unknown values
    /// (e.g. a record from a newer writer).
    #[must_use]
    pub fn from_u8(value: u8) -> Option<StageId> {
        match value {
            0 => Some(StageId::Trigger),
            1 => Some(StageId::Detection),
            2 => Some(StageId::Localization),
            3 => Some(StageId::Tracking),
            _ => None,
        }
    }
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stream hook receiving one [`Span`] per executed pipeline stage.
///
/// # Contract
///
/// `on_span` runs inside the audio hot path, between stages of a frame that
/// is racing a real-time deadline. Implementations must not allocate, block,
/// or take locks that a non-real-time thread can hold; the serve-layer
/// counting-allocator test pins the shipped implementation to zero
/// steady-state allocations. Spans for gated frames only cover the trigger
/// stage — downstream stages that did not run produce no span.
pub trait StageObserver: Send {
    /// Called once per executed stage with its timing span.
    fn on_span(&mut self, span: Span);
}

/// An observer that drops every span. Useful as an explicit attachment in
/// tests that measure the overhead of the observer plumbing itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl StageObserver for NoopObserver {
    fn on_span(&mut self, _span: Span) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ids_round_trip_through_wire_values() {
        for stage in StageId::ALL {
            assert_eq!(StageId::from_u8(stage as u8), Some(stage));
        }
        assert_eq!(StageId::from_u8(4), None);
        assert_eq!(StageId::from_u8(255), None);
    }

    #[test]
    fn names_are_stable_label_values() {
        let names: Vec<&str> = StageId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["trigger", "detection", "localization", "tracking"]
        );
        assert_eq!(StageId::Localization.to_string(), "localization");
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in StageId::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }
}
