//! Unified metrics registry: relaxed-atomic counters, gauges and
//! power-of-two-bucket histograms behind one registration API.
//!
//! Registration is cold (one mutex push, one `Arc` clone) and returns a cheap
//! cloneable handle; every update on a handle is one or two relaxed atomic
//! RMWs with no locks, so handles are safe to touch from the audio hot path.
//! The registry itself only re-enters the picture when an exporter asks for
//! [`MetricsRegistry::render_prometheus`].
//!
//! Histograms use 32 power-of-two microsecond buckets (bucket *i* holds
//! values in `[2^i, 2^(i+1))` µs): recording is two `fetch_add`s and a
//! `fetch_max`, and quantiles come back as conservative upper bucket edges.
//! An empty histogram has no quantiles — snapshots report `None`, never a
//! fake zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two histogram buckets. Bucket 31 absorbs everything
/// from ~36 minutes up.
pub const NUM_BUCKETS: usize = 32;

/// Bucket for a microsecond value: the position of its highest set bit,
/// clamped to the last bucket. Zero maps to bucket 0.
fn bucket_index(us: u64) -> usize {
    let bits = 63 - us.max(1).leading_zeros() as usize;
    bits.min(NUM_BUCKETS - 1)
}

/// Upper edge of bucket `i` in milliseconds.
fn bucket_upper_ms(i: usize) -> f64 {
    ((1u128 << (i + 1)) as f64) / 1_000.0
}

/// A monotonically increasing relaxed-atomic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates an unregistered counter (useful in tests; production counters
    /// come from [`MetricsRegistry::counter`]).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one. Hot-path safe.
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`. Hot-path safe.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins relaxed-atomic gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates an unregistered gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge. Hot-path safe.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A lock-free latency histogram handle with power-of-two microsecond
/// buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Creates an unregistered histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a duration. Hot-path safe: two `fetch_add`s, one `fetch_max`,
    /// one bucket increment, all relaxed.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_us(us);
    }

    /// Records a raw microsecond value. Hot-path safe.
    pub fn record_us(&self, us: u64) {
        let core = &*self.core;
        core.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_us.fetch_add(us, Ordering::Relaxed);
        core.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time summary. Quantiles are conservative
    /// upper bucket edges and `None` when no samples have been recorded.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        let count = core.count.load(Ordering::Relaxed);
        let sum_us = core.sum_us.load(Ordering::Relaxed);
        let max_us = core.max_us.load(Ordering::Relaxed);
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(core.buckets.iter()) {
            *out = bucket.load(Ordering::Relaxed);
        }
        let quantile = |q: f64| -> Option<f64> {
            if count == 0 {
                return None;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Some(bucket_upper_ms(i));
                }
            }
            Some(bucket_upper_ms(NUM_BUCKETS - 1))
        };
        HistogramSnapshot {
            count,
            mean_ms: if count == 0 {
                0.0
            } else {
                (sum_us as f64) / (count as f64) / 1_000.0
            },
            p50_ms: quantile(0.50),
            p99_ms: quantile(0.99),
            max_ms: (max_us as f64) / 1_000.0,
        }
    }

    /// Per-bucket counts plus `(count, sum_us)` for exposition rendering.
    fn exposition(&self) -> ([u64; NUM_BUCKETS], u64, u64) {
        let core = &*self.core;
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(core.buckets.iter()) {
            *out = bucket.load(Ordering::Relaxed);
        }
        (
            buckets,
            core.count.load(Ordering::Relaxed),
            core.sum_us.load(Ordering::Relaxed),
        )
    }
}

/// Point-in-time histogram summary.
///
/// Quantiles are `None` when the histogram is empty: an unserved host has no
/// p50, and reporting `0.0` would read as "infinitely fast" on a dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean in milliseconds (0.0 when empty).
    pub mean_ms: f64,
    /// Conservative median (upper bucket edge), `None` when empty.
    pub p50_ms: Option<f64>,
    /// Conservative 99th percentile (upper bucket edge), `None` when empty.
    pub p99_ms: Option<f64>,
    /// Largest recorded value in milliseconds.
    pub max_ms: f64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Family {
    name: &'static str,
    help: &'static str,
    /// Pre-rendered label pairs like `stage="trigger"`, or `""` for none.
    labels: &'static str,
    metric: Metric,
}

/// The unified registry: owns the family list, hands out update handles,
/// renders Prometheus-style text exposition.
///
/// Same-name registrations (labeled series of one family) are legal and
/// should be made consecutively so the renderer emits `# HELP`/`# TYPE` once
/// per family.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn push(&self, family: Family) {
        let mut families = match self.families.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        families.push(family);
    }

    /// Registers a counter and returns its update handle.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let handle = Counter::new();
        self.push(Family {
            name,
            help,
            labels: "",
            metric: Metric::Counter(handle.clone()),
        });
        handle
    }

    /// Registers a gauge and returns its update handle.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let handle = Gauge::new();
        self.push(Family {
            name,
            help,
            labels: "",
            metric: Metric::Gauge(handle.clone()),
        });
        handle
    }

    /// Registers an unlabeled histogram and returns its update handle.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_labeled(name, help, "")
    }

    /// Registers one labeled series of a histogram family. `labels` is a
    /// pre-rendered pair list like `stage="trigger"` (no braces).
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &'static str,
    ) -> Histogram {
        let handle = Histogram::new();
        self.push(Family {
            name,
            help,
            labels,
            metric: Metric::Histogram(handle.clone()),
        });
        handle
    }

    /// Renders every registered family as Prometheus-style text exposition.
    /// Cold path; allocates the output string.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let families = match self.families.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = String::with_capacity(1024);
        let mut last_name = "";
        for family in families.iter() {
            if family.name != last_name {
                let kind = match family.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
                let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
                last_name = family.name;
            }
            match &family.metric {
                Metric::Counter(c) => {
                    Self::render_scalar(&mut out, family.name, family.labels, c.get());
                }
                Metric::Gauge(g) => {
                    Self::render_scalar(&mut out, family.name, family.labels, g.get());
                }
                Metric::Histogram(h) => {
                    Self::render_histogram(&mut out, family.name, family.labels, h);
                }
            }
        }
        out
    }

    fn render_scalar(out: &mut String, name: &str, labels: &str, value: u64) {
        use std::fmt::Write as _;
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }

    fn render_histogram(out: &mut String, name: &str, labels: &str, histogram: &Histogram) {
        use std::fmt::Write as _;
        let (buckets, count, sum_us) = histogram.exposition();
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            cumulative += n;
            // Upper edge in seconds, matching Prometheus convention.
            let le = ((1u128 << (i + 1)) as f64) / 1_000_000.0;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {count}");
        let sum_s = (sum_us as f64) / 1_000_000.0;
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum_s}");
            let _ = writeln!(out, "{name}_count {count}");
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {sum_s}");
            let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_magnitude() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1_000), 9);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_boundaries_land_in_their_own_bucket() {
        // A value of exactly 2^k µs starts bucket k: the half-open intervals
        // are [2^k, 2^(k+1)), so edges must never leak into the bucket below.
        for k in 0..NUM_BUCKETS {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge), k, "edge 2^{k} misbucketed");
            if k > 0 {
                assert_eq!(bucket_index(edge - 1), k - 1, "2^{k}-1 misbucketed");
            }
        }
        // Past the last representable edge everything clamps to bucket 31.
        assert_eq!(bucket_index(1u64 << 40), NUM_BUCKETS - 1);
    }

    #[test]
    fn boundary_samples_quantize_to_the_next_edge_up() {
        let h = Histogram::new();
        // Exactly 1024 µs sits in bucket 10 => quantile reports the upper
        // edge 2048 µs = 2.048 ms, never the lower edge it sits on.
        h.record_us(1_024);
        let snap = h.snapshot();
        assert_eq!(snap.p50_ms, Some(2.048));
        assert_eq!(snap.p99_ms, Some(2.048));
        // One sample just below the edge lands one bucket lower.
        let h2 = Histogram::new();
        h2.record_us(1_023);
        assert_eq!(h2.snapshot().p50_ms, Some(1.024));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_ms, None);
        assert_eq!(snap.p99_ms, None);
        assert_eq!(snap.mean_ms, 0.0);
        assert_eq!(snap.max_ms, 0.0);
    }

    #[test]
    fn quantiles_are_conservative_upper_edges() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // 100 µs lands in bucket 6 ([64, 128) µs) => edge 128 µs = 0.128 ms.
        assert_eq!(snap.p50_ms, Some(0.128));
        assert_eq!(snap.p99_ms, Some(0.128));
        assert!((snap.mean_ms - 0.1).abs() < 1e-9);
        assert!((snap.max_ms - 0.1).abs() < 1e-9);
    }

    #[test]
    fn p99_separates_from_p50_with_a_tail() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_us(100);
        }
        for _ in 0..2 {
            h.record_us(10_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50_ms, Some(0.128));
        assert_eq!(snap.p99_ms, Some(16.384));
    }

    #[test]
    fn counters_and_gauges_register_and_render() {
        let registry = MetricsRegistry::new();
        let frames = registry.counter("ispot_frames_total", "Frames processed");
        let depth = registry.gauge("ispot_queue_depth", "Chunks queued");
        frames.add(3);
        depth.set(7);
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP ispot_frames_total Frames processed\n"));
        assert!(text.contains("# TYPE ispot_frames_total counter\n"));
        assert!(text.contains("ispot_frames_total 3\n"));
        assert!(text.contains("# TYPE ispot_queue_depth gauge\n"));
        assert!(text.contains("ispot_queue_depth 7\n"));
    }

    #[test]
    fn labeled_histogram_family_emits_one_header_block() {
        let registry = MetricsRegistry::new();
        let trig = registry.histogram_labeled(
            "ispot_stage_seconds",
            "Per-stage latency",
            "stage=\"trigger\"",
        );
        let det = registry.histogram_labeled(
            "ispot_stage_seconds",
            "Per-stage latency",
            "stage=\"detection\"",
        );
        trig.record_us(10);
        det.record_us(10);
        det.record_us(10);
        let text = registry.render_prometheus();
        assert_eq!(
            text.matches("# TYPE ispot_stage_seconds histogram").count(),
            1
        );
        assert!(text.contains("ispot_stage_seconds_count{stage=\"trigger\"} 1\n"));
        assert!(text.contains("ispot_stage_seconds_count{stage=\"detection\"} 2\n"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("ispot_latency_seconds", "End-to-end latency");
        h.record_us(1); // bucket 0
        h.record_us(3); // bucket 1
        let text = registry.render_prometheus();
        // Bucket 0 upper edge 2 µs = 2e-6 s holds one sample; bucket 1 edge
        // accumulates both.
        assert!(text.contains("ispot_latency_seconds_bucket{le=\"0.000002\"} 1\n"));
        assert!(text.contains("ispot_latency_seconds_bucket{le=\"0.000004\"} 2\n"));
        assert!(text.contains("ispot_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ispot_latency_seconds_sum 0.000004\n"));
        assert!(text.contains("ispot_latency_seconds_count 2\n"));
    }

    #[test]
    fn handles_are_clones_sharing_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.incr();
        c2.add(2);
        assert_eq!(c.get(), 3);
        let h = Histogram::new();
        let h2 = h.clone();
        h.record_us(5);
        h2.record_us(5);
        assert_eq!(h.count(), 2);
    }
}
