//! Stage-timing spans and the per-stream span ring.
//!
//! A [`Span`] is one stage execution: which stage, which frame, when it
//! started (ticks from the stream's [`crate::tick::TickSource`]) and how long
//! it took. [`SpanRing`] keeps the most recent spans of one stream in a
//! [`crate::ring::SeqRing`] so exporters can reconstruct a per-frame timeline
//! without ever blocking the pipeline.

use crate::observer::StageId;
use crate::ring::SeqRing;

/// Words per span record in the underlying ring: stage id, frame index,
/// start ticks, duration ticks.
pub const SPAN_WORDS: usize = 4;

/// One timed stage execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which pipeline stage ran.
    pub stage: StageId,
    /// Index of the frame the stage ran on.
    pub frame_index: u64,
    /// Start time in ticks of the stream's tick source.
    pub start_ticks: u64,
    /// Stage duration in ticks (nanoseconds).
    pub duration_ticks: u64,
}

impl Span {
    /// Stage duration in microseconds (integer, rounded down).
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.duration_ticks / 1_000
    }
}

/// Fixed-capacity lock-free ring of the most recent [`Span`]s of one stream.
#[derive(Debug)]
pub struct SpanRing {
    ring: SeqRing<SPAN_WORDS>,
}

impl SpanRing {
    /// Creates a ring holding the latest `capacity` spans (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            ring: SeqRing::new(capacity),
        }
    }

    /// Number of spans the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Total spans recorded since construction (monotonic).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ring.recorded()
    }

    /// Records a span. Hot path: wait-free against readers, no allocation.
    pub fn record(&self, span: Span) {
        self.ring.push(&[
            span.stage as u64,
            span.frame_index,
            span.start_ticks,
            span.duration_ticks,
        ]);
    }

    /// Reads the span with global index `index` if still resident; `None` for
    /// overwritten, unwritten, in-flight, or undecodable records.
    #[must_use]
    pub fn read_at(&self, index: u64) -> Option<Span> {
        let words = self.ring.read_at(index)?;
        Self::decode(&words)
    }

    /// Copies every still-readable span, oldest first, into `out` (cleared
    /// first). Cold path for exporters and tests.
    pub fn snapshot_into(&self, out: &mut Vec<Span>) {
        out.clear();
        let newest = self.ring.recorded();
        let oldest = self.ring.oldest();
        for index in oldest..newest {
            if let Some(words) = self.ring.read_at(index) {
                if let Some(span) = Self::decode(&words) {
                    out.push(span);
                }
            }
        }
    }

    fn decode(words: &[u64; SPAN_WORDS]) -> Option<Span> {
        let raw = u8::try_from(words[0]).ok()?;
        let stage = StageId::from_u8(raw)?;
        Some(Span {
            stage,
            frame_index: words[1],
            start_ticks: words[2],
            duration_ticks: words[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: StageId, frame: u64, start: u64, dur: u64) -> Span {
        Span {
            stage,
            frame_index: frame,
            start_ticks: start,
            duration_ticks: dur,
        }
    }

    #[test]
    fn spans_round_trip_through_the_ring() {
        let ring = SpanRing::new(8);
        let spans = [
            span(StageId::Trigger, 0, 10, 5),
            span(StageId::Detection, 0, 15, 40),
            span(StageId::Localization, 0, 55, 900),
            span(StageId::Tracking, 0, 955, 12),
        ];
        for s in spans {
            ring.record(s);
        }
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert_eq!(out, spans.to_vec());
        assert_eq!(ring.read_at(2), Some(spans[2]));
        assert_eq!(ring.recorded(), 4);
    }

    #[test]
    fn old_spans_fall_off_the_ring() {
        let ring = SpanRing::new(2);
        for frame in 0..5u64 {
            ring.record(span(StageId::Trigger, frame, frame * 100, 1));
        }
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        let frames: Vec<u64> = out.iter().map(|s| s.frame_index).collect();
        assert_eq!(frames, vec![3, 4]);
    }

    #[test]
    fn duration_us_rounds_down() {
        let s = span(StageId::Detection, 1, 0, 2_999);
        assert_eq!(s.duration_us(), 2);
    }
}
