//! Lock-free fixed-capacity record ring (seqlock per slot).
//!
//! [`SeqRing`] stores the most recent `capacity` records of `WORDS` words
//! each. Writers claim a global cursor with one `fetch_add` and publish into
//! `cursor % capacity` under a per-slot sequence lock; they never block on
//! readers and never allocate. Readers are purely optimistic: they read the
//! slot's sequence, copy the words, and re-check — a record a writer was
//! mid-overwrite on simply reads as absent. This is the standard seqlock
//! discipline built entirely from `AtomicU64`s, so the crate stays
//! `#![forbid(unsafe_code)]` and the analyzer's unsafe-confinement rule holds.
//!
//! The tradeoff versus an SPSC queue is deliberate: observability wants "the
//! latest N records, cheaply, from any thread", not guaranteed delivery. Old
//! records are overwritten without back-pressure on the pipeline.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One slot: a sequence word (odd while a writer is inside), the global index
/// of the record it holds, and the record payload.
#[derive(Debug)]
struct SeqSlot<const WORDS: usize> {
    seq: AtomicU64,
    index: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl<const WORDS: usize> SeqSlot<WORDS> {
    fn new() -> Self {
        SeqSlot {
            seq: AtomicU64::new(0),
            index: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A lock-free ring of the most recent fixed-width records.
///
/// Multi-writer, multi-reader. Writers are wait-free against readers and only
/// contend with each other when two of them land on the same slot (i.e. one
/// laps the other), where the loser spins briefly.
#[derive(Debug)]
pub struct SeqRing<const WORDS: usize> {
    slots: Box<[SeqSlot<WORDS>]>,
    cursor: AtomicU64,
}

impl<const WORDS: usize> SeqRing<WORDS> {
    /// Creates a ring holding the latest `capacity` records (clamped to ≥ 1).
    /// All storage is allocated here; `push` never allocates.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots: Vec<SeqSlot<WORDS>> = (0..capacity).map(|_| SeqSlot::new()).collect();
        SeqRing {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed since construction (monotonic; not clamped to
    /// capacity). Records `recorded() - capacity() .. recorded()` are the ones
    /// that may still be readable.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Index of the oldest record that may still be resident.
    #[must_use]
    pub fn oldest(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Publishes a record. Wait-free against readers; never allocates or
    /// panics. Called from the pipeline hot path.
    pub fn push(&self, words: &[u64; WORDS]) {
        let i = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Claim the slot: even -> odd. Contention here means another writer
        // has lapped the ring onto this very slot, so a short spin is fine.
        let mut seq = slot.seq.load(Ordering::Acquire);
        loop {
            if seq & 1 == 0 {
                match slot.seq.compare_exchange_weak(
                    seq,
                    seq.wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(actual) => seq = actual,
                }
            } else {
                std::hint::spin_loop();
                seq = slot.seq.load(Ordering::Acquire);
            }
        }
        // The store side of the Acquire CAS above is relaxed, so on weakly
        // ordered CPUs the payload stores below could become visible before
        // the odd sequence value without this fence — a reader could then
        // pass both sequence checks around a torn copy. The Release fence
        // orders the odd seq store before every payload store.
        fence(Ordering::Release);
        slot.index.store(i, Ordering::Relaxed);
        for (cell, value) in slot.words.iter().zip(words.iter()) {
            cell.store(*value, Ordering::Relaxed);
        }
        // Release: odd -> even publishes index + words to readers.
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Reads the record with global index `index`, if it is still resident
    /// and not mid-overwrite. Returns `None` for indices never written,
    /// already overwritten, or caught during a concurrent write — callers
    /// skip and move on.
    #[must_use]
    pub fn read_at(&self, index: u64) -> Option<[u64; WORDS]> {
        if index >= self.recorded() {
            return None;
        }
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let stamped = slot.index.load(Ordering::Relaxed);
        let mut out = [0u64; WORDS];
        for (value, cell) in out.iter_mut().zip(slot.words.iter()) {
            *value = cell.load(Ordering::Relaxed);
        }
        // Order the payload reads before the re-check of the sequence word.
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 || stamped != index {
            return None;
        }
        Some(out)
    }

    /// Copies every still-readable record, oldest first, into `out`
    /// (cleared first). Cold path: for exporters and tests, not the pipeline.
    pub fn snapshot_into(&self, out: &mut Vec<[u64; WORDS]>) {
        out.clear();
        let newest = self.recorded();
        let oldest = newest.saturating_sub(self.slots.len() as u64);
        for index in oldest..newest {
            if let Some(words) = self.read_at(index) {
                out.push(words);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_ring_reads_nothing() {
        let ring: SeqRing<2> = SeqRing::new(4);
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.read_at(0), None);
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring: SeqRing<1> = SeqRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(&[7]);
        assert_eq!(ring.read_at(0), Some([7]));
    }

    #[test]
    fn push_then_read_round_trips() {
        let ring: SeqRing<3> = SeqRing::new(4);
        ring.push(&[1, 2, 3]);
        ring.push(&[4, 5, 6]);
        assert_eq!(ring.read_at(0), Some([1, 2, 3]));
        assert_eq!(ring.read_at(1), Some([4, 5, 6]));
        assert_eq!(ring.read_at(2), None);
    }

    #[test]
    fn overwritten_records_read_as_absent() {
        let ring: SeqRing<1> = SeqRing::new(2);
        for v in 0..5u64 {
            ring.push(&[v]);
        }
        // Capacity 2, five pushes: only records 3 and 4 remain.
        assert_eq!(ring.read_at(0), None);
        assert_eq!(ring.read_at(2), None);
        assert_eq!(ring.read_at(3), Some([3]));
        assert_eq!(ring.read_at(4), Some([4]));
        assert_eq!(ring.oldest(), 3);
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert_eq!(out, vec![[3], [4]]);
    }

    #[test]
    fn concurrent_writers_and_reader_never_see_torn_records() {
        // Each writer publishes records whose two words are (v, !v); a torn
        // read would surface a pair that fails that invariant.
        let ring: Arc<SeqRing<2>> = Arc::new(SeqRing::new(8));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let v = (w << 32) | i;
                        ring.push(&[v, !v]);
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut out = Vec::new();
                for _ in 0..2_000 {
                    ring.snapshot_into(&mut out);
                    for words in &out {
                        assert_eq!(words[1], !words[0], "torn record: {words:?}");
                        seen += 1;
                    }
                }
                seen
            })
        };
        for w in writers {
            w.join().expect("writer panicked");
        }
        let seen = reader.join().expect("reader panicked");
        assert!(seen > 0, "reader never observed a record");
        assert_eq!(ring.recorded(), 20_000);
    }
}
