//! Monotonic tick source.
//!
//! Timing events inside the pipeline are recorded as `u64` nanosecond ticks
//! relative to a shared anchor instead of full timestamps: a tick is one
//! monotonic-clock read plus a subtraction, fits in a single atomic word, and
//! two ticks subtract into a duration without any epoch bookkeeping. All
//! sources cloned from the same original share the anchor, so ticks from
//! different streams of one host are directly comparable.

use std::time::{Duration, Instant};

/// A monotonic nanosecond counter anchored at construction time.
///
/// `Clone` is cheap (a `Copy` of the anchor) and preserves the anchor, so a
/// host can hand every stream a clone and correlate their spans on one
/// timeline. A `u64` of nanoseconds wraps after ~584 years of uptime, which we
/// ignore.
#[derive(Debug, Clone, Copy)]
pub struct TickSource {
    anchor: Instant,
}

impl TickSource {
    /// Creates a source anchored at the current instant.
    #[must_use]
    pub fn new() -> Self {
        TickSource {
            anchor: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the anchor.
    ///
    /// Hot-path safe: one clock read, no allocation, no branching beyond the
    /// saturation guard.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        let nanos = self.anchor.elapsed().as_nanos();
        if nanos > u128::from(u64::MAX) {
            u64::MAX
        } else {
            nanos as u64
        }
    }

    /// Converts a tick delta back into a [`Duration`].
    #[must_use]
    pub fn delta(start_ticks: u64, end_ticks: u64) -> Duration {
        Duration::from_nanos(end_ticks.saturating_sub(start_ticks))
    }
}

impl Default for TickSource {
    fn default() -> Self {
        TickSource::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let src = TickSource::new();
        let a = src.ticks();
        let b = src.ticks();
        assert!(b >= a, "ticks went backwards: {a} -> {b}");
    }

    #[test]
    fn clones_share_the_anchor() {
        let src = TickSource::new();
        let copy = src;
        let a = src.ticks();
        let b = copy.ticks();
        // Same anchor: the two readings are on one timeline, so the later
        // read cannot be earlier than the first by more than clock noise.
        assert!(b >= a);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        assert_eq!(TickSource::delta(10, 4), Duration::from_nanos(0));
        assert_eq!(TickSource::delta(4, 10), Duration::from_nanos(6));
    }
}
