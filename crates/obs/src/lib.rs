//! `ispot-obs` — the observability core of the I-SPOT workspace: a tracing and
//! metrics substrate designed to ride inside a hard-real-time audio pipeline
//! without disturbing it.
//!
//! The paper's central claim is per-stage latency margins under a real-time
//! budget; this crate is how a *running* deployment sees those margins instead
//! of inferring them from offline benches. Three pieces, all preallocated and
//! lock-free on their hot paths:
//!
//! * [`tick::TickSource`] — a monotonic nanosecond tick counter anchored at an
//!   [`std::time::Instant`], so timing events are cheap `u64`s instead of
//!   timestamps.
//! * [`span::SpanRing`] (over the generic [`ring::SeqRing`]) — a fixed-capacity
//!   seqlock ring of stage-timing records (stage id, frame index, start and
//!   duration ticks). Writers never block, never allocate and never wait on
//!   readers; readers (dashboards, HTTP endpoints) snapshot records and simply
//!   skip any record a writer is mid-overwrite on.
//! * [`registry::MetricsRegistry`] — one registration API for relaxed-atomic
//!   [`registry::Counter`]s, [`registry::Gauge`]s and power-of-two-bucket
//!   [`registry::Histogram`]s, renderable as Prometheus-style text exposition.
//!
//! The pipeline side of the contract is the [`observer::StageObserver`] trait:
//! a per-stream hook invoked once per executed stage with a [`span::Span`].
//! Pipelines hold `Option<Box<dyn StageObserver>>` — `None` costs one branch
//! per stage (zero-overhead when disabled), and an attached observer must stay
//! allocation-free (enforced by the counting-allocator tests in
//! `crates/serve/tests/zero_alloc.rs`).
//!
//! # Example
//!
//! ```
//! use ispot_obs::prelude::*;
//!
//! let registry = MetricsRegistry::new();
//! let frames = registry.counter("ispot_frames_total", "Frames processed");
//! let latency = registry.histogram("ispot_latency_seconds", "End-to-end latency");
//!
//! frames.incr();
//! latency.record_us(250);
//! assert_eq!(frames.get(), 1);
//! assert_eq!(latency.snapshot().count, 1);
//!
//! let text = registry.render_prometheus();
//! assert!(text.contains("ispot_frames_total 1"));
//! ```

#![forbid(unsafe_code)]

pub mod observer;
pub mod registry;
pub mod ring;
pub mod span;
pub mod tick;

pub use observer::{StageId, StageObserver};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use ring::SeqRing;
pub use span::{Span, SpanRing};
pub use tick::TickSource;

/// Everything an instrumented pipeline or exporter needs, for glob import.
pub mod prelude {
    pub use crate::observer::{StageId, StageObserver};
    pub use crate::registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
    pub use crate::ring::SeqRing;
    pub use crate::span::{Span, SpanRing};
    pub use crate::tick::TickSource;
}
