//! Fully connected (dense) layers.

use crate::error::NnError;
use crate::init::he_uniform;
use crate::layer::Layer;
use crate::tensor::Tensor;

/// A fully connected layer computing `y = x W^T + b` for a batch of row vectors.
///
/// Weights have shape `[out_features, in_features]`.
///
/// # Example
///
/// ```
/// use ispot_nn::{dense::Dense, layer::Layer, Tensor};
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut layer = Dense::new(3, 2, 0)?;
/// let y = layer.forward(&Tensor::zeros(&[4, 3]))?;
/// assert_eq!(y.shape(), &[4, 2]);
/// assert_eq!(layer.num_parameters(), 3 * 2 + 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Vec<f64>,
    bias: Vec<f64>,
    grad_weights: Vec<f64>,
    grad_bias: Vec<f64>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform initial weights drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Result<Self, NnError> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::invalid_parameter(
                "in_features/out_features",
                "must be positive",
            ));
        }
        Ok(Dense {
            in_features,
            out_features,
            weights: he_uniform(in_features * out_features, in_features, seed),
            bias: vec![0.0; out_features],
            grad_weights: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable view of the weight matrix (row-major `[out, in]`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Immutable view of the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] != self.in_features {
            return Err(NnError::shape_mismatch(
                format!("[batch, {}]", self.in_features),
                shape,
            ));
        }
        let batch = shape[0];
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let mut acc = self.bias[o];
                let wrow = &self.weights[o * self.in_features..(o + 1) * self.in_features];
                for (i, &w) in wrow.iter().enumerate() {
                    acc += w * input.at2(b, i);
                }
                out.set2(b, o, acc);
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::invalid_parameter("state", "backward called before forward"))?;
        let batch = input.shape()[0];
        if grad_output.shape() != [batch, self.out_features] {
            return Err(NnError::shape_mismatch(
                format!("[{batch}, {}]", self.out_features),
                grad_output.shape(),
            ));
        }
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
        let mut grad_input = Tensor::zeros(&[batch, self.in_features]);
        for b in 0..batch {
            for o in 0..self.out_features {
                let g = grad_output.at2(b, o);
                self.grad_bias[o] += g;
                for i in 0..self.in_features {
                    self.grad_weights[o * self.in_features + i] += g * input.at2(b, i);
                    let v = grad_input.at2(b, i) + g * self.weights[o * self.in_features + i];
                    grad_input.set2(b, i, v);
                }
            }
        }
        Ok(grad_input)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (self.weights.as_mut_slice(), self.grad_weights.as_slice()),
            (self.bias.as_mut_slice(), self.grad_bias.as_slice()),
        ]
    }

    fn num_parameters(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, 1).unwrap();
        // Zero the weights so the output equals the bias.
        for w in layer.weights.iter_mut() {
            *w = 0.0;
        }
        layer.bias = vec![0.5, -0.5];
        let y = layer.forward(&Tensor::zeros(&[2, 3])).unwrap();
        assert_eq!(y.rows(), vec![vec![0.5, -0.5], vec![0.5, -0.5]]);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let eps = 1e-6;
        let mut layer = Dense::new(3, 2, 5).unwrap();
        let x = Tensor::from_rows(&[vec![0.2, -0.4, 0.8], vec![1.0, 0.5, -0.3]]).unwrap();
        // Scalar objective: sum of outputs.
        let y = layer.forward(&x).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        let grad_input = layer.backward(&ones).unwrap();
        // Check input gradients numerically.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp: f64 = layer.forward(&xp).unwrap().as_slice().iter().sum();
            let fm: f64 = layer.forward(&xm).unwrap().as_slice().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad_input.as_slice()[idx] - numeric).abs() < 1e-5,
                "input grad {idx}"
            );
        }
        // Check weight gradients numerically.
        layer.forward(&x).unwrap();
        layer.backward(&ones).unwrap();
        let analytic = layer.grad_weights.clone();
        #[allow(clippy::needless_range_loop)] // idx also mutates layer.weights
        for idx in 0..layer.weights.len() {
            let orig = layer.weights[idx];
            layer.weights[idx] = orig + eps;
            let fp: f64 = layer.forward(&x).unwrap().as_slice().iter().sum();
            layer.weights[idx] = orig - eps;
            let fm: f64 = layer.forward(&x).unwrap().as_slice().iter().sum();
            layer.weights[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic[idx] - numeric).abs() < 1e-5,
                "weight grad {idx}: {} vs {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn invalid_shapes_rejected() {
        let mut layer = Dense::new(4, 2, 0).unwrap();
        assert!(layer.forward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(layer.backward(&Tensor::zeros(&[2, 2])).is_err());
        layer.forward(&Tensor::zeros(&[2, 4])).unwrap();
        assert!(layer.backward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(Dense::new(0, 2, 0).is_err());
    }

    #[test]
    fn parameter_count() {
        let layer = Dense::new(10, 4, 0).unwrap();
        assert_eq!(layer.num_parameters(), 44);
    }
}
