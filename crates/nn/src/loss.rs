//! Loss functions.

use crate::error::NnError;
use crate::tensor::Tensor;

/// A differentiable training objective.
pub trait Loss: std::fmt::Debug {
    /// Computes the mean loss over the batch and the gradient with respect to the
    /// network output.
    ///
    /// `targets` are class indices for classification losses and flattened target
    /// values for regression losses.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes and targets are inconsistent.
    fn compute(&self, output: &Tensor, targets: &[usize]) -> Result<(f64, Tensor), NnError>;
}

/// Softmax cross-entropy over logits of shape `[batch, classes]`.
///
/// # Example
///
/// ```
/// use ispot_nn::{loss::{CrossEntropyLoss, Loss}, Tensor};
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let logits = Tensor::from_rows(&[vec![5.0, 0.0], vec![0.0, 5.0]])?;
/// let (loss, _grad) = CrossEntropyLoss::new().compute(&logits, &[0, 1])?;
/// assert!(loss < 0.01); // confident and correct
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Computes the row-wise softmax of a `[batch, classes]` tensor.
    pub fn softmax(output: &Tensor) -> Tensor {
        let shape = output.shape();
        let (batch, classes) = (shape[0], shape[1]);
        let mut out = Tensor::zeros(shape);
        for b in 0..batch {
            let row: Vec<f64> = (0..classes).map(|c| output.at2(b, c)).collect();
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = row.iter().map(|v| (v - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            for (c, e) in exps.iter().enumerate() {
                out.set2(b, c, e / sum);
            }
        }
        out
    }
}

impl Loss for CrossEntropyLoss {
    fn compute(&self, output: &Tensor, targets: &[usize]) -> Result<(f64, Tensor), NnError> {
        let shape = output.shape();
        if shape.len() != 2 {
            return Err(NnError::shape_mismatch("[batch, classes]", shape));
        }
        let (batch, classes) = (shape[0], shape[1]);
        if targets.len() != batch {
            return Err(NnError::invalid_parameter(
                "targets",
                format!("expected {batch} targets, got {}", targets.len()),
            ));
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
            return Err(NnError::invalid_parameter(
                "targets",
                format!("class index {bad} out of range for {classes} classes"),
            ));
        }
        let probs = Self::softmax(output);
        let mut loss = 0.0;
        let mut grad = probs.clone();
        for (b, &t) in targets.iter().enumerate() {
            let p = probs.at2(b, t).max(1e-15);
            loss -= p.ln();
            grad.set2(b, t, grad.at2(b, t) - 1.0);
        }
        let scale = 1.0 / batch as f64;
        Ok((loss * scale, grad.scale(scale)))
    }
}

/// Mean squared error against per-element targets encoded as indices into a lookup of
/// 0/1 (one-hot) — provided mainly for regression-style sanity tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        MseLoss
    }

    /// Computes the MSE between `output` and explicit `targets` of the same shape,
    /// returning the mean loss and its gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn compute_values(
        &self,
        output: &Tensor,
        targets: &Tensor,
    ) -> Result<(f64, Tensor), NnError> {
        if output.shape() != targets.shape() {
            return Err(NnError::shape_mismatch(
                format!("{:?}", output.shape()),
                targets.shape(),
            ));
        }
        let n = output.len().max(1) as f64;
        let mut grad = Tensor::zeros(output.shape());
        let mut loss = 0.0;
        for (i, (&o, &t)) in output.as_slice().iter().zip(targets.as_slice()).enumerate() {
            let d = o - t;
            loss += d * d;
            grad.as_mut_slice()[i] = 2.0 * d / n;
        }
        Ok((loss / n, grad))
    }
}

impl Loss for MseLoss {
    fn compute(&self, output: &Tensor, targets: &[usize]) -> Result<(f64, Tensor), NnError> {
        // Interpret targets as one-hot class labels.
        let shape = output.shape();
        if shape.len() != 2 {
            return Err(NnError::shape_mismatch("[batch, classes]", shape));
        }
        let mut one_hot = Tensor::zeros(shape);
        for (b, &t) in targets.iter().enumerate() {
            if t >= shape[1] {
                return Err(NnError::invalid_parameter("targets", "class out of range"));
            }
            one_hot.set2(b, t, 1.0);
        }
        self.compute_values(output, &one_hot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]).unwrap();
        let s = CrossEntropyLoss::softmax(&t);
        for b in 0..2 {
            let sum: f64 = (0..3).map(|c| s.at2(b, c)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::from_rows(&[vec![0.0, 0.0, 0.0, 0.0]]).unwrap();
        let (loss, _) = CrossEntropyLoss::new().compute(&logits, &[2]).unwrap();
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical() {
        let eps = 1e-6;
        let logits = Tensor::from_rows(&[vec![0.3, -0.2, 0.9], vec![1.0, 0.0, -1.0]]).unwrap();
        let targets = vec![2usize, 0usize];
        let loss_fn = CrossEntropyLoss::new();
        let (_, grad) = loss_fn.compute(&logits, &targets).unwrap();
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = loss_fn.compute(&lp, &targets).unwrap();
            let (fm, _) = loss_fn.compute(&lm, &targets).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - numeric).abs() < 1e-6,
                "grad {i}: {} vs {numeric}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let out = Tensor::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let (loss, grad) = MseLoss::new().compute(&out, &[0]).unwrap();
        assert!(loss.abs() < 1e-12);
        assert!(grad.as_slice().iter().all(|&g| g.abs() < 1e-12));
        let (loss, _) = MseLoss::new().compute(&out, &[1]).unwrap();
        assert!(loss > 0.5);
    }

    #[test]
    fn invalid_targets_rejected() {
        let logits = Tensor::from_rows(&[vec![0.0, 1.0]]).unwrap();
        assert!(CrossEntropyLoss::new().compute(&logits, &[2]).is_err());
        assert!(CrossEntropyLoss::new().compute(&logits, &[0, 1]).is_err());
        assert!(MseLoss::new().compute(&logits, &[5]).is_err());
    }
}
