//! Element-wise activation layers.

use crate::error::NnError;
use crate::layer::Layer;
use crate::tensor::Tensor;

/// The supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// An element-wise activation layer.
///
/// # Example
///
/// ```
/// use ispot_nn::{activation::Activation, layer::Layer, Tensor};
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut relu = Activation::relu();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_input: None,
        }
    }

    /// ReLU activation.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Leaky-ReLU activation.
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu)
    }

    /// Sigmoid activation.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// Tanh activation.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Returns the activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(&self, x: f64) -> f64 {
        match self.kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Tanh => x.tanh(),
        }
    }

    fn derivative(&self, x: f64) -> f64 {
        match self.kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            ActivationKind::Tanh => 1.0 - x.tanh().powi(2),
        }
    }
}

impl Layer for Activation {
    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::LeakyRelu => "leaky_relu",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Tanh => "tanh",
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|x| self.apply(x)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::invalid_parameter("state", "backward called before forward"))?;
        if input.shape() != grad_output.shape() {
            return Err(NnError::shape_mismatch(
                format!("{:?}", input.shape()),
                grad_output.shape(),
            ));
        }
        let data: Vec<f64> = input
            .as_slice()
            .iter()
            .zip(grad_output.as_slice())
            .map(|(&x, &g)| g * self.derivative(x))
            .collect();
        Tensor::from_vec(data, input.shape())
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_definitions() {
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(
            Activation::relu().forward(&x).unwrap().as_slice(),
            &[0.0, 0.0, 3.0]
        );
        let y = Activation::sigmoid().forward(&x).unwrap();
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-12);
        let y = Activation::tanh().forward(&x).unwrap();
        assert!((y.as_slice()[2] - 3.0f64.tanh()).abs() < 1e-12);
        let y = Activation::leaky_relu().forward(&x).unwrap();
        assert!((y.as_slice()[0] - -0.02).abs() < 1e-12);
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let eps = 1e-6;
        for kind in [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu,
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
        ] {
            let mut layer = Activation::new(kind);
            let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]).unwrap();
            layer.forward(&x).unwrap();
            let grad = layer
                .backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap())
                .unwrap();
            for i in 0..3 {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let fp: f64 = Activation::new(kind).forward(&xp).unwrap().as_slice()[i];
                let fm: f64 = Activation::new(kind).forward(&xm).unwrap().as_slice()[i];
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.as_slice()[i] - numeric).abs() < 1e-5,
                    "{kind:?} index {i}: analytic {} vs numeric {numeric}",
                    grad.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn backward_requires_forward_and_matching_shape() {
        let mut relu = Activation::relu();
        assert!(relu.backward(&Tensor::zeros(&[1, 2])).is_err());
        relu.forward(&Tensor::zeros(&[1, 2])).unwrap();
        assert!(relu.backward(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn output_shape_is_identity() {
        assert_eq!(Activation::relu().output_shape(&[4, 5]), vec![4, 5]);
    }
}
