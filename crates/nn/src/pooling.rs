//! Spatial pooling layers.

use crate::error::NnError;
use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2-D max pooling over non-overlapping windows of inputs shaped
/// `[batch, channels, height, width]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: (usize, usize),
    cached_input_shape: Vec<usize>,
    /// For every output element, the flat input index of its maximum.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given window (also used as the stride).
    ///
    /// # Errors
    ///
    /// Returns an error if either window dimension is zero.
    pub fn new(window: (usize, usize)) -> Result<Self, NnError> {
        if window.0 == 0 || window.1 == 0 {
            return Err(NnError::invalid_parameter("window", "must be positive"));
        }
        Ok(MaxPool2d {
            window,
            cached_input_shape: Vec::new(),
            argmax: Vec::new(),
        })
    }

    /// Returns the pooling window.
    pub fn window(&self) -> (usize, usize) {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NnError::shape_mismatch("[batch, channels, h, w]", shape));
        }
        let (batch, ch, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = h / self.window.0;
        let ow = w / self.window.1;
        if oh == 0 || ow == 0 {
            return Err(NnError::shape_mismatch(
                "input at least as large as the pooling window",
                shape,
            ));
        }
        let mut out = Tensor::zeros(&[batch, ch, oh, ow]);
        self.argmax = vec![0; batch * ch * oh * ow];
        let x = input.as_slice();
        let y = out.as_mut_slice();
        for b in 0..batch {
            for c in 0..ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.window.0 {
                            for kx in 0..self.window.1 {
                                let iy = oy * self.window.0 + ky;
                                let ix = ox * self.window.1 + kx;
                                let idx = ((b * ch + c) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((b * ch + c) * oh + oy) * ow + ox;
                        y[oidx] = best;
                        self.argmax[oidx] = best_idx;
                    }
                }
            }
        }
        self.cached_input_shape = shape.to_vec();
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_input_shape.is_empty() {
            return Err(NnError::invalid_parameter(
                "state",
                "backward called before forward",
            ));
        }
        if grad_output.len() != self.argmax.len() {
            return Err(NnError::shape_mismatch(
                format!("{} pooled elements", self.argmax.len()),
                grad_output.shape(),
            ));
        }
        let mut grad_input = Tensor::zeros(&self.cached_input_shape);
        let gx = grad_input.as_mut_slice();
        for (o, &g) in grad_output.as_slice().iter().enumerate() {
            gx[self.argmax[o]] += g;
        }
        Ok(grad_input)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        if input_shape.len() != 3 {
            return input_shape.to_vec();
        }
        vec![
            input_shape[0],
            input_shape[1] / self.window.0,
            input_shape[2] / self.window.1,
        ]
    }
}

/// Global average pooling: collapses `[batch, channels, h, w]` to `[batch, channels]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAveragePool {
    cached_input_shape: Vec<usize>,
}

impl GlobalAveragePool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAveragePool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NnError::shape_mismatch("[batch, channels, h, w]", shape));
        }
        let (batch, ch, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let area = (h * w) as f64;
        let mut out = Tensor::zeros(&[batch, ch]);
        for b in 0..batch {
            for c in 0..ch {
                let start = ((b * ch + c) * h) * w;
                let sum: f64 = input.as_slice()[start..start + h * w].iter().sum();
                out.set2(b, c, sum / area);
            }
        }
        self.cached_input_shape = shape.to_vec();
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_input_shape.is_empty() {
            return Err(NnError::invalid_parameter(
                "state",
                "backward called before forward",
            ));
        }
        let (batch, ch, h, w) = (
            self.cached_input_shape[0],
            self.cached_input_shape[1],
            self.cached_input_shape[2],
            self.cached_input_shape[3],
        );
        if grad_output.shape() != [batch, ch] {
            return Err(NnError::shape_mismatch(
                format!("[{batch}, {ch}]"),
                grad_output.shape(),
            ));
        }
        let area = (h * w) as f64;
        let mut grad_input = Tensor::zeros(&self.cached_input_shape);
        let gx = grad_input.as_mut_slice();
        for b in 0..batch {
            for c in 0..ch {
                let g = grad_output.at2(b, c) / area;
                let start = ((b * ch + c) * h) * w;
                for v in gx[start..start + h * w].iter_mut() {
                    *v = g;
                }
            }
        }
        Ok(grad_input)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        if input_shape.len() != 3 {
            return input_shape.to_vec();
        }
        vec![input_shape[0]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pooling_picks_window_maxima() {
        let mut pool = MaxPool2d::new((2, 2)).unwrap();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, 3.0, 4.0, 7.0, 8.0, 9.0, 1.0, 2.0, 3.0, 0.0, 5.0, 4.0, 1.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 9.0, 4.0]);
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new((2, 2)).unwrap();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        pool.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let gx = pool.backward(&g).unwrap();
        // The maxima were at positions 4 (8.0), 6 (6.0), 12 (2.0), 14 (2.0).
        assert_eq!(gx.as_slice()[4], 1.0);
        assert_eq!(gx.as_slice()[6], 2.0);
        assert_eq!(gx.as_slice()[12], 3.0);
        assert_eq!(gx.as_slice()[14], 4.0);
        assert_eq!(gx.as_slice().iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn global_average_pool_values_and_gradient() {
        let mut gap = GlobalAveragePool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = gap.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
        let gx = gap
            .backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap())
            .unwrap();
        assert!(gx.as_slice()[..4].iter().all(|&v| (v - 1.0).abs() < 1e-12));
        assert!(gx.as_slice()[4..].iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(MaxPool2d::new((0, 2)).is_err());
        let mut pool = MaxPool2d::new((4, 4)).unwrap();
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut gap = GlobalAveragePool::new();
        assert!(gap.forward(&Tensor::zeros(&[2, 3])).is_err());
        assert!(gap.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn output_shapes() {
        let pool = MaxPool2d::new((2, 2)).unwrap();
        assert_eq!(pool.output_shape(&[8, 16, 16]), vec![8, 8, 8]);
        let gap = GlobalAveragePool::new();
        assert_eq!(gap.output_shape(&[8, 16, 16]), vec![8]);
    }
}
