//! Gradient-descent optimizers.

use crate::error::NnError;

/// An optimizer updates parameter slices in place given their gradients.
///
/// Parameter groups are identified by their position in the list passed to
/// [`Optimizer::step`]; models must pass groups in a stable order (as
/// [`crate::model::Sequential`] does) so that stateful optimizers track the right
/// moments.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step to every `(parameters, gradients)` group.
    ///
    /// # Errors
    ///
    /// Returns an error if a group's parameter and gradient lengths differ.
    fn step(&mut self, groups: &mut [(&mut [f64], &[f64])]) -> Result<(), NnError>;

    /// Returns the current learning rate.
    fn learning_rate(&self) -> f64;

    /// Sets the learning rate (used by schedules and the co-design tuner).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, groups: &mut [(&mut [f64], &[f64])]) -> Result<(), NnError> {
        if self.velocity.len() < groups.len() {
            self.velocity.resize(groups.len(), Vec::new());
        }
        for (g, (params, grads)) in groups.iter_mut().enumerate() {
            if params.len() != grads.len() {
                return Err(NnError::invalid_parameter(
                    "groups",
                    "parameter and gradient lengths differ",
                ));
            }
            if self.velocity[g].len() != params.len() {
                self.velocity[g] = vec![0.0; params.len()];
            }
            for i in 0..params.len() {
                let v = self.momentum * self.velocity[g][i] - self.lr * grads[i];
                self.velocity[g][i] = v;
                params[i] += v;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the standard hyper-parameters (β1 = 0.9, β2 = 0.999).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, groups: &mut [(&mut [f64], &[f64])]) -> Result<(), NnError> {
        self.t += 1;
        if self.m.len() < groups.len() {
            self.m.resize(groups.len(), Vec::new());
            self.v.resize(groups.len(), Vec::new());
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (g, (params, grads)) in groups.iter_mut().enumerate() {
            if params.len() != grads.len() {
                return Err(NnError::invalid_parameter(
                    "groups",
                    "parameter and gradient lengths differ",
                ));
            }
            if self.m[g].len() != params.len() {
                self.m[g] = vec![0.0; params.len()];
                self.v[g] = vec![0.0; params.len()];
            }
            for i in 0..params.len() {
                self.m[g][i] = self.beta1 * self.m[g][i] + (1.0 - self.beta1) * grads[i];
                self.v[g][i] = self.beta2 * self.v[g][i] + (1.0 - self.beta2) * grads[i] * grads[i];
                let m_hat = self.m[g][i] / bc1;
                let v_hat = self.v[g][i] / bc2;
                params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        // Minimize f(x) = (x - 3)^2 starting from x = 0.
        let mut x = vec![0.0f64];
        for _ in 0..steps {
            let grad = vec![2.0 * (x[0] - 3.0)];
            let mut groups = vec![(x.as_mut_slice(), grad.as_slice())];
            opt.step(&mut groups).unwrap();
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_descent(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let plain = {
            let mut opt = Sgd::new(0.01);
            quadratic_descent(&mut opt, 50)
        };
        let momentum = {
            let mut opt = Sgd::with_momentum(0.01, 0.9);
            quadratic_descent(&mut opt, 50)
        };
        assert!((momentum - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let x = quadratic_descent(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    fn mismatched_groups_rejected() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![0.0; 3];
        let grads = vec![0.0; 2];
        let mut groups = vec![(params.as_mut_slice(), grads.as_slice())];
        assert!(opt.step(&mut groups).is_err());
    }
}
