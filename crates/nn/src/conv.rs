//! 1-D and 2-D convolution layers.
//!
//! The emergency-sound detectors and the Cross3D-style localization back-end are CNNs
//! over time–frequency (or SRP-map) inputs; [`Conv2d`] is the workhorse layer, and
//! [`Conv1d`] covers raw-waveform front-ends by delegating to a height-1 [`Conv2d`].

use crate::error::NnError;
use crate::init::he_uniform;
use crate::layer::Layer;
use crate::tensor::Tensor;

/// A 2-D convolution over inputs of shape `[batch, in_channels, height, width]` with
/// zero padding.
///
/// # Example
///
/// ```
/// use ispot_nn::{conv::Conv2d, layer::Layer, Tensor};
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut conv = Conv2d::new(1, 4, (3, 3), 1, 1, 0)?;
/// let y = conv.forward(&Tensor::zeros(&[2, 1, 8, 8]))?;
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: (usize, usize),
    stride: usize,
    padding: (usize, usize),
    weights: Vec<f64>,
    bias: Vec<f64>,
    grad_weights: Vec<f64>,
    grad_bias: Vec<f64>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with `kernel = (kh, kw)`, the given `stride` and symmetric
    /// zero `padding` applied to both spatial dimensions, initialized with He-uniform
    /// weights drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if any channel count, kernel dimension or the stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self, NnError> {
        Self::with_padding(
            in_channels,
            out_channels,
            kernel,
            stride,
            (padding, padding),
            seed,
        )
    }

    /// Creates a convolution with independent zero padding for the height and width
    /// dimensions (used by [`Conv1d`], which must not pad its unit height).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Conv2d::new`].
    pub fn with_padding(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: (usize, usize),
        seed: u64,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::invalid_parameter("channels", "must be positive"));
        }
        if kernel.0 == 0 || kernel.1 == 0 {
            return Err(NnError::invalid_parameter("kernel", "must be positive"));
        }
        if stride == 0 {
            return Err(NnError::invalid_parameter("stride", "must be positive"));
        }
        let fan_in = in_channels * kernel.0 * kernel.1;
        let count = out_channels * fan_in;
        Ok(Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weights: he_uniform(count, fan_in, seed),
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; count],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
        })
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size `(height, width)`.
    pub fn kernel(&self) -> (usize, usize) {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied to the (height, width) dimensions.
    pub fn padding(&self) -> (usize, usize) {
        self.padding
    }

    fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding.0).saturating_sub(self.kernel.0) / self.stride + 1;
        let ow = (w + 2 * self.padding.1).saturating_sub(self.kernel.1) / self.stride + 1;
        (oh, ow)
    }

    #[inline]
    fn weight_index(&self, o: usize, i: usize, kh: usize, kw: usize) -> usize {
        ((o * self.in_channels + i) * self.kernel.0 + kh) * self.kernel.1 + kw
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(NnError::shape_mismatch(
                format!("[batch, {}, h, w]", self.in_channels),
                shape,
            ));
        }
        let (batch, _, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if h + 2 * self.padding.0 < self.kernel.0 || w + 2 * self.padding.1 < self.kernel.1 {
            return Err(NnError::shape_mismatch(
                "input at least as large as the kernel (after padding)",
                shape,
            ));
        }
        let (oh, ow) = self.out_dims(h, w);
        let mut out = Tensor::zeros(&[batch, self.out_channels, oh, ow]);
        let x = input.as_slice();
        let y = out.as_mut_slice();
        let (pad_h, pad_w) = (self.padding.0 as isize, self.padding.1 as isize);
        for b in 0..batch {
            for o in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[o];
                        for i in 0..self.in_channels {
                            for kh in 0..self.kernel.0 {
                                let iy = (oy * self.stride + kh) as isize - pad_h;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kw in 0..self.kernel.1 {
                                    let ix = (ox * self.stride + kw) as isize - pad_w;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * self.in_channels + i) * h + iy as usize) * w
                                        + ix as usize;
                                    acc += self.weights[self.weight_index(o, i, kh, kw)] * x[xi];
                                }
                            }
                        }
                        y[((b * self.out_channels + o) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::invalid_parameter("state", "backward called before forward"))?
            .clone();
        let shape = input.shape();
        let (batch, _, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_dims(h, w);
        if grad_output.shape() != [batch, self.out_channels, oh, ow] {
            return Err(NnError::shape_mismatch(
                format!("[{batch}, {}, {oh}, {ow}]", self.out_channels),
                grad_output.shape(),
            ));
        }
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
        let mut grad_input = Tensor::zeros(shape);
        let x = input.as_slice();
        let g = grad_output.as_slice();
        let gx = grad_input.as_mut_slice();
        let (pad_h, pad_w) = (self.padding.0 as isize, self.padding.1 as isize);
        for b in 0..batch {
            for o in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[((b * self.out_channels + o) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias[o] += go;
                        for i in 0..self.in_channels {
                            for kh in 0..self.kernel.0 {
                                let iy = (oy * self.stride + kh) as isize - pad_h;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kw in 0..self.kernel.1 {
                                    let ix = (ox * self.stride + kw) as isize - pad_w;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * self.in_channels + i) * h + iy as usize) * w
                                        + ix as usize;
                                    let wi = self.weight_index(o, i, kh, kw);
                                    self.grad_weights[wi] += go * x[xi];
                                    gx[xi] += go * self.weights[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        vec![
            (self.weights.as_mut_slice(), self.grad_weights.as_slice()),
            (self.bias.as_mut_slice(), self.grad_bias.as_slice()),
        ]
    }

    fn num_parameters(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        if input_shape.len() != 3 {
            return input_shape.to_vec();
        }
        let (oh, ow) = self.out_dims(input_shape[1], input_shape[2]);
        vec![self.out_channels, oh, ow]
    }
}

/// A 1-D convolution over inputs of shape `[batch, in_channels, length]`, implemented
/// as a height-1 [`Conv2d`].
#[derive(Debug, Clone)]
pub struct Conv1d {
    inner: Conv2d,
}

impl Conv1d {
    /// Creates a 1-D convolution with the given kernel length, stride and padding.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Conv2d::new`].
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self, NnError> {
        Ok(Conv1d {
            inner: Conv2d::with_padding(
                in_channels,
                out_channels,
                (1, kernel),
                stride,
                (0, padding),
                seed,
            )?,
        })
    }

    fn to_4d(input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 3 {
            return Err(NnError::shape_mismatch("[batch, channels, length]", shape));
        }
        input.clone().reshape(&[shape[0], shape[1], 1, shape[2]])
    }
}

impl Layer for Conv1d {
    fn name(&self) -> &'static str {
        "conv1d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let x4 = Self::to_4d(input)?;
        let y = self.inner.forward(&x4)?;
        let s = y.shape().to_vec();
        y.reshape(&[s[0], s[1], s[3]])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let s = grad_output.shape();
        if s.len() != 3 {
            return Err(NnError::shape_mismatch("[batch, channels, length]", s));
        }
        let g4 = grad_output.clone().reshape(&[s[0], s[1], 1, s[2]])?;
        let gx = self.inner.backward(&g4)?;
        let xs = gx.shape().to_vec();
        gx.reshape(&[xs[0], xs[1], xs[3]])
    }

    fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        self.inner.params_and_grads()
    }

    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        if input_shape.len() != 2 {
            return input_shape.to_vec();
        }
        let inner = self
            .inner
            .output_shape(&[input_shape[0], 1, input_shape[1]]);
        vec![inner[0], inner[2]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 kernel with weight 1 and zero bias copies the channel through.
        let mut conv = Conv2d::new(1, 1, (1, 1), 1, 0, 0).unwrap();
        conv.weights = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec((0..12).map(|v| v as f64).collect(), &[1, 1, 3, 4]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_result() {
        // 2x2 averaging kernel over a 3x3 input, stride 1, no padding.
        let mut conv = Conv2d::new(1, 1, (2, 2), 1, 0, 0).unwrap();
        conv.weights = vec![0.25; 4];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn padding_preserves_spatial_size_and_stride_reduces_it() {
        let mut same = Conv2d::new(2, 3, (3, 3), 1, 1, 1).unwrap();
        assert_eq!(
            same.forward(&Tensor::zeros(&[1, 2, 8, 8])).unwrap().shape(),
            &[1, 3, 8, 8]
        );
        let mut strided = Conv2d::new(2, 3, (3, 3), 2, 1, 1).unwrap();
        assert_eq!(
            strided
                .forward(&Tensor::zeros(&[1, 2, 8, 8]))
                .unwrap()
                .shape(),
            &[1, 3, 4, 4]
        );
        assert_eq!(same.output_shape(&[2, 8, 8]), vec![3, 8, 8]);
    }

    #[test]
    fn gradient_check_small_conv() {
        let eps = 1e-6;
        let mut conv = Conv2d::new(1, 2, (2, 2), 1, 1, 3).unwrap();
        let x = Tensor::from_vec(
            (0..16).map(|v| (v as f64 * 0.37).sin()).collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = conv.forward(&x).unwrap();
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        let grad_input = conv.backward(&ones).unwrap();
        // Input gradient check.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp: f64 = conv.forward(&xp).unwrap().as_slice().iter().sum();
            let fm: f64 = conv.forward(&xm).unwrap().as_slice().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad_input.as_slice()[idx] - numeric).abs() < 1e-5,
                "input grad {idx}"
            );
        }
        // Weight gradient check.
        conv.forward(&x).unwrap();
        conv.backward(&ones).unwrap();
        let analytic = conv.grad_weights.clone();
        #[allow(clippy::needless_range_loop)] // idx also mutates conv.weights
        for idx in 0..conv.weights.len() {
            let orig = conv.weights[idx];
            conv.weights[idx] = orig + eps;
            let fp: f64 = conv.forward(&x).unwrap().as_slice().iter().sum();
            conv.weights[idx] = orig - eps;
            let fm: f64 = conv.forward(&x).unwrap().as_slice().iter().sum();
            conv.weights[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic[idx] - numeric).abs() < 1e-5,
                "weight grad {idx}: {} vs {numeric}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn conv1d_shapes_and_delegation() {
        let mut conv = Conv1d::new(2, 4, 5, 1, 2, 0).unwrap();
        let y = conv.forward(&Tensor::zeros(&[3, 2, 32])).unwrap();
        assert_eq!(y.shape(), &[3, 4, 32]);
        let gx = conv.backward(&Tensor::zeros(&[3, 4, 32])).unwrap();
        assert_eq!(gx.shape(), &[3, 2, 32]);
        assert_eq!(conv.num_parameters(), 4 * 2 * 5 + 4);
        assert_eq!(conv.output_shape(&[2, 32]), vec![4, 32]);
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(Conv2d::new(0, 1, (3, 3), 1, 0, 0).is_err());
        assert!(Conv2d::new(1, 1, (0, 3), 1, 0, 0).is_err());
        assert!(Conv2d::new(1, 1, (3, 3), 0, 0, 0).is_err());
        let mut conv = Conv2d::new(1, 1, (3, 3), 1, 0, 0).unwrap();
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 8, 8])).is_err());
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 6, 6])).is_err());
    }
}
