//! Simulated uniform weight quantization.
//!
//! Quantization is the second compression pass used by the co-design workflow: weights
//! are snapped to a `2^bits`-level uniform grid (per parameter group), which models the
//! accuracy impact of integer deployment while keeping the arithmetic in `f64`. The
//! [`QuantizationReport`] gives the model-size reduction that the hardware cost model
//! consumes.

use crate::error::NnError;
use crate::model::Sequential;
use serde::{Deserialize, Serialize};

/// Summary of a quantization pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantizationReport {
    /// Bit width the weights were quantized to.
    pub bits: u8,
    /// Number of quantized parameters.
    pub num_parameters: usize,
    /// Mean absolute quantization error introduced.
    pub mean_abs_error: f64,
    /// Model size in bytes before quantization (assuming 32-bit floats, the deployment
    /// baseline used in the paper's workflow).
    pub original_bytes: usize,
    /// Model size in bytes after quantization.
    pub quantized_bytes: usize,
}

impl QuantizationReport {
    /// Fractional size reduction, e.g. 0.75 for 8-bit quantization of 32-bit weights.
    pub fn size_reduction(&self) -> f64 {
        if self.original_bytes == 0 {
            0.0
        } else {
            1.0 - self.quantized_bytes as f64 / self.original_bytes as f64
        }
    }
}

/// Quantizes every parameter group of `model` to a symmetric uniform grid with the
/// given bit width (2–16), modifying the weights in place.
///
/// # Errors
///
/// Returns an error if `bits` is outside `[2, 16]`.
///
/// # Example
///
/// ```
/// use ispot_nn::prelude::*;
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut model = Sequential::new();
/// model.push(Dense::new(16, 16, 0)?);
/// let report = quantize_model(&mut model, 8)?;
/// assert!(report.size_reduction() > 0.7);
/// # Ok(())
/// # }
/// ```
pub fn quantize_model(model: &mut Sequential, bits: u8) -> Result<QuantizationReport, NnError> {
    if !(2..=16).contains(&bits) {
        return Err(NnError::invalid_parameter(
            "bits",
            format!("must be within [2, 16], got {bits}"),
        ));
    }
    let levels = (1u32 << bits) as f64 - 1.0;
    let mut num_parameters = 0usize;
    let mut total_error = 0.0;
    for (params, _) in model.parameter_groups() {
        if params.is_empty() {
            continue;
        }
        let max_abs = params.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        num_parameters += params.len();
        if max_abs <= 0.0 {
            continue;
        }
        let step = 2.0 * max_abs / levels;
        for w in params.iter_mut() {
            let q = ((*w + max_abs) / step).round() * step - max_abs;
            total_error += (q - *w).abs();
            *w = q;
        }
    }
    let original_bytes = num_parameters * 4;
    let quantized_bytes = (num_parameters * bits as usize).div_ceil(8);
    Ok(QuantizationReport {
        bits,
        num_parameters,
        mean_abs_error: if num_parameters == 0 {
            0.0
        } else {
            total_error / num_parameters as f64
        },
        original_bytes,
        quantized_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;

    fn model() -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(32, 16, 5).unwrap());
        m.push(Dense::new(16, 4, 6).unwrap());
        m
    }

    #[test]
    fn higher_bit_width_gives_lower_error() {
        let mut coarse = model();
        let mut fine = model();
        let r4 = quantize_model(&mut coarse, 4).unwrap();
        let r12 = quantize_model(&mut fine, 12).unwrap();
        assert!(r12.mean_abs_error < r4.mean_abs_error);
    }

    #[test]
    fn size_reduction_matches_bit_width() {
        let mut m = model();
        let r = quantize_model(&mut m, 8).unwrap();
        assert!((r.size_reduction() - 0.75).abs() < 0.01);
        let mut m = model();
        let r = quantize_model(&mut m, 4).unwrap();
        assert!((r.size_reduction() - 0.875).abs() < 0.01);
    }

    #[test]
    fn quantized_weights_lie_on_the_grid() {
        let mut m = model();
        quantize_model(&mut m, 3).unwrap();
        // With 3 bits there are at most 8 distinct levels per parameter group.
        for (params, _) in m.parameter_groups() {
            let mut distinct: Vec<f64> = params.to_vec();
            distinct.sort_by(|a, b| a.total_cmp(b));
            distinct.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            assert!(distinct.len() <= 9, "found {} levels", distinct.len());
        }
    }

    #[test]
    fn idempotent_on_already_quantized_weights() {
        let mut m = model();
        quantize_model(&mut m, 6).unwrap();
        let snapshot: Vec<Vec<f64>> = m
            .parameter_groups()
            .iter()
            .map(|(p, _)| p.to_vec())
            .collect();
        let second = quantize_model(&mut m, 6).unwrap();
        let after: Vec<Vec<f64>> = m
            .parameter_groups()
            .iter()
            .map(|(p, _)| p.to_vec())
            .collect();
        assert_eq!(snapshot, after);
        assert!(second.mean_abs_error < 1e-12);
    }

    #[test]
    fn invalid_bit_widths_rejected() {
        let mut m = model();
        assert!(quantize_model(&mut m, 1).is_err());
        assert!(quantize_model(&mut m, 32).is_err());
    }
}
