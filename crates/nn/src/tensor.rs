//! A minimal dense tensor with an explicit shape.

use crate::error::NnError;
use serde::{Deserialize, Serialize};

/// A row-major, dynamically shaped tensor of `f64` values.
///
/// The first dimension is conventionally the batch dimension.
///
/// # Example
///
/// ```
/// use ispot_nn::Tensor;
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not equal the product of
    /// the shape dimensions.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NnError::shape_mismatch(
                format!("{expected} elements for shape {shape:?}"),
                &[data.len()],
            ));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a 2-D tensor (`rows.len() x rows[0].len()`) from row vectors — the
    /// typical way to build a training batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, NnError> {
        if rows.is_empty() {
            return Err(NnError::invalid_parameter("rows", "must not be empty"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(NnError::shape_mismatch(
                    format!("row of length {cols}"),
                    &[r.len()],
                ));
            }
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying data slice (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the underlying data slice mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes the tensor without copying.
    ///
    /// # Errors
    ///
    /// Returns an error if the new shape has a different number of elements.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NnError::shape_mismatch(
                format!("{} elements", self.data.len()),
                shape,
            ));
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Returns the batch size (size of the first dimension), or 0 for a rank-0 tensor.
    pub fn batch_size(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Returns the value at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of range.
    pub fn at2(&self, i: usize, j: usize) -> f64 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        self.data[i * self.shape[1] + j]
    }

    /// Sets the value at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of range.
    pub fn set2(&mut self, i: usize, j: usize, v: f64) {
        assert_eq!(self.shape.len(), 2, "set2 requires a 2-D tensor");
        self.data[i * self.shape[1] + j] = v;
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, NnError> {
        if self.shape != other.shape {
            return Err(NnError::shape_mismatch(
                format!("{:?}", self.shape),
                &other.shape,
            ));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Element-wise scaling by a constant.
    pub fn scale(&self, k: f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Applies a function element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Extracts the rows of a 2-D tensor as vectors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> Vec<Vec<f64>> {
        assert_eq!(self.shape.len(), 2, "rows requires a 2-D tensor");
        self.data
            .chunks(self.shape[1])
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.batch_size(), 2);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Tensor::from_rows(&[]).is_err());
        assert!(Tensor::zeros(&[2, 2]).reshape(&[3]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.clone().reshape(&[4]).unwrap();
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn elementwise_operations() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, -1.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 1.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let t = Tensor::from_rows(&rows).unwrap();
        assert_eq!(t.rows(), rows);
    }

    #[test]
    fn set2_writes_in_place() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set2(0, 1, 7.0);
        assert_eq!(t.at2(0, 1), 7.0);
    }
}
