//! Magnitude pruning.
//!
//! The co-design workflow of Sec. IV-B shrinks the Cross3D model by ~86 %; magnitude
//! pruning (zeroing the smallest weights) is one of the two compression passes used to
//! get there (the other is quantization).

use crate::error::NnError;
use crate::model::Sequential;

/// Zeroes the fraction `ratio` (0–1) of smallest-magnitude weights across the whole
/// model (global magnitude pruning) and returns the number of weights that were zeroed.
///
/// # Errors
///
/// Returns an error if `ratio` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use ispot_nn::prelude::*;
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut model = Sequential::new();
/// model.push(Dense::new(8, 8, 0)?);
/// let zeroed = prune_magnitude(&mut model, 0.5)?;
/// // About half of the 72 parameters end up at zero (the 8 biases already were).
/// assert!(zeroed >= 20 && zeroed <= 40);
/// assert!(sparsity(&mut model) >= 0.45);
/// # Ok(())
/// # }
/// ```
pub fn prune_magnitude(model: &mut Sequential, ratio: f64) -> Result<usize, NnError> {
    if !(0.0..=1.0).contains(&ratio) {
        return Err(NnError::invalid_parameter(
            "ratio",
            format!("must be within [0, 1], got {ratio}"),
        ));
    }
    // Collect all weight magnitudes to find the global threshold.
    let mut magnitudes: Vec<f64> = Vec::new();
    for (params, _) in model.parameter_groups() {
        magnitudes.extend(params.iter().map(|w| w.abs()));
    }
    if magnitudes.is_empty() {
        return Ok(0);
    }
    magnitudes.sort_by(|a, b| a.total_cmp(b));
    let cutoff_index = ((magnitudes.len() as f64) * ratio).floor() as usize;
    if cutoff_index == 0 {
        return Ok(0);
    }
    let threshold = magnitudes[(cutoff_index - 1).min(magnitudes.len() - 1)];
    let mut zeroed = 0;
    for (params, _) in model.parameter_groups() {
        for w in params.iter_mut() {
            if w.abs() <= threshold && *w != 0.0 {
                *w = 0.0;
                zeroed += 1;
            }
        }
    }
    Ok(zeroed)
}

/// Returns the fraction of exactly-zero parameters in the model.
pub fn sparsity(model: &mut Sequential) -> f64 {
    let mut total = 0usize;
    let mut zeros = 0usize;
    for (params, _) in model.parameter_groups() {
        total += params.len();
        zeros += params.iter().filter(|w| **w == 0.0).count();
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::layer::Layer;

    fn model() -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(16, 32, 1).unwrap());
        m.push(Activation::relu());
        m.push(Dense::new(32, 4, 2).unwrap());
        m
    }

    #[test]
    fn pruning_reaches_requested_sparsity() {
        let mut m = model();
        prune_magnitude(&mut m, 0.7).unwrap();
        let s = sparsity(&mut m);
        assert!((0.6..=0.8).contains(&s), "sparsity {s}");
    }

    #[test]
    fn zero_ratio_is_a_no_op() {
        let mut m = model();
        let zeroed = prune_magnitude(&mut m, 0.0).unwrap();
        assert_eq!(zeroed, 0);
        // Biases start at zero, so baseline sparsity is small but non-zero.
        assert!(sparsity(&mut m) < 0.1);
    }

    #[test]
    fn full_ratio_zeroes_everything() {
        let mut m = model();
        prune_magnitude(&mut m, 1.0).unwrap();
        assert!((sparsity(&mut m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_keeps_large_weights() {
        let mut m = Sequential::new();
        let mut dense = Dense::new(2, 2, 0).unwrap();
        // Hand-set weights with clearly separated magnitudes.
        for (i, w) in dense.params_and_grads().remove(0).0.iter_mut().enumerate() {
            *w = if i % 2 == 0 { 10.0 } else { 0.01 };
        }
        m.push(dense);
        prune_magnitude(&mut m, 0.5).unwrap();
        let groups = m.parameter_groups();
        let weights = &groups[0].0;
        assert!(weights.iter().filter(|w| **w == 10.0).count() >= 2);
        assert!(weights.iter().all(|w| *w == 0.0 || *w == 10.0));
    }

    #[test]
    fn invalid_ratio_rejected() {
        let mut m = model();
        assert!(prune_magnitude(&mut m, 1.5).is_err());
        assert!(prune_magnitude(&mut m, -0.1).is_err());
    }
}
