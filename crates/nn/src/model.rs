//! Sequential model container: forward, backward, training and summaries.

use crate::error::NnError;
use crate::layer::Layer;
use crate::loss::{CrossEntropyLoss, Loss};
use crate::optimizer::Optimizer;
use crate::tensor::Tensor;

/// A description of one layer, used by model summaries and the co-design IR builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer name (e.g. `"conv2d"`).
    pub name: String,
    /// Number of trainable parameters.
    pub parameters: usize,
    /// Output shape (excluding the batch dimension).
    pub output_shape: Vec<usize>,
}

/// A stack of layers applied in sequence.
///
/// # Example
///
/// ```
/// use ispot_nn::prelude::*;
///
/// # fn main() -> Result<(), ispot_nn::NnError> {
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 8, 1)?);
/// model.push(Activation::relu());
/// model.push(Dense::new(8, 3, 2)?);
/// assert_eq!(model.num_parameters(), 4 * 8 + 8 + 8 * 3 + 3);
/// let y = model.forward(&Tensor::zeros(&[2, 4]))?;
/// assert_eq!(y.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer to the model.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns true if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    /// Runs the forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] if the model has no layers, or any layer error.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs the backward pass through every layer, in reverse order.
    ///
    /// # Errors
    ///
    /// Returns any layer error (e.g. backward before forward).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Runs one training step on a batch: forward, loss, backward and optimizer update.
    /// Returns the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates layer, loss and optimizer errors.
    pub fn train_batch(
        &mut self,
        input: &Tensor,
        targets: &[usize],
        loss: &dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> Result<f64, NnError> {
        let output = self.forward(input)?;
        let (loss_value, grad) = loss.compute(&output, targets)?;
        self.backward(&grad)?;
        let mut groups: Vec<(&mut [f64], &[f64])> = Vec::new();
        for layer in &mut self.layers {
            groups.extend(layer.params_and_grads());
        }
        optimizer.step(&mut groups)?;
        Ok(loss_value)
    }

    /// Returns the predicted class index (argmax of the final layer output) for every
    /// batch element.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors; the output must be 2-D.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>, NnError> {
        let output = self.forward(input)?;
        if output.shape().len() != 2 {
            return Err(NnError::shape_mismatch("[batch, classes]", output.shape()));
        }
        Ok(output
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Returns the softmax class probabilities for every batch element.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors; the output must be 2-D.
    pub fn predict_proba(&mut self, input: &Tensor) -> Result<Vec<Vec<f64>>, NnError> {
        let output = self.forward(input)?;
        if output.shape().len() != 2 {
            return Err(NnError::shape_mismatch("[batch, classes]", output.shape()));
        }
        Ok(CrossEntropyLoss::softmax(&output).rows())
    }

    /// Returns `(parameters, gradients)` groups across all layers, in a stable order.
    pub fn parameter_groups(&mut self) -> Vec<(&mut [f64], &[f64])> {
        let mut groups = Vec::new();
        for layer in &mut self.layers {
            groups.extend(layer.params_and_grads());
        }
        groups
    }

    /// Describes every layer for an input of shape `input_shape` (excluding the batch
    /// dimension), tracking how the shape evolves through the stack.
    pub fn summary(&self, input_shape: &[usize]) -> Vec<LayerSummary> {
        let mut shape = input_shape.to_vec();
        self.layers
            .iter()
            .map(|layer| {
                shape = layer.output_shape(&shape);
                LayerSummary {
                    name: layer.name().to_string(),
                    parameters: layer.num_parameters(),
                    output_shape: shape.clone(),
                }
            })
            .collect()
    }

    /// Classification accuracy of the model on `(input, targets)`.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn accuracy(&mut self, input: &Tensor, targets: &[usize]) -> Result<f64, NnError> {
        let predictions = self.predict(input)?;
        if predictions.len() != targets.len() {
            return Err(NnError::invalid_parameter(
                "targets",
                "target count must match the batch size",
            ));
        }
        let correct = predictions
            .iter()
            .zip(targets)
            .filter(|(p, t)| p == t)
            .count();
        Ok(correct as f64 / targets.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::dense::Dense;
    use crate::loss::CrossEntropyLoss;
    use crate::optimizer::{Adam, Sgd};

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn xor_is_learned_by_a_small_mlp() {
        let (x, y) = xor_data();
        let mut model = Sequential::new();
        model.push(Dense::new(2, 16, 11).unwrap());
        model.push(Activation::tanh());
        model.push(Dense::new(16, 2, 12).unwrap());
        let loss = CrossEntropyLoss::new();
        let mut opt = Adam::new(0.05);
        let mut final_loss = f64::INFINITY;
        for _ in 0..500 {
            final_loss = model.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        assert!(final_loss < 0.1, "final loss {final_loss}");
        assert_eq!(model.predict(&x).unwrap(), y);
        assert_eq!(model.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn training_reduces_loss_with_sgd() {
        let (x, y) = xor_data();
        let mut model = Sequential::new();
        model.push(Dense::new(2, 8, 3).unwrap());
        model.push(Activation::relu());
        model.push(Dense::new(8, 2, 4).unwrap());
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let first = model.train_batch(&x, &y, &loss, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = model.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn summary_tracks_shapes_and_parameters() {
        let mut model = Sequential::new();
        model.push(Dense::new(10, 4, 0).unwrap());
        model.push(Activation::relu());
        model.push(Dense::new(4, 2, 1).unwrap());
        let summary = model.summary(&[10]);
        assert_eq!(summary.len(), 3);
        assert_eq!(summary[0].output_shape, vec![4]);
        assert_eq!(summary[2].output_shape, vec![2]);
        assert_eq!(
            summary.iter().map(|s| s.parameters).sum::<usize>(),
            model.num_parameters()
        );
    }

    #[test]
    fn empty_model_is_an_error() {
        let mut model = Sequential::new();
        assert!(matches!(
            model.forward(&Tensor::zeros(&[1, 2])),
            Err(NnError::EmptyModel)
        ));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut model = Sequential::new();
        model.push(Dense::new(3, 4, 9).unwrap());
        let probs = model.predict_proba(&Tensor::zeros(&[2, 3])).unwrap();
        for row in probs {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }
}
