//! Deterministic weight initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `count` weights from a uniform distribution scaled by the Glorot/Xavier rule
/// for a layer with `fan_in` inputs and `fan_out` outputs, using a fixed `seed` so that
/// experiments are reproducible.
pub fn xavier_uniform(count: usize, fan_in: usize, fan_out: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    (0..count)
        .map(|_| rng.random_range(-limit..limit))
        .collect()
}

/// Draws `count` weights from a uniform distribution scaled by the He/Kaiming rule for
/// ReLU networks with `fan_in` inputs.
pub fn he_uniform(count: usize, fan_in: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / fan_in.max(1) as f64).sqrt();
    (0..count)
        .map(|_| rng.random_range(-limit..limit))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialization_is_deterministic_per_seed() {
        assert_eq!(xavier_uniform(16, 4, 4, 7), xavier_uniform(16, 4, 4, 7));
        assert_ne!(xavier_uniform(16, 4, 4, 7), xavier_uniform(16, 4, 4, 8));
        assert_eq!(he_uniform(16, 4, 7), he_uniform(16, 4, 7));
    }

    #[test]
    fn weights_respect_the_scale_limit() {
        let fan_in = 100;
        let fan_out = 50;
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let w = xavier_uniform(1000, fan_in, fan_out, 1);
        assert!(w.iter().all(|v| v.abs() <= limit));
        let limit_he = (6.0 / fan_in as f64).sqrt();
        let w = he_uniform(1000, fan_in, 1);
        assert!(w.iter().all(|v| v.abs() <= limit_he));
    }

    #[test]
    fn weights_are_roughly_zero_mean() {
        let w = he_uniform(10_000, 64, 3);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.02);
    }
}
