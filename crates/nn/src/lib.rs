//! # ispot-nn
//!
//! A small, dependency-free neural-network library sufficient for the deep-learning
//! back-ends of the I-SPOT pipeline: the CNN emergency-sound detectors (Sec. III of the
//! paper) and the Cross3D-style localization network (Sec. IV-B). It supports
//! feed-forward inference, mini-batch training with backpropagation, magnitude pruning
//! and uniform weight quantization — the two compression levers exercised by the
//! hardware–algorithm co-design workflow.
//!
//! The library is deliberately simple (dense, 1-D/2-D convolution, pooling, ReLU-family
//! activations, softmax cross-entropy, SGD/Adam) and operates on `f64` tensors with an
//! explicit batch dimension.
//!
//! # Example
//!
//! ```
//! use ispot_nn::prelude::*;
//!
//! # fn main() -> Result<(), ispot_nn::NnError> {
//! // A tiny classifier trained on a linearly separable toy problem.
//! let mut model = Sequential::new();
//! model.push(Dense::new(2, 8, 42)?);
//! model.push(Activation::relu());
//! model.push(Dense::new(8, 2, 43)?);
//! let mut optimizer = Sgd::new(0.1);
//! let loss = CrossEntropyLoss::new();
//! let x = Tensor::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]])?;
//! let y = vec![0usize, 1];
//! for _ in 0..50 {
//!     model.train_batch(&x, &y, &loss, &mut optimizer)?;
//! }
//! assert_eq!(model.predict(&x)?, vec![0, 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod activation;
pub mod conv;
pub mod dense;
pub mod error;
pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optimizer;
pub mod pooling;
pub mod prune;
pub mod quantize;
pub mod tensor;

pub use error::NnError;
pub use tensor::Tensor;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::conv::{Conv1d, Conv2d};
    pub use crate::dense::Dense;
    pub use crate::error::NnError;
    pub use crate::layer::{Flatten, Layer};
    pub use crate::loss::{CrossEntropyLoss, Loss, MseLoss};
    pub use crate::model::Sequential;
    pub use crate::optimizer::{Adam, Optimizer, Sgd};
    pub use crate::pooling::{GlobalAveragePool, MaxPool2d};
    pub use crate::prune::{prune_magnitude, sparsity};
    pub use crate::quantize::{quantize_model, QuantizationReport};
    pub use crate::tensor::Tensor;
}
