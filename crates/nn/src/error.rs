//! Error type for the neural-network library.

use std::error::Error;
use std::fmt;

/// Errors produced when building or running neural networks.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Tensor shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Description of what was expected.
        expected: String,
        /// The shape that was supplied.
        actual: Vec<usize>,
    },
    /// A layer or training parameter is invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The model has no layers or is otherwise unusable.
    EmptyModel,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual:?}")
            }
            NnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NnError::EmptyModel => write!(f, "model has no layers"),
        }
    }
}

impl Error for NnError {}

impl NnError {
    /// Convenience constructor for [`NnError::ShapeMismatch`].
    pub fn shape_mismatch(expected: impl Into<String>, actual: &[usize]) -> Self {
        NnError::ShapeMismatch {
            expected: expected.into(),
            actual: actual.to_vec(),
        }
    }

    /// Convenience constructor for [`NnError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, reason: impl Into<String>) -> Self {
        NnError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        assert!(NnError::shape_mismatch("[batch, 4]", &[2, 3])
            .to_string()
            .contains("[2, 3]"));
        assert!(NnError::invalid_parameter("lr", "must be positive")
            .to_string()
            .contains("lr"));
        assert!(!NnError::EmptyModel.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
