//! The [`Layer`] trait and shape-only utility layers.

use crate::error::NnError;
use crate::tensor::Tensor;

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute gradients with respect to both their parameters and
/// their input. Parameter gradients are accumulated internally and exposed through
/// [`Layer::params_and_grads`] for the optimizer.
pub trait Layer: std::fmt::Debug {
    /// A short human-readable layer name (e.g. `"dense"`, `"conv2d"`).
    fn name(&self) -> &'static str;

    /// Runs the forward pass for a batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Runs the backward pass, consuming the gradient with respect to the layer output
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns an error if [`Layer::forward`] has not been called or shapes mismatch.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Returns `(parameters, gradients)` pairs for the optimizer. Parameter-free layers
    /// return an empty vector.
    fn params_and_grads(&mut self) -> Vec<(&mut [f64], &[f64])> {
        Vec::new()
    }

    /// Total number of trainable parameters.
    fn num_parameters(&self) -> usize {
        0
    }

    /// Output shape (excluding the batch dimension) for a given input shape (also
    /// excluding the batch dimension), used for model summaries and the co-design IR.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;
}

/// Flattens any input of shape `[batch, d1, d2, ...]` into `[batch, d1*d2*...]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape().to_vec();
        if shape.is_empty() {
            return Err(NnError::shape_mismatch("at least rank 1", &shape));
        }
        self.cached_shape = shape.clone();
        let batch = shape[0];
        let rest: usize = shape[1..].iter().product();
        input.clone().reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_shape.is_empty() {
            return Err(NnError::invalid_parameter(
                "state",
                "backward called before forward",
            ));
        }
        grad_output.clone().reshape(&self.cached_shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let gx = f.backward(&Tensor::zeros(&[2, 12])).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 4]);
        assert_eq!(f.output_shape(&[3, 4]), vec![12]);
    }

    #[test]
    fn flatten_backward_before_forward_fails() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    fn parameter_free_layer_reports_zero_params() {
        let mut f = Flatten::new();
        assert_eq!(f.num_parameters(), 0);
        assert!(f.params_and_grads().is_empty());
    }
}
