//! Sinks suited to hosted streams, where events arrive on worker threads and
//! the opener keeps only a handle.
//!
//! [`SessionHost::open_stream`](crate::SessionHost::open_stream) takes the sink
//! by value and invokes it from the worker pool, so a caller that wants to see
//! the events needs a *shared* sink: a cheap handle it clones into the host
//! while keeping one for itself. [`SharedVecSink`] is that collector;
//! [`CountingSink`] is its allocation-free counterpart for load tests and
//! benches; [`DiscardSink`] is the explicit "I only want the metrics" choice.

use ispot_core::events::PerceptionEvent;
use ispot_core::sink::EventSink;
use ispot_core::stages::FrameOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Drops every event and frame outcome. Use when only the host's metrics and
/// per-stream statistics matter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscardSink;

impl EventSink for DiscardSink {
    fn on_event(&mut self, _event: &PerceptionEvent) {}
}

/// A clone-to-share event collector: every clone appends to the same vector.
///
/// Clone one handle into [`open_stream`](crate::SessionHost::open_stream) and
/// keep the other; events the workers deliver are visible through
/// [`SharedVecSink::snapshot`]/[`take`](SharedVecSink::take) at any time.
/// Collection locks a mutex and may grow the vector — use
/// [`SharedVecSink::with_capacity`] (or [`CountingSink`]) where the delivery
/// path must stay allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SharedVecSink {
    events: Arc<Mutex<Vec<PerceptionEvent>>>,
}

impl SharedVecSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SharedVecSink::default()
    }

    /// Creates a collector whose vector is preallocated for `capacity` events,
    /// so deliveries up to that count perform no allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedVecSink {
            events: Arc::new(Mutex::new(Vec::with_capacity(capacity))),
        }
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        crate::relock(&self.events).len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the events collected so far.
    pub fn snapshot(&self) -> Vec<PerceptionEvent> {
        crate::relock(&self.events).clone()
    }

    /// Takes the collected events, leaving the collector empty (the allocation
    /// is kept).
    pub fn take(&self) -> Vec<PerceptionEvent> {
        let mut guard = crate::relock(&self.events);
        let mut out = Vec::with_capacity(guard.capacity());
        std::mem::swap(&mut *guard, &mut out);
        out
    }
}

impl EventSink for SharedVecSink {
    fn on_event(&mut self, event: &PerceptionEvent) {
        crate::relock(&self.events).push(event.clone());
    }
}

/// A clone-to-share counter of events, alerts and frames. Delivery is two or
/// three relaxed `fetch_add`s — no lock, no allocation — so it is the sink of
/// choice for throughput benches and the zero-allocation tests.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    counts: Arc<CountingSinkCounts>,
}

#[derive(Debug, Default)]
struct CountingSinkCounts {
    events: AtomicU64,
    alerts: AtomicU64,
    frames: AtomicU64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Events delivered so far.
    pub fn events(&self) -> u64 {
        self.counts.events.load(Ordering::Relaxed)
    }

    /// Alert-class events delivered so far.
    pub fn alerts(&self) -> u64 {
        self.counts.alerts.load(Ordering::Relaxed)
    }

    /// Frames completed so far.
    pub fn frames(&self) -> u64 {
        self.counts.frames.load(Ordering::Relaxed)
    }
}

impl EventSink for CountingSink {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.counts.events.fetch_add(1, Ordering::Relaxed);
        if event.is_alert() {
            self.counts.alerts.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_frame(&mut self, _outcome: &FrameOutcome) {
        self.counts.frames.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_sed::EventClass;

    fn event() -> PerceptionEvent {
        PerceptionEvent {
            frame_index: 3,
            time_s: 0.2,
            class: EventClass::WailSiren,
            confidence: 0.9,
            azimuth_deg: None,
            tracked_azimuth_deg: None,
            tracks: ispot_core::events::TrackList::default(),
        }
    }

    #[test]
    fn shared_vec_sink_clones_share_one_store() {
        let keeper = SharedVecSink::new();
        let mut given_away = keeper.clone();
        given_away.on_event(&event());
        given_away.on_event(&event());
        assert_eq!(keeper.len(), 2);
        assert_eq!(keeper.snapshot().len(), 2);
        let taken = keeper.take();
        assert_eq!(taken.len(), 2);
        assert!(keeper.is_empty());
    }

    #[test]
    fn counting_sink_tallies_through_clones() {
        let keeper = CountingSink::new();
        let mut given_away = keeper.clone();
        given_away.on_event(&event());
        given_away.on_frame(&FrameOutcome::Analyzed);
        given_away.on_frame(&FrameOutcome::Gated);
        assert_eq!(keeper.events(), 1);
        assert_eq!(keeper.alerts(), 1);
        assert_eq!(keeper.frames(), 2);
    }

    #[test]
    fn discard_sink_is_a_no_op() {
        let mut sink = DiscardSink;
        sink.on_event(&event());
        sink.on_frame(&FrameOutcome::Analyzed);
    }
}
