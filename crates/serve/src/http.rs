//! A minimal hand-rolled HTTP exporter for the session host: Prometheus-style
//! text exposition, a JSON snapshot and an SSE event feed, over one
//! nonblocking `std::net` listener on one thread — no external dependencies,
//! no work on the data plane.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of every registered family.
//! * `GET /snapshot` — JSON: host counters, latency quantiles (`null` until
//!   samples exist), per-stage latency, per-stream stats, the latest
//!   perception event.
//! * `GET /events?limit=N` — SSE (`text/event-stream`): `perception` and
//!   `degrade` events replayed from the feed's buffer, then live. Without
//!   `limit` the connection streams until the client disconnects or the host
//!   shuts down; the endpoint is single-threaded, so an unbounded SSE consumer
//!   parks the exporter (scrapes queue behind it) — pollers should pass
//!   `limit`.
//!
//! The exporter is intentionally not a general web server: requests beyond
//! ~4 KiB are rejected, only `GET` is answered, and every response closes the
//! connection.

use crate::feed::FeedEvent;
use crate::host::{HostInner, SessionHost};
use crate::metrics::LatencySnapshot;
use crate::relock;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Version of the `/snapshot` JSON document shape.
const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// How long the accept loop parks between polls of the nonblocking listener.
const ACCEPT_PARK: Duration = Duration::from_millis(10);

/// Per-connection read/write timeout: a stalled scraper cannot wedge the
/// exporter for longer than this per syscall.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Overall deadline for reading one request head. The per-read timeout alone
/// would let a client dripping one byte per read occupy the single-threaded
/// accept loop for minutes.
const HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// How often the SSE feed writes a comment keepalive while idle, so a client
/// that disconnected without new events arriving surfaces as a write error
/// instead of parking the exporter forever.
const SSE_KEEPALIVE: Duration = Duration::from_secs(2);

/// Handle to a running metrics/event endpoint. Dropping it stops the accept
/// loop and joins the exporter thread.
#[derive(Debug)]
pub struct MetricsEndpoint {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsEndpoint {
    /// The bound address — useful after binding port 0.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl SessionHost {
    /// Starts the HTTP exporter on `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port) and returns its handle. One thread serves all routes
    /// sequentially; the endpoint stops when the handle is dropped or the
    /// host shuts down.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_http<A: ToSocketAddrs>(&self, addr: A) -> std::io::Result<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let inner = Arc::clone(self.inner());
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("ispot-serve-http".into())
            .spawn(move || accept_loop(&listener, &inner, &flag))
            .expect("spawn metrics endpoint thread");
        Ok(MetricsEndpoint {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<HostInner>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Acquire) && !inner.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Errors on one connection (reset, timeout, bad request) must
                // not take the exporter down.
                let _ = serve_connection(stream, inner, shutdown);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_PARK),
            Err(_) => std::thread::sleep(ACCEPT_PARK),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    inner: &Arc<HostInner>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = read_request_head(&mut stream)?;
    let Some(target) = parse_get_target(&request) else {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = inner.render_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/snapshot" => {
            let body = render_snapshot_json(inner);
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/events" => serve_events(&mut stream, inner, shutdown, query),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /snapshot or /events\n",
        ),
    }
}

/// Reads the request head (start line + headers) up to a small bound, giving
/// up once [`HEAD_DEADLINE`] has elapsed without a complete head.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let deadline = std::time::Instant::now() + HEAD_DEADLINE;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 4096 {
            break;
        }
        if std::time::Instant::now() >= deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "request head incomplete at deadline",
            ));
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Extracts the target of a `GET <target> HTTP/1.x` start line.
fn parse_get_target(request: &str) -> Option<&str> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    parts.next()
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Serves the SSE feed: replays what the ring still holds, then follows live
/// records until `limit` events were sent (if given), the client goes away, or
/// shutdown.
fn serve_events(
    stream: &mut TcpStream,
    inner: &Arc<HostInner>,
    shutdown: &AtomicBool,
    query: &str,
) -> std::io::Result<()> {
    let limit: Option<u64> = query
        .split('&')
        .find_map(|pair| pair.strip_prefix("limit="))
        .and_then(|v| v.parse().ok());
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    let mut cursor = inner.feed.oldest();
    let mut sent = 0u64;
    let mut body = String::with_capacity(256);
    let mut idle = Duration::ZERO;
    loop {
        if shutdown.load(Ordering::Acquire) || inner.shutting_down() {
            return Ok(());
        }
        if limit.is_some_and(|n| sent >= n) {
            return Ok(());
        }
        let head = inner.feed.cursor();
        // A slow consumer may have been lapped; jump to the oldest survivor.
        cursor = cursor.max(inner.feed.oldest());
        if cursor >= head {
            // Comment keepalive: the only way to notice a client that
            // disconnected while no events arrive is a failed write.
            if idle >= SSE_KEEPALIVE {
                stream.write_all(b":\n\n")?;
                idle = Duration::ZERO;
            }
            std::thread::sleep(ACCEPT_PARK);
            idle += ACCEPT_PARK;
            continue;
        }
        idle = Duration::ZERO;
        while cursor < head {
            if limit.is_some_and(|n| sent >= n) {
                return Ok(());
            }
            if let Some(event) = inner.feed.read_at(cursor) {
                body.clear();
                render_sse(&mut body, cursor, &event);
                stream.write_all(body.as_bytes())?;
                sent += 1;
            }
            cursor += 1;
        }
    }
}

fn render_sse(out: &mut String, id: u64, event: &FeedEvent) {
    use std::fmt::Write as _;
    match event {
        FeedEvent::Perception {
            slot,
            generation,
            frame_index,
            class,
            confidence,
            azimuth_deg,
            time_s,
        } => {
            let _ = write!(
                out,
                "event: perception\nid: {id}\ndata: {{\"slot\":{slot},\"generation\":{generation},\"frame_index\":{frame_index},\"class\":\"{}\",\"confidence\":{},\"azimuth_deg\":{},\"time_s\":{}}}\n\n",
                class.label(),
                json_f64(*confidence),
                json_opt_f64(*azimuth_deg),
                json_f64(*time_s),
            );
        }
        FeedEvent::Degrade { from, to } => {
            let _ = write!(
                out,
                "event: degrade\nid: {id}\ndata: {{\"from\":\"{}\",\"to\":\"{}\"}}\n\n",
                from.label(),
                to.label(),
            );
        }
    }
}

/// A finite f64 as a JSON number; NaN/inf as `null` (JSON has no non-finite
/// numbers).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), json_f64)
}

fn write_latency(out: &mut String, snap: &LatencySnapshot) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"count\":{},\"mean_ms\":{},\"p50_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
        snap.count,
        json_f64(snap.mean_ms),
        json_opt_f64(snap.p50_ms),
        json_opt_f64(snap.p99_ms),
        json_f64(snap.max_ms),
    );
}

/// Renders the `/snapshot` JSON document. Cold path: allocates freely.
fn render_snapshot_json(inner: &Arc<HostInner>) -> String {
    use std::fmt::Write as _;
    inner.refresh_gauges();
    let m = &inner.metrics;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema_version\":{SNAPSHOT_SCHEMA_VERSION},\"degrade_level\":\"{}\",\"metrics\":{{",
        inner.load.level().label()
    );
    let _ = write!(
        out,
        "\"sessions_open\":{},\"sessions_opened\":{},\"sessions_closed\":{},\"chunks_in\":{},\"chunks_busy\":{},\"chunks_shed\":{},\"chunks_discarded\":{},\"queue_depth\":{},\"frames\":{},\"shed_frames\":{},\"events\":{},\"sheds\":{},\"restores\":{},\"errors\":{},\"latency\":",
        m.sessions_open.get(),
        m.sessions_opened.get(),
        m.sessions_closed.get(),
        m.chunks_in.get(),
        m.chunks_busy.get(),
        m.chunks_shed.get(),
        m.chunks_discarded.get(),
        m.queue_depth.get(),
        m.frames.get(),
        m.shed_frames.get(),
        m.events.get(),
        m.sheds.get(),
        m.restores.get(),
        m.errors.get(),
    );
    write_latency(&mut out, &m.latency.snapshot());
    out.push_str("},\"stages\":{");
    for (i, (name, snap)) in inner.stage_latency.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":");
        write_latency(&mut out, snap);
    }
    out.push_str("},\"streams\":[");
    let mut first = true;
    for (idx, slot) in inner.slots.iter().enumerate() {
        let queued = match relock(&slot.ring).as_ref() {
            Some(ring) => ring.len(),
            None => continue,
        };
        let stats = slot.stats.snapshot(queued);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"slot\":{idx},\"generation\":{},\"queued\":{},\"chunks_in\":{},\"chunks_busy\":{},\"frames\":{},\"shed_frames\":{},\"events\":{},\"errors\":{},\"localization_shed\":{}}}",
            slot.generation.load(Ordering::Acquire),
            stats.queued,
            stats.chunks_in,
            stats.chunks_busy,
            stats.frames,
            stats.shed_frames,
            stats.events,
            stats.errors,
            stats.localization_shed,
        );
    }
    out.push_str("],\"latest_event\":");
    match latest_perception(inner) {
        Some((
            index,
            FeedEvent::Perception {
                slot,
                generation,
                frame_index,
                class,
                confidence,
                azimuth_deg,
                time_s,
            },
        )) => {
            let _ = write!(
                out,
                "{{\"feed_index\":{index},\"slot\":{slot},\"generation\":{generation},\"frame_index\":{frame_index},\"class\":\"{}\",\"confidence\":{},\"azimuth_deg\":{},\"time_s\":{}}}",
                class.label(),
                json_f64(confidence),
                json_opt_f64(azimuth_deg),
                json_f64(time_s),
            );
        }
        _ => out.push_str("null"),
    }
    out.push('}');
    out
}

/// The most recent perception record still resident in the feed.
fn latest_perception(inner: &Arc<HostInner>) -> Option<(u64, FeedEvent)> {
    let head = inner.feed.cursor();
    let oldest = inner.feed.oldest();
    let mut index = head;
    while index > oldest {
        index -= 1;
        if let Some(event @ FeedEvent::Perception { .. }) = inner.feed.read_at(index) {
            return Some((index, event));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_targets_parse() {
        assert_eq!(
            parse_get_target("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some("/metrics")
        );
        assert_eq!(
            parse_get_target("GET /events?limit=3 HTTP/1.1\r\n\r\n"),
            Some("/events?limit=3")
        );
        assert_eq!(parse_get_target("POST /metrics HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_get_target(""), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.0)), "2");
    }
}
