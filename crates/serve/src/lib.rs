//! `ispot-serve` — the serving layer: many concurrent acoustic-perception
//! streams multiplexed over one shared engine and a fixed worker pool.
//!
//! The core crate deliberately stops at the [`Engine`]/[`Session`] seam: an
//! engine holds the shared immutable state (detector weights, steering
//! operator, FFT plans) and a session is one cheap, independent stream. This
//! crate adds the part a deployment actually runs — a [`SessionHost`] that
//! owns the engine, a registry of stream slots and a pool of worker threads,
//! with the properties a real-time fleet host needs:
//!
//! * **Bounded everything.** Each stream has a fixed-capacity ingestion ring;
//!   dispatch runs over one bounded ready queue. Memory is sized at
//!   construction and never grows.
//! * **Typed backpressure, nothing silent.** A full ring returns
//!   [`SubmitError::Busy`]; an overloaded host returns [`SubmitError::Shed`].
//!   The producer always learns the fate of its chunk — the host never blocks
//!   the caller and never drops audio it accepted (except at explicit stream
//!   close, where discards are counted).
//! * **Graceful degradation.** Past a high-watermark queue depth the host
//!   sheds *localization* before detection ([`Session::set_localization_shed`]
//!   — events keep class and confidence, lose azimuth), and past a second
//!   watermark it sheds intake; hysteresis restores fidelity once queues
//!   drain. Shed decisions are observable per stream
//!   ([`StreamStats::localization_shed`]) and host-wide
//!   ([`MetricsSnapshot::degrade_level`]).
//! * **Lock-free observability.** Every counter and histogram is a relaxed
//!   atomic handle registered in one `ispot-obs` [`MetricsRegistry`]; the same
//!   values feed the typed [`MetricsSnapshot`] API, the Prometheus-style
//!   `/metrics` endpoint ([`SessionHost::serve_http`]), the JSON `/snapshot`
//!   and the SSE `/events` feed. With `span_capacity > 0` every session gets a
//!   lock-free per-stream span ring tracing the four pipeline stages
//!   ([`SessionHost::stream_spans`]) plus per-stage latency histograms — the
//!   instrumented path stays allocation-free (enforced in
//!   `tests/zero_alloc.rs`) and bit-identical in output
//!   (`tests/determinism.rs`).
//! * **Zero allocation per chunk.** Ring slots are preallocated and recycled
//!   by buffer swap; sessions reuse their scratch; events are delivered by
//!   reference. The counting-allocator test in `tests/zero_alloc.rs` enforces
//!   this end to end.
//!
//! Determinism is preserved per stream: a session's event sequence depends
//! only on its own chunk order, so the same audio split the same way yields
//! bit-identical events at any worker count (see `tests/determinism.rs`).
//!
//! [`Engine`]: ispot_core::api::Engine
//! [`Session`]: ispot_core::api::Session
//! [`Session::set_localization_shed`]: ispot_core::api::Session::set_localization_shed
//! [`MetricsRegistry`]: ispot_obs::MetricsRegistry

pub mod error;
pub mod feed;
pub mod host;
pub mod http;
pub mod load;
pub mod metrics;
pub mod observe;
pub(crate) mod ring;
pub mod sinks;
pub(crate) mod worker;

pub use error::{ServeError, SubmitError};
pub use feed::{EventFeed, FeedEvent};
pub use host::{HostConfig, SessionHost, StreamId, StreamStats};
pub use http::MetricsEndpoint;
pub use load::{DegradeLevel, LoadPolicy};
pub use metrics::{LatencyHistogram, LatencySnapshot, MetricsSnapshot};
pub use observe::HostObserver;
pub use sinks::{CountingSink, DiscardSink, SharedVecSink};

/// Everything a host embedder needs.
pub mod prelude {
    pub use crate::error::{ServeError, SubmitError};
    pub use crate::feed::{EventFeed, FeedEvent};
    pub use crate::host::{HostConfig, SessionHost, StreamId, StreamStats};
    pub use crate::http::MetricsEndpoint;
    pub use crate::load::{DegradeLevel, LoadPolicy};
    pub use crate::metrics::{LatencySnapshot, MetricsSnapshot};
    pub use crate::sinks::{CountingSink, DiscardSink, SharedVecSink};
}

/// Locks a mutex, recovering from poison: every mutex in this crate guards
/// state that stays consistent across a panicking holder (rings and sessions
/// are mutated through `&mut` methods that never leave partial states the rest
/// of the host could misread), and a wedged slot must not take the whole host
/// down with it.
pub(crate) fn relock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
