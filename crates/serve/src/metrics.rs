//! Host-wide counters and the event-latency histogram, recorded with relaxed
//! atomics so the data plane never takes a lock to observe itself, and
//! snapshotable at any time from any thread.
//!
//! The shape follows the `EngineMetrics` pattern from the real-time pipeline
//! exemplars: one plain struct of atomic counters shared behind an `Arc`,
//! mutated with `fetch_add` on the hot path and read with a consistent-enough
//! `load` sweep for reporting. Latency quantiles come from a fixed power-of-two
//! histogram ([`LatencyHistogram`]): recording is one `fetch_add` into a bucket
//! indexed by the magnitude of the sample, so it is allocation-free and
//! wait-free; p50/p99 are resolved at snapshot time by walking 32 buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds, so 32 buckets span 1 µs to ~72 minutes.
const NUM_BUCKETS: usize = 32;

/// A fixed-size, lock-free latency histogram with power-of-two microsecond
/// buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

/// Bucket index for a latency of `us` microseconds: the position of its highest
/// set bit, clamped to the top bucket.
fn bucket_index(us: u64) -> usize {
    let us = us.max(1);
    ((u64::BITS - 1 - us.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

impl LatencyHistogram {
    /// Records one latency sample. Wait-free: two relaxed `fetch_add`s, one
    /// `fetch_max`, no allocation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Resolves the current counts into quantiles. Quantiles are conservative:
    /// each resolves to the *upper* edge of the bucket holding its rank, so a
    /// reported p99 of 4.1 ms means "99% of samples finished within 4.1 ms".
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = counts.iter().sum();
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper edge of bucket i in ms.
                    return (1u64 << (i + 1)) as f64 / 1000.0;
                }
            }
            (self.max_us.load(Ordering::Relaxed)) as f64 / 1000.0
        };
        LatencySnapshot {
            count,
            mean_ms: if count == 0 {
                0.0
            } else {
                sum_us as f64 / count as f64 / 1000.0
            },
            p50_ms: quantile(0.50),
            p99_ms: quantile(0.99),
            max_ms: self.max_us.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

/// Resolved latency statistics at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean in milliseconds.
    pub mean_ms: f64,
    /// Median (conservative bucket upper edge) in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile (conservative bucket upper edge) in milliseconds.
    pub p99_ms: f64,
    /// Largest single sample in milliseconds.
    pub max_ms: f64,
}

/// Aggregate counters of one [`SessionHost`](crate::SessionHost), shared by
/// every worker and producer. All mutation is relaxed atomics; snapshotting
/// never blocks the data plane.
#[derive(Debug, Default)]
pub struct HostMetrics {
    /// Streams ever opened.
    pub(crate) sessions_opened: AtomicU64,
    /// Streams closed.
    pub(crate) sessions_closed: AtomicU64,
    /// Chunks accepted into ingestion rings.
    pub(crate) chunks_in: AtomicU64,
    /// Chunks rejected with [`SubmitError::Busy`](crate::SubmitError::Busy).
    pub(crate) chunks_busy: AtomicU64,
    /// Chunks rejected with [`SubmitError::Shed`](crate::SubmitError::Shed).
    pub(crate) chunks_shed: AtomicU64,
    /// Chunks discarded undelivered when their stream closed.
    pub(crate) chunks_discarded: AtomicU64,
    /// Analysis frames completed across all sessions.
    pub(crate) frames: AtomicU64,
    /// Frames processed while localization was shed.
    pub(crate) shed_frames: AtomicU64,
    /// Perception events delivered to stream sinks.
    pub(crate) events: AtomicU64,
    /// Upward degrade transitions (fidelity reduced).
    pub(crate) sheds: AtomicU64,
    /// Downward degrade transitions (fidelity restored).
    pub(crate) restores: AtomicU64,
    /// Session-level pipeline errors surfaced while processing a chunk.
    pub(crate) errors: AtomicU64,
    /// Submit-to-event-delivery latency across all streams.
    pub(crate) latency: LatencyHistogram,
}

impl HostMetrics {
    /// Bumps a counter by one. Relaxed: counters are monotonic and only read
    /// for reporting.
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed read of one counter.
    pub(crate) fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// A coherent-enough copy of every host counter at one point in time, plus the
/// resolved latency quantiles — what an operations dashboard would scrape.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Streams currently open.
    pub sessions_open: usize,
    /// Streams ever opened.
    pub sessions_opened: u64,
    /// Streams closed.
    pub sessions_closed: u64,
    /// Chunks accepted into ingestion rings.
    pub chunks_in: u64,
    /// Chunks rejected with backpressure (`Busy`).
    pub chunks_busy: u64,
    /// Chunks rejected by intake shedding (`Shed`).
    pub chunks_shed: u64,
    /// Chunks discarded undelivered when their stream closed.
    pub chunks_discarded: u64,
    /// Chunks accepted but not yet fully processed (aggregate queue depth).
    pub queue_depth: usize,
    /// Analysis frames completed across all sessions.
    pub frames: u64,
    /// Frames processed while localization was shed.
    pub shed_frames: u64,
    /// Perception events delivered to stream sinks.
    pub events: u64,
    /// Upward degrade transitions.
    pub sheds: u64,
    /// Downward degrade transitions.
    pub restores: u64,
    /// Session-level pipeline errors surfaced while processing chunks.
    pub errors: u64,
    /// Current degrade level of the load controller.
    pub degrade_level: crate::load::DegradeLevel,
    /// Submit-to-event-delivery latency.
    pub latency: LatencySnapshot,
}

impl MetricsSnapshot {
    /// Fraction of completed frames that ran with localization shed, in
    /// `[0, 1]`; 0 when no frame has completed.
    pub fn shed_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.shed_frames as f64 / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_magnitude() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_conservative_upper_edges() {
        let h = LatencyHistogram::default();
        // 99 fast samples at ~100 µs, one slow at ~50 ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // 100 µs lands in bucket [64, 128) µs → p50 reports 0.128 ms.
        assert!((s.p50_ms - 0.128).abs() < 1e-9, "p50 {}", s.p50_ms);
        // Rank 99 is still a fast sample; p99 must not be dragged to 50 ms.
        assert!(s.p50_ms <= s.p99_ms && s.p99_ms < 1.0, "p99 {}", s.p99_ms);
        assert!(s.max_ms >= 50.0);
        assert!(s.mean_ms > 0.0);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeroes() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn shed_rate_handles_zero_frames() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(snap.shed_rate(), 0.0);
        snap.frames = 10;
        snap.shed_frames = 4;
        assert!((snap.shed_rate() - 0.4).abs() < 1e-12);
    }
}
