//! Host-wide counters and latency histograms, unified on the `ispot-obs`
//! [`MetricsRegistry`]: every counter and histogram the host mutates on its
//! data plane is a registered registry handle, so the same values feed the
//! typed [`MetricsSnapshot`] API and the Prometheus-style `/metrics` text
//! exposition without being counted twice.
//!
//! The shape keeps the `EngineMetrics` pattern from the real-time pipeline
//! exemplars: one plain struct of handles shared behind an `Arc`, mutated with
//! relaxed `fetch_add`s on the hot path and read with a consistent-enough
//! `load` sweep for reporting. Latency quantiles come from the registry's
//! fixed power-of-two [`LatencyHistogram`]: recording is allocation-free and
//! wait-free; p50/p99 resolve at snapshot time by walking 32 buckets and are
//! `None` (never a fake zero) while the histogram is empty.

use ispot_obs::{Counter, Gauge, MetricsRegistry};

/// The serve-layer latency histogram: the registry's power-of-two-bucket
/// histogram, re-exported under its historical name.
pub use ispot_obs::Histogram as LatencyHistogram;

/// Resolved latency statistics at one point in time. Quantiles are
/// conservative bucket upper edges and `None` when no samples were recorded.
pub use ispot_obs::HistogramSnapshot as LatencySnapshot;

/// Aggregate counters of one [`SessionHost`](crate::SessionHost), shared by
/// every worker and producer. Each field is a registered handle into the
/// host's [`MetricsRegistry`]; mutation is relaxed atomics and snapshotting
/// never blocks the data plane.
#[derive(Debug)]
pub struct HostMetrics {
    /// Streams ever opened.
    pub(crate) sessions_opened: Counter,
    /// Streams closed.
    pub(crate) sessions_closed: Counter,
    /// Chunks accepted into ingestion rings.
    pub(crate) chunks_in: Counter,
    /// Chunks rejected with [`SubmitError::Busy`](crate::SubmitError::Busy).
    pub(crate) chunks_busy: Counter,
    /// Chunks rejected with [`SubmitError::Shed`](crate::SubmitError::Shed).
    pub(crate) chunks_shed: Counter,
    /// Chunks discarded undelivered when their stream closed.
    pub(crate) chunks_discarded: Counter,
    /// Analysis frames completed across all sessions.
    pub(crate) frames: Counter,
    /// Frames processed while localization was shed.
    pub(crate) shed_frames: Counter,
    /// Perception events delivered to stream sinks.
    pub(crate) events: Counter,
    /// Upward degrade transitions (fidelity reduced).
    pub(crate) sheds: Counter,
    /// Downward degrade transitions (fidelity restored).
    pub(crate) restores: Counter,
    /// Session-level pipeline errors surfaced while processing a chunk.
    pub(crate) errors: Counter,
    /// Submit-to-event-delivery latency across all streams.
    pub(crate) latency: LatencyHistogram,
    /// Streams currently open (computed; refreshed before scrapes).
    pub(crate) sessions_open: Gauge,
    /// Aggregate queue depth (computed; refreshed before scrapes).
    pub(crate) queue_depth: Gauge,
    /// Degrade-ladder level as 0/1/2 (computed; refreshed before scrapes).
    pub(crate) degrade_level: Gauge,
}

impl HostMetrics {
    /// Registers every host metric family and returns the handle struct.
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        HostMetrics {
            sessions_opened: registry.counter("ispot_sessions_opened_total", "Streams ever opened"),
            sessions_closed: registry.counter("ispot_sessions_closed_total", "Streams closed"),
            chunks_in: registry.counter(
                "ispot_chunks_in_total",
                "Chunks accepted into ingestion rings",
            ),
            chunks_busy: registry.counter(
                "ispot_chunks_busy_total",
                "Chunks rejected with backpressure (Busy)",
            ),
            chunks_shed: registry.counter(
                "ispot_chunks_shed_total",
                "Chunks rejected by intake shedding (Shed)",
            ),
            chunks_discarded: registry.counter(
                "ispot_chunks_discarded_total",
                "Chunks discarded undelivered at stream close",
            ),
            frames: registry.counter(
                "ispot_frames_total",
                "Analysis frames completed across all sessions",
            ),
            shed_frames: registry.counter(
                "ispot_shed_frames_total",
                "Frames processed while localization was shed",
            ),
            events: registry.counter(
                "ispot_events_total",
                "Perception events delivered to stream sinks",
            ),
            sheds: registry.counter(
                "ispot_sheds_total",
                "Upward degrade transitions (fidelity reduced)",
            ),
            restores: registry.counter(
                "ispot_restores_total",
                "Downward degrade transitions (fidelity restored)",
            ),
            errors: registry.counter(
                "ispot_errors_total",
                "Pipeline errors surfaced while processing chunks",
            ),
            latency: registry.histogram(
                "ispot_event_latency_seconds",
                "Submit-to-event-delivery latency",
            ),
            sessions_open: registry.gauge("ispot_sessions_open", "Streams currently open"),
            queue_depth: registry.gauge(
                "ispot_queue_depth",
                "Chunks accepted but not yet fully processed",
            ),
            degrade_level: registry.gauge(
                "ispot_degrade_level",
                "Degrade ladder level (0=full, 1=shed localization, 2=shed intake)",
            ),
        }
    }
}

/// A coherent-enough copy of every host counter at one point in time, plus the
/// resolved latency quantiles — what an operations dashboard would scrape.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Streams currently open.
    pub sessions_open: usize,
    /// Streams ever opened.
    pub sessions_opened: u64,
    /// Streams closed.
    pub sessions_closed: u64,
    /// Chunks accepted into ingestion rings.
    pub chunks_in: u64,
    /// Chunks rejected with backpressure (`Busy`).
    pub chunks_busy: u64,
    /// Chunks rejected by intake shedding (`Shed`).
    pub chunks_shed: u64,
    /// Chunks discarded undelivered when their stream closed.
    pub chunks_discarded: u64,
    /// Chunks accepted but not yet fully processed (aggregate queue depth).
    pub queue_depth: usize,
    /// Analysis frames completed across all sessions.
    pub frames: u64,
    /// Frames processed while localization was shed.
    pub shed_frames: u64,
    /// Perception events delivered to stream sinks.
    pub events: u64,
    /// Upward degrade transitions.
    pub sheds: u64,
    /// Downward degrade transitions.
    pub restores: u64,
    /// Session-level pipeline errors surfaced while processing chunks.
    pub errors: u64,
    /// Current degrade level of the load controller.
    pub degrade_level: crate::load::DegradeLevel,
    /// Submit-to-event-delivery latency (quantiles `None` until the first
    /// event is delivered).
    pub latency: LatencySnapshot,
}

impl MetricsSnapshot {
    /// Fraction of completed frames that ran with localization shed, in
    /// `[0, 1]`; 0 when no frame has completed.
    pub fn shed_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.shed_frames as f64 / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_quantiles_are_conservative_upper_edges() {
        let h = LatencyHistogram::default();
        // 99 fast samples at ~100 µs, one slow at ~50 ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // 100 µs lands in bucket [64, 128) µs → p50 reports 0.128 ms.
        assert_eq!(s.p50_ms, Some(0.128));
        // Rank 99 is still a fast sample; p99 must not be dragged to 50 ms.
        let p99 = s.p99_ms.expect("non-empty histogram has a p99");
        assert!(s.p50_ms.unwrap() <= p99 && p99 < 1.0, "p99 {p99}");
        assert!(s.max_ms >= 50.0);
        assert!(s.mean_ms > 0.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        // Satellite regression: an empty histogram used to report p50 = p99 =
        // 0.0, which dashboards read as "infinitely fast".
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms, None);
        assert_eq!(s.p99_ms, None);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn power_of_two_boundary_samples_bucket_upward() {
        // Values exactly on a bucket edge (2^k µs) belong to the bucket whose
        // lower edge they are, so the conservative quantile is the next edge
        // up — one sample at 512 µs must report 1.024 ms, not 0.512 ms.
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(512));
        assert_eq!(h.snapshot().p50_ms, Some(1.024));
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(511));
        assert_eq!(h.snapshot().p50_ms, Some(0.512));
    }

    #[test]
    fn shed_rate_handles_zero_frames() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(snap.shed_rate(), 0.0);
        snap.frames = 10;
        snap.shed_frames = 4;
        assert!((snap.shed_rate() - 0.4).abs() < 1e-12);
    }
}
