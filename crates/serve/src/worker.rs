//! The worker pool: drains ingestion rings, runs the perception pipeline and
//! meters every event.
//!
//! Workers share the host's bounded ready queue of slot tokens. Receiving a
//! token grants exclusive ownership of that stream until the worker stops
//! draining (see the dispatch protocol in the [`host`](crate::host) module
//! docs), so per-stream event order is exactly submission order regardless of
//! the pool size — the basis of the cross-worker-count determinism tests.
//!
//! The per-chunk path is allocation-free: the worker swaps its spare buffer
//! with the ring slot ([`ChunkRing::pop_swap`]), builds stack channel views and
//! feeds the session, which reuses its own scratch. Metering is relaxed
//! atomics.
//!
//! [`ChunkRing::pop_swap`]: crate::ring::ChunkRing::pop_swap

use crate::feed::EventFeed;
use crate::host::{HostInner, SessionState, Slot};
use crate::load::DegradeLevel;
use crate::metrics::HostMetrics;
use crate::relock;
use crate::ring::ChunkBuf;
use crossbeam::channel::TryRecvError;
use ispot_core::events::PerceptionEvent;
use ispot_core::sink::EventSink;
use ispot_core::stages::FrameOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long an idle worker parks between ready-queue polls. The vendored
/// channel's blocking receive holds the shared-receiver lock, which would
/// serialize the pool, so workers poll with `try_recv` and park briefly when
/// the queue is empty.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Body of one worker thread: poll the ready queue, drain the named slot,
/// repeat until shutdown.
pub(crate) fn worker_loop(inner: &HostInner) {
    let mut buf = ChunkBuf::new(inner.engine.num_channels(), inner.config.max_chunk_len);
    while !inner.shutting_down() {
        inner.wait_if_paused();
        if inner.shutting_down() {
            break;
        }
        match inner.ready_rx.try_recv() {
            Ok(slot_idx) => drain_slot(inner, slot_idx as usize, &mut buf),
            Err(TryRecvError::Empty) => std::thread::sleep(IDLE_PARK),
            Err(TryRecvError::Disconnected) => break,
        }
    }
}

/// Drains one stream's ring, up to one ring's worth of chunks per token so a
/// single busy stream cannot starve the others, then executes the
/// unschedule-recheck handshake: clear `scheduled`, re-check the ring, and
/// re-enqueue if chunks raced in after the last pop.
fn drain_slot(inner: &HostInner, slot_idx: usize, buf: &mut ChunkBuf) {
    let slot = &inner.slots[slot_idx];
    for _ in 0..inner.config.ring_capacity {
        if inner.is_paused() || inner.shutting_down() {
            break;
        }
        let popped = relock(&slot.ring).as_mut().is_some_and(|r| r.pop_swap(buf));
        if !popped {
            break;
        }
        process_chunk(inner, slot, slot_idx, buf);
        inner.load.on_complete();
        inner.note_transitions();
    }
    slot.scheduled.store(false, Ordering::Release);
    let nonempty = relock(&slot.ring).as_ref().is_some_and(|r| !r.is_empty());
    if nonempty {
        inner.schedule(slot_idx);
    }
}

/// Runs one chunk through the slot's session under the current degrade level,
/// delivering events through the stream's sink via the metering wrapper.
fn process_chunk(inner: &HostInner, slot: &Slot, slot_idx: usize, buf: &ChunkBuf) {
    let shed = inner.load.level() >= DegradeLevel::ShedLocalization;
    let mut guard = relock(&slot.session);
    let Some(state) = guard.as_mut() else {
        // The stream closed between our pop and now; the chunk is gone but was
        // popped before close cleared the ring, so count it ourselves.
        inner.metrics.chunks_discarded.incr();
        return;
    };
    if state.session.localization_shed() != shed {
        state.session.set_localization_shed(shed);
    }
    slot.stats.shed_applied.store(shed, Ordering::Relaxed);
    let SessionState { session, sink } = state;
    let mut metered = MeteredSink {
        sink: sink.as_mut(),
        enqueued: buf.enqueued(),
        host: &inner.metrics,
        feed: &inner.feed,
        slot_events: &slot.stats.events,
        slot: slot_idx as u32,
        generation: slot.generation.load(Ordering::Acquire),
    };
    match buf.with_views(|views| session.push_chunk_with(views, &mut metered)) {
        Ok(frames) => {
            let frames = frames as u64;
            inner.metrics.frames.add(frames);
            slot.stats.frames.fetch_add(frames, Ordering::Relaxed);
            if shed {
                inner.metrics.shed_frames.add(frames);
                slot.stats.shed_frames.fetch_add(frames, Ordering::Relaxed);
            }
        }
        Err(_) => {
            inner.metrics.errors.incr();
            slot.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Wraps a stream's sink to meter deliveries: each event bumps the host and
/// slot counters, records submit-to-delivery latency and publishes a summary
/// on the live feed, then is forwarded by reference — no copy, no allocation.
struct MeteredSink<'a> {
    sink: &'a mut dyn EventSink,
    enqueued: Instant,
    host: &'a HostMetrics,
    feed: &'a EventFeed,
    slot_events: &'a AtomicU64,
    slot: u32,
    generation: u32,
}

impl EventSink for MeteredSink<'_> {
    fn on_event(&mut self, event: &PerceptionEvent) {
        self.host.latency.record(self.enqueued.elapsed());
        self.host.events.incr();
        self.slot_events.fetch_add(1, Ordering::Relaxed);
        self.feed.push_event(self.slot, self.generation, event);
        self.sink.on_event(event);
    }

    fn on_frame(&mut self, outcome: &FrameOutcome) {
        self.sink.on_frame(outcome);
    }
}
