//! Typed errors of the serving layer.
//!
//! The split mirrors the two call planes of the host: [`ServeError`] covers the
//! cold control plane (configuration, stream registry), [`SubmitError`] covers
//! the per-chunk data plane. Data-plane rejections are *states, not failures* —
//! [`SubmitError::Busy`] and [`SubmitError::Shed`] tell the producer exactly why
//! its chunk was not accepted and that nothing was enqueued, so it can retry,
//! thin its stream, or drop with full knowledge. No variant allocates.

/// Control-plane errors: host construction and stream registry operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// A [`HostConfig`](crate::HostConfig) or
    /// [`LoadPolicy`](crate::LoadPolicy) field is out of range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// Every session slot is occupied; close a stream before opening another.
    AtCapacity {
        /// The configured slot count.
        max_sessions: usize,
    },
    /// The stream id does not name an open stream (never opened, already
    /// closed, or a stale id whose slot was recycled — generations catch
    /// use-after-close).
    UnknownStream,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig { field, reason } => {
                write!(f, "invalid host configuration: `{field}` {reason}")
            }
            ServeError::AtCapacity { max_sessions } => {
                write!(f, "all {max_sessions} session slots are occupied")
            }
            ServeError::UnknownStream => f.write_str("unknown or closed stream id"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Data-plane results of [`SessionHost::push_chunk`](crate::SessionHost::push_chunk):
/// why a chunk was **not** accepted. In every case the chunk was *not* enqueued
/// and no partial state was written — the producer still owns the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// This stream's bounded ingestion ring is full — per-stream backpressure.
    /// The producer should retry after the workers drain, or drop the chunk
    /// knowingly; the host never blocks and never buffers beyond the ring.
    Busy {
        /// Chunks currently queued on the stream (the ring capacity).
        queued: usize,
    },
    /// The load controller is past its intake watermark
    /// ([`DegradeLevel::ShedIntake`](crate::DegradeLevel::ShedIntake)): the host
    /// is refusing new audio fleet-wide to protect the latency of what is
    /// already queued. Retry once load drops.
    Shed,
    /// The stream id does not name an open stream.
    UnknownStream,
    /// The chunk's channel count does not match the engine's.
    ChannelMismatch {
        /// Channels every session of this host expects.
        expected: usize,
        /// Channels the chunk carried.
        actual: usize,
    },
    /// The chunk is longer than the configured
    /// [`max_chunk_len`](crate::HostConfig::max_chunk_len) — ring slots are
    /// preallocated at that bound so the data plane never allocates.
    ChunkTooLong {
        /// Samples per channel in the rejected chunk.
        samples: usize,
        /// The configured per-chunk bound.
        max: usize,
    },
    /// The chunk's channels have unequal lengths.
    RaggedChunk,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { queued } => {
                write!(f, "stream ring full ({queued} chunks queued); retry later")
            }
            SubmitError::Shed => f.write_str("host is shedding intake under overload; retry later"),
            SubmitError::UnknownStream => f.write_str("unknown or closed stream id"),
            SubmitError::ChannelMismatch { expected, actual } => {
                write!(f, "chunk has {actual} channels, host expects {expected}")
            }
            SubmitError::ChunkTooLong { samples, max } => {
                write!(f, "chunk has {samples} samples/channel, bound is {max}")
            }
            SubmitError::RaggedChunk => f.write_str("chunk channels have unequal lengths"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl SubmitError {
    /// True for the two transient, by-design rejections (backpressure and
    /// intake shedding) a well-behaved producer retries; false for caller bugs
    /// (wrong shape, stale id) that retrying can never fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, SubmitError::Busy { .. } | SubmitError::Shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative_and_transience_is_typed() {
        assert!(SubmitError::Busy { queued: 8 }.to_string().contains("8"));
        assert!(SubmitError::Shed.is_transient());
        assert!(SubmitError::Busy { queued: 1 }.is_transient());
        assert!(!SubmitError::UnknownStream.is_transient());
        assert!(!SubmitError::ChannelMismatch {
            expected: 4,
            actual: 2
        }
        .is_transient());
        let e = ServeError::InvalidConfig {
            field: "workers",
            reason: "must be positive",
        };
        assert!(e.to_string().contains("workers"));
    }
}
