//! The live event feed: a lock-free ring of perception-event summaries and
//! shed-ladder transitions, written by the data plane and polled by exporters
//! (the SSE endpoint, `/snapshot`, tests).
//!
//! Records are fixed-width word tuples in a [`SeqRing`], so publishing from a
//! worker is wait-free and allocation-free and a slow (or absent) consumer can
//! never back-pressure the pipeline — it just misses overwritten records, the
//! right failure mode for a monitoring feed.

use crate::load::DegradeLevel;
use ispot_core::events::PerceptionEvent;
use ispot_obs::SeqRing;
use ispot_sed::EventClass;

/// Words per feed record: discriminant+class, stream identity, frame index,
/// confidence, azimuth, time.
const FEED_WORDS: usize = 6;

const KIND_EVENT: u64 = 0;
const KIND_TRANSITION: u64 = 1;

/// One record read back from the feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeedEvent {
    /// A perception event delivered to some stream's sink.
    Perception {
        /// Slot index of the originating stream.
        slot: u32,
        /// Slot generation (pairs with `slot` to identify the stream).
        generation: u32,
        /// Frame index within the stream.
        frame_index: u64,
        /// Detected event class.
        class: EventClass,
        /// Detector confidence in [0, 1].
        confidence: f64,
        /// Tracked azimuth if available, else the raw SRP estimate, else
        /// `None` (localization disabled or shed).
        azimuth_deg: Option<f64>,
        /// Stream time of the frame in seconds.
        time_s: f64,
    },
    /// A degrade-ladder transition of the host.
    Degrade {
        /// Level before the transition.
        from: DegradeLevel,
        /// Level after the transition.
        to: DegradeLevel,
    },
}

/// Fixed-capacity lock-free feed of the most recent [`FeedEvent`]s.
#[derive(Debug)]
pub struct EventFeed {
    ring: SeqRing<FEED_WORDS>,
}

impl EventFeed {
    /// Creates a feed holding the latest `capacity` records (clamped to ≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        EventFeed {
            ring: SeqRing::new(capacity),
        }
    }

    /// Total records published since the host started (monotonic). A consumer
    /// polls from its last cursor up to this value.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.ring.recorded()
    }

    /// Index of the oldest record that may still be readable.
    #[must_use]
    pub fn oldest(&self) -> u64 {
        self.ring.oldest()
    }

    /// Publishes one perception-event summary. Hot path: wait-free, no
    /// allocation (floats are bit-packed, `None` azimuth travels as NaN).
    pub(crate) fn push_event(&self, slot: u32, generation: u32, event: &PerceptionEvent) {
        let azimuth = event
            .tracked_azimuth_deg
            .or(event.azimuth_deg)
            .unwrap_or(f64::NAN);
        self.ring.push(&[
            KIND_EVENT | ((event.class.index() as u64) << 8),
            u64::from(slot) | (u64::from(generation) << 32),
            event.frame_index as u64,
            event.confidence.to_bits(),
            azimuth.to_bits(),
            event.time_s.to_bits(),
        ]);
    }

    /// Publishes one shed-ladder transition.
    pub(crate) fn push_transition(&self, from: DegradeLevel, to: DegradeLevel) {
        self.ring.push(&[
            KIND_TRANSITION,
            from as u64 | ((to as u64) << 32),
            0,
            0,
            0,
            0,
        ]);
    }

    /// Reads the record with feed index `index`, if still resident. `None`
    /// for overwritten, unwritten, in-flight, or undecodable records —
    /// consumers skip and advance their cursor.
    #[must_use]
    pub fn read_at(&self, index: u64) -> Option<FeedEvent> {
        let words = self.ring.read_at(index)?;
        match words[0] & 0xff {
            KIND_EVENT => {
                let class = EventClass::from_index((words[0] >> 8) as usize)?;
                let azimuth = f64::from_bits(words[4]);
                Some(FeedEvent::Perception {
                    slot: (words[1] & 0xffff_ffff) as u32,
                    generation: (words[1] >> 32) as u32,
                    frame_index: words[2],
                    class,
                    confidence: f64::from_bits(words[3]),
                    azimuth_deg: if azimuth.is_nan() {
                        None
                    } else {
                        Some(azimuth)
                    },
                    time_s: f64::from_bits(words[5]),
                })
            }
            KIND_TRANSITION => Some(FeedEvent::Degrade {
                from: DegradeLevel::from_u8((words[1] & 0xff) as u8),
                to: DegradeLevel::from_u8(((words[1] >> 32) & 0xff) as u8),
            }),
            _ => None,
        }
    }

    /// Copies every still-readable record, oldest first, into `out` (cleared
    /// first). Cold path for exporters and tests.
    pub fn snapshot_into(&self, out: &mut Vec<FeedEvent>) {
        out.clear();
        for index in self.ring.oldest()..self.ring.recorded() {
            if let Some(event) = self.read_at(index) {
                out.push(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_core::events::TrackList;

    fn event(frame_index: usize, azimuth: Option<f64>) -> PerceptionEvent {
        PerceptionEvent {
            frame_index,
            time_s: frame_index as f64 * 0.032,
            class: EventClass::WailSiren,
            confidence: 0.75,
            azimuth_deg: azimuth,
            tracked_azimuth_deg: None,
            tracks: TrackList::default(),
        }
    }

    #[test]
    fn events_round_trip_with_and_without_azimuth() {
        let feed = EventFeed::new(8);
        feed.push_event(3, 1, &event(42, Some(-60.5)));
        feed.push_event(3, 1, &event(43, None));
        match feed.read_at(0) {
            Some(FeedEvent::Perception {
                slot,
                generation,
                frame_index,
                class,
                confidence,
                azimuth_deg,
                time_s,
            }) => {
                assert_eq!((slot, generation, frame_index), (3, 1, 42));
                assert_eq!(class, EventClass::WailSiren);
                assert_eq!(confidence, 0.75);
                assert_eq!(azimuth_deg, Some(-60.5));
                assert!((time_s - 42.0 * 0.032).abs() < 1e-12);
            }
            other => panic!("expected a perception record, got {other:?}"),
        }
        match feed.read_at(1) {
            Some(FeedEvent::Perception { azimuth_deg, .. }) => assert_eq!(azimuth_deg, None),
            other => panic!("expected a perception record, got {other:?}"),
        }
    }

    #[test]
    fn transitions_round_trip() {
        let feed = EventFeed::new(4);
        feed.push_transition(DegradeLevel::Full, DegradeLevel::ShedLocalization);
        feed.push_transition(DegradeLevel::ShedIntake, DegradeLevel::ShedLocalization);
        assert_eq!(
            feed.read_at(0),
            Some(FeedEvent::Degrade {
                from: DegradeLevel::Full,
                to: DegradeLevel::ShedLocalization
            })
        );
        assert_eq!(
            feed.read_at(1),
            Some(FeedEvent::Degrade {
                from: DegradeLevel::ShedIntake,
                to: DegradeLevel::ShedLocalization
            })
        );
    }

    #[test]
    fn old_records_fall_off_and_cursor_is_monotonic() {
        let feed = EventFeed::new(2);
        for i in 0..5 {
            feed.push_event(0, 0, &event(i, None));
        }
        assert_eq!(feed.cursor(), 5);
        assert_eq!(feed.oldest(), 3);
        assert_eq!(feed.read_at(0), None);
        let mut out = Vec::new();
        feed.snapshot_into(&mut out);
        assert_eq!(out.len(), 2);
    }
}
