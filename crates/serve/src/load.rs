//! The load controller: watermark-based graceful degradation with hysteresis.
//!
//! The controller watches one signal — aggregate queue depth (chunks accepted
//! but not yet processed) as a fraction of the aggregate ring capacity of the
//! open streams — and maps it onto a three-step fidelity ladder,
//! [`DegradeLevel`]. The ladder encodes the paper's priority order (the
//! drive/park duty cycle already sheds localization long before it sheds
//! detection): under overload the *expensive, deferrable* stage goes first and
//! intake goes last, so a detection is never lost to protect an azimuth.
//!
//! * [`DegradeLevel::Full`] — every frame runs detection + localization +
//!   tracking.
//! * [`DegradeLevel::ShedLocalization`] — past the shed watermark, sessions are
//!   processed with localization shed ([`Session::set_localization_shed`]):
//!   events still carry class and confidence, queues drain several times
//!   faster, and no stream state is reset so restoring is seamless.
//! * [`DegradeLevel::ShedIntake`] — past the intake watermark, new chunks are
//!   refused with [`SubmitError::Shed`] fleet-wide, bounding the latency of the
//!   audio already queued. Detection itself is never silently dropped: a
//!   producer always learns its chunk was refused.
//!
//! Each boundary is a watermark **pair** (up-threshold strictly above its
//! down-threshold), so the level cannot flap when the queue hovers at one
//! value: load must genuinely fall before fidelity is restored.
//!
//! [`Session::set_localization_shed`]: ispot_core::api::Session::set_localization_shed
//! [`SubmitError::Shed`]: crate::SubmitError::Shed

use crate::error::ServeError;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Fidelity ladder of the host, from full service to intake shedding. Ordered:
/// a higher level is a more degraded state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum DegradeLevel {
    /// Full fidelity: detection + localization + tracking on every frame.
    #[default]
    Full = 0,
    /// Localization (and tracking) shed on every stream; detection continues.
    ShedLocalization = 1,
    /// Additionally refusing new chunks fleet-wide with `Shed`.
    ShedIntake = 2,
}

impl DegradeLevel {
    pub(crate) fn from_u8(v: u8) -> DegradeLevel {
        match v {
            0 => DegradeLevel::Full,
            1 => DegradeLevel::ShedLocalization,
            _ => DegradeLevel::ShedIntake,
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::ShedLocalization => "shed-localization",
            DegradeLevel::ShedIntake => "shed-intake",
        }
    }
}

impl std::fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Watermarks of the load controller, as fractions of aggregate ring capacity.
///
/// Invariants (validated by [`LoadPolicy::validate`]):
/// `0 < shed_low < shed_high < intake_high <= 1` and
/// `shed_low <= intake_low < intake_high`. The strict gaps are the hysteresis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPolicy {
    /// Queue fraction at/above which localization is shed.
    pub shed_high: f64,
    /// Queue fraction at/below which full fidelity is restored.
    pub shed_low: f64,
    /// Queue fraction at/above which intake is refused.
    pub intake_high: f64,
    /// Queue fraction at/below which intake reopens (dropping to
    /// [`DegradeLevel::ShedLocalization`]).
    pub intake_low: f64,
}

impl Default for LoadPolicy {
    fn default() -> Self {
        LoadPolicy {
            shed_high: 0.75,
            shed_low: 0.35,
            intake_high: 0.90,
            intake_low: 0.55,
        }
    }
}

impl LoadPolicy {
    /// Checks the watermark invariants, naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let fields = [
            ("shed_high", self.shed_high),
            ("shed_low", self.shed_low),
            ("intake_high", self.intake_high),
            ("intake_low", self.intake_low),
        ];
        for (field, value) in fields {
            if !(value.is_finite() && value > 0.0 && value <= 1.0) {
                return Err(ServeError::InvalidConfig {
                    field,
                    reason: "must be a fraction in (0, 1]",
                });
            }
        }
        if self.shed_low >= self.shed_high {
            return Err(ServeError::InvalidConfig {
                field: "shed_low",
                reason: "must be strictly below shed_high (the gap is the hysteresis)",
            });
        }
        if self.shed_high >= self.intake_high {
            return Err(ServeError::InvalidConfig {
                field: "shed_high",
                reason: "must be strictly below intake_high (localization sheds before intake)",
            });
        }
        if self.intake_low >= self.intake_high {
            return Err(ServeError::InvalidConfig {
                field: "intake_low",
                reason: "must be strictly below intake_high (the gap is the hysteresis)",
            });
        }
        if self.intake_low < self.shed_low {
            return Err(ServeError::InvalidConfig {
                field: "intake_low",
                reason: "must not be below shed_low (levels restore in order)",
            });
        }
        Ok(())
    }
}

/// One transition of the degrade ladder, `(from, to)`.
pub(crate) type Transition = (DegradeLevel, DegradeLevel);

/// Tracks aggregate queue depth against the watermarks and holds the current
/// [`DegradeLevel`]. All state is atomic: producers call
/// [`LoadController::on_enqueue`]/[`evaluate`](LoadController::evaluate) and
/// workers call [`LoadController::on_complete`]/`evaluate` concurrently without
/// locks.
#[derive(Debug)]
pub(crate) struct LoadController {
    level: AtomicU8,
    in_flight: AtomicUsize,
    /// Aggregate ring capacity of the currently open streams — the meaning of
    /// "100% load". Updated on open/close.
    capacity: AtomicUsize,
    policy: LoadPolicy,
}

impl LoadController {
    pub(crate) fn new(policy: LoadPolicy) -> Self {
        LoadController {
            level: AtomicU8::new(0),
            in_flight: AtomicUsize::new(0),
            capacity: AtomicUsize::new(0),
            policy,
        }
    }

    /// Current fidelity level.
    pub(crate) fn level(&self) -> DegradeLevel {
        DegradeLevel::from_u8(self.level.load(Ordering::Acquire))
    }

    /// Chunks accepted but not yet fully processed.
    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Records one accepted chunk.
    pub(crate) fn on_enqueue(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fully processed (or discarded-at-close) chunk.
    pub(crate) fn on_complete(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Grows the capacity baseline when a stream opens.
    pub(crate) fn add_capacity(&self, ring_capacity: usize) {
        self.capacity.fetch_add(ring_capacity, Ordering::Relaxed);
    }

    /// Shrinks the capacity baseline when a stream closes.
    pub(crate) fn remove_capacity(&self, ring_capacity: usize) {
        self.capacity.fetch_sub(ring_capacity, Ordering::Relaxed);
    }

    /// Re-evaluates the level against the watermarks, returning the transition
    /// if one was applied. Called after every enqueue and every completion;
    /// lock-free (one CAS on contention).
    pub(crate) fn evaluate(&self) -> Option<Transition> {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return None;
        }
        let q = self.in_flight.load(Ordering::Relaxed) as f64;
        let cap = capacity as f64;
        let p = &self.policy;
        loop {
            let cur = self.level.load(Ordering::Acquire);
            let next = match cur {
                0 => {
                    if q >= p.intake_high * cap {
                        2
                    } else if q >= p.shed_high * cap {
                        1
                    } else {
                        0
                    }
                }
                1 => {
                    if q >= p.intake_high * cap {
                        2
                    } else if q <= p.shed_low * cap {
                        0
                    } else {
                        1
                    }
                }
                _ => {
                    if q <= p.shed_low * cap {
                        0
                    } else if q <= p.intake_low * cap {
                        1
                    } else {
                        2
                    }
                }
            };
            if next == cur {
                return None;
            }
            if self
                .level
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((DegradeLevel::from_u8(cur), DegradeLevel::from_u8(next)));
            }
            // Another thread moved the level; re-derive from the fresh state.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(capacity: usize) -> LoadController {
        let c = LoadController::new(LoadPolicy::default());
        c.add_capacity(capacity);
        c
    }

    fn push_to(c: &LoadController, depth: usize) {
        while c.in_flight() < depth {
            c.on_enqueue();
        }
        while c.in_flight() > depth {
            c.on_complete();
        }
        while c.evaluate().is_some() {}
    }

    #[test]
    fn policy_default_validates_and_degenerate_policies_are_named() {
        LoadPolicy::default().validate().unwrap();
        let bad = [
            LoadPolicy {
                shed_high: f64::NAN,
                ..LoadPolicy::default()
            },
            LoadPolicy {
                shed_high: 0.0,
                ..LoadPolicy::default()
            },
            LoadPolicy {
                shed_high: 1.2,
                ..LoadPolicy::default()
            },
            // No hysteresis gap.
            LoadPolicy {
                shed_low: 0.75,
                ..LoadPolicy::default()
            },
            // Intake would shed before localization.
            LoadPolicy {
                intake_high: 0.70,
                ..LoadPolicy::default()
            },
            LoadPolicy {
                intake_low: 0.95,
                ..LoadPolicy::default()
            },
            // Restore order inverted.
            LoadPolicy {
                intake_low: 0.20,
                ..LoadPolicy::default()
            },
        ];
        for policy in bad {
            assert!(
                matches!(policy.validate(), Err(ServeError::InvalidConfig { .. })),
                "{policy:?} accepted"
            );
        }
    }

    #[test]
    fn sheds_localization_then_intake_as_load_rises() {
        // Capacity 100: shed at ≥75, intake-shed at ≥90.
        let c = controller(100);
        push_to(&c, 74);
        assert_eq!(c.level(), DegradeLevel::Full);
        push_to(&c, 75);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        push_to(&c, 89);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        push_to(&c, 90);
        assert_eq!(c.level(), DegradeLevel::ShedIntake);
    }

    #[test]
    fn restore_has_hysteresis_in_both_directions() {
        let c = controller(100);
        push_to(&c, 95);
        assert_eq!(c.level(), DegradeLevel::ShedIntake);
        // Dropping just below the intake-high watermark is not enough…
        push_to(&c, 85);
        assert_eq!(c.level(), DegradeLevel::ShedIntake);
        // …intake reopens only at/below intake_low (55).
        push_to(&c, 55);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        // Hovering between shed_low and shed_high keeps localization shed…
        push_to(&c, 50);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        push_to(&c, 36);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        // …full fidelity returns only at/below shed_low (35).
        push_to(&c, 35);
        assert_eq!(c.level(), DegradeLevel::Full);
    }

    #[test]
    fn a_burst_can_skip_straight_to_intake_shedding_and_back() {
        let c = controller(10);
        push_to(&c, 10);
        assert_eq!(c.level(), DegradeLevel::ShedIntake);
        push_to(&c, 0);
        assert_eq!(c.level(), DegradeLevel::Full);
    }

    #[test]
    fn transitions_are_reported_once_per_level_change() {
        let c = controller(100);
        push_to(&c, 74);
        let mut transitions = Vec::new();
        c.on_enqueue(); // 75 → shed
        if let Some(t) = c.evaluate() {
            transitions.push(t);
        }
        assert!(c.evaluate().is_none(), "no repeat transition at same depth");
        for _ in 0..40 {
            c.on_complete();
        }
        if let Some(t) = c.evaluate() {
            transitions.push(t);
        }
        assert_eq!(
            transitions,
            vec![
                (DegradeLevel::Full, DegradeLevel::ShedLocalization),
                (DegradeLevel::ShedLocalization, DegradeLevel::Full),
            ]
        );
    }

    #[test]
    fn empty_capacity_never_degrades() {
        let c = LoadController::new(LoadPolicy::default());
        assert!(c.evaluate().is_none());
        assert_eq!(c.level(), DegradeLevel::Full);
    }

    #[test]
    fn capacity_tracks_open_and_close() {
        let c = controller(10);
        // 8/10 queued: shed.
        push_to(&c, 8);
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        // A new stream opens (capacity 10 → 20): 8/20 is below every watermark
        // but above shed_low — hysteresis holds the level…
        c.add_capacity(10);
        while c.evaluate().is_some() {}
        assert_eq!(c.level(), DegradeLevel::ShedLocalization);
        // …until depth falls to shed_low of the new capacity (7 ≤ 0.35·20).
        push_to(&c, 7);
        assert_eq!(c.level(), DegradeLevel::Full);
        c.remove_capacity(10);
        assert_eq!(c.in_flight(), 7);
    }
}
