//! The session host: N concurrent perception streams multiplexed over a fixed
//! worker pool.
//!
//! One [`SessionHost`] owns one shared [`Engine`] and a fixed table of stream
//! slots. Each open stream has a bounded ingestion ring (`ChunkRing`) in
//! front of its [`Session`]; producers push audio chunks from any thread
//! ([`SessionHost::push_chunk`]) and a pool of worker threads drains the rings,
//! running the perception pipeline and delivering events to the stream's
//! [`EventSink`].
//!
//! # Dispatch protocol
//!
//! Work distribution is a bounded ready queue of slot indices plus one
//! `scheduled` flag per slot:
//!
//! * A producer that makes a ring non-empty CASes the slot's `scheduled` flag
//!   `false → true`; only the winner enqueues the slot index. At most one token
//!   per slot can exist, so the queue (capacity = `max_sessions`) can never
//!   legitimately fill.
//! * The worker that receives a token owns the session exclusively while it
//!   drains (events of one stream are always delivered in order, from one
//!   thread at a time). When it stops draining it clears `scheduled` **and then
//!   re-checks the ring**: if chunks raced in after the last pop, it re-CASes
//!   and re-enqueues, so no chunk is ever stranded.
//!
//! # Backpressure and degradation
//!
//! Nothing in the data plane blocks or allocates: a full ring returns
//! [`SubmitError::Busy`], and past the intake watermark the host returns
//! [`SubmitError::Shed`] before touching the ring. Between those, the
//! load controller sheds localization host-wide (sessions keep detecting,
//! events carry no azimuth) and restores it with hysteresis once queues drain.

use crate::error::{ServeError, SubmitError};
use crate::feed::EventFeed;
use crate::load::{DegradeLevel, LoadController, LoadPolicy};
use crate::metrics::{HostMetrics, MetricsSnapshot};
use crate::observe::{HostObserver, StageHistograms};
use crate::relock;
use crate::ring::{ChunkRing, MAX_CHANNELS};
use crate::worker;
use crossbeam::channel::{Receiver, Sender, TrySendError};
use ispot_core::api::{Engine, Session};
use ispot_core::sink::EventSink;
use ispot_obs::{MetricsRegistry, Span, SpanRing, TickSource};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Static configuration of a [`SessionHost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Worker threads draining the ingestion rings.
    pub workers: usize,
    /// Stream slots — the hard cap on concurrently open streams. Slots and the
    /// ready queue are sized once at construction; opening/closing streams
    /// recycles them.
    pub max_sessions: usize,
    /// Chunks each stream's ingestion ring holds before `push_chunk` reports
    /// [`SubmitError::Busy`].
    pub ring_capacity: usize,
    /// Largest chunk (samples per channel) a producer may push; ring slots are
    /// preallocated at this bound so the data plane never allocates.
    pub max_chunk_len: usize,
    /// Watermarks of the graceful-degradation ladder.
    pub policy: LoadPolicy,
    /// Start with the worker pool paused (chunks queue but are not processed)
    /// until [`SessionHost::resume`] — used by tests and benches that need to
    /// build up load deterministically.
    pub start_paused: bool,
    /// Per-stream span-ring capacity for pipeline tracing. `0` (the default)
    /// disables tracing entirely: sessions run with no observer attached and
    /// the per-stage cost is a single branch.
    pub span_capacity: usize,
    /// Capacity of the live event feed ring backing the `/events` endpoint
    /// and [`SessionHost::feed`].
    pub feed_capacity: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: 4,
            max_sessions: 64,
            ring_capacity: 8,
            max_chunk_len: 512,
            policy: LoadPolicy::default(),
            start_paused: false,
            span_capacity: 0,
            feed_capacity: 256,
        }
    }
}

impl HostConfig {
    /// Checks every field, naming the offender.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                field: "workers",
                reason: "must be at least 1",
            });
        }
        if self.max_sessions == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_sessions",
                reason: "must be at least 1",
            });
        }
        if self.max_sessions > u32::MAX as usize / 2 {
            return Err(ServeError::InvalidConfig {
                field: "max_sessions",
                reason: "must fit the u32 slot index space",
            });
        }
        if self.ring_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                field: "ring_capacity",
                reason: "must be at least 1",
            });
        }
        if self.max_chunk_len == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_chunk_len",
                reason: "must be at least 1",
            });
        }
        if self.feed_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                field: "feed_capacity",
                reason: "must be at least 1",
            });
        }
        self.policy.validate()
    }
}

/// Handle to one open stream: a slot index plus the generation it was opened
/// under, so an id kept after [`SessionHost::close_stream`] can never reach a
/// later occupant of the recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

/// Point-in-time statistics of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Chunks queued in the ingestion ring right now.
    pub queued: usize,
    /// Chunks accepted since the stream opened.
    pub chunks_in: u64,
    /// Chunks rejected with [`SubmitError::Busy`].
    pub chunks_busy: u64,
    /// Analysis frames completed.
    pub frames: u64,
    /// Frames processed while localization was shed.
    pub shed_frames: u64,
    /// Perception events delivered to the stream's sink.
    pub events: u64,
    /// Pipeline errors surfaced while processing this stream's chunks.
    pub errors: u64,
    /// Whether the last processed chunk ran with localization shed — the
    /// per-session view of the host's degrade decisions.
    pub localization_shed: bool,
}

/// Per-slot counters (relaxed atomics; reset when the slot is reopened).
#[derive(Debug, Default)]
pub(crate) struct SlotStats {
    pub(crate) chunks_in: AtomicU64,
    pub(crate) chunks_busy: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) shed_frames: AtomicU64,
    pub(crate) events: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) shed_applied: AtomicBool,
}

impl SlotStats {
    fn reset(&self) {
        self.chunks_in.store(0, Ordering::Relaxed);
        self.chunks_busy.store(0, Ordering::Relaxed);
        self.frames.store(0, Ordering::Relaxed);
        self.shed_frames.store(0, Ordering::Relaxed);
        self.events.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.shed_applied.store(false, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queued: usize) -> StreamStats {
        StreamStats {
            queued,
            chunks_in: self.chunks_in.load(Ordering::Relaxed),
            chunks_busy: self.chunks_busy.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            localization_shed: self.shed_applied.load(Ordering::Relaxed),
        }
    }
}

/// The session and its sink — taken together under one lock so the worker that
/// owns a drain can borrow both disjointly.
pub(crate) struct SessionState {
    pub(crate) session: Session,
    pub(crate) sink: Box<dyn EventSink + Send>,
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

/// One stream slot. `ring` and `session` are separate locks taken strictly
/// sequentially (never nested): producers only touch `ring`, the draining
/// worker takes `ring` to pop then `session` to process.
#[derive(Debug)]
pub(crate) struct Slot {
    pub(crate) ring: Mutex<Option<ChunkRing>>,
    pub(crate) session: Mutex<Option<SessionState>>,
    /// True while a ready-queue token for this slot exists (or a worker is
    /// between consuming the token and re-checking the ring). The CAS on this
    /// flag is what bounds the ready queue to one token per slot.
    pub(crate) scheduled: AtomicBool,
    /// Bumped on close; a [`StreamId`] is valid only while its generation
    /// matches.
    pub(crate) generation: AtomicU32,
    pub(crate) stats: SlotStats,
    /// The stream's span ring when tracing is enabled (control-plane lock:
    /// taken only on open/close and by exporters, never on the data plane —
    /// the attached observer holds its own `Arc`).
    pub(crate) spans: Mutex<Option<Arc<SpanRing>>>,
}

/// Pause gate for the worker pool (tests/benches build load while paused).
#[derive(Debug)]
pub(crate) struct PauseGate {
    flag: Mutex<bool>,
    cv: Condvar,
}

/// State shared between the host handle and its workers.
#[derive(Debug)]
pub(crate) struct HostInner {
    pub(crate) engine: Engine,
    pub(crate) config: HostConfig,
    pub(crate) slots: Vec<Slot>,
    /// Free slot indices (control plane only).
    free: Mutex<Vec<u32>>,
    ready_tx: Sender<u32>,
    pub(crate) ready_rx: Receiver<u32>,
    pub(crate) load: LoadController,
    /// The unified registry every host metric is registered in; rendered by
    /// the `/metrics` endpoint.
    pub(crate) registry: MetricsRegistry,
    pub(crate) metrics: HostMetrics,
    /// Per-stage latency histograms fed by every traced session.
    pub(crate) stage_latency: StageHistograms,
    /// Live feed of event summaries and degrade transitions.
    pub(crate) feed: EventFeed,
    /// The host clock every session is aligned to, so span ticks and feed
    /// timestamps share one origin.
    pub(crate) ticks: TickSource,
    shutdown: AtomicBool,
    pause: PauseGate,
}

impl HostInner {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    pub(crate) fn is_paused(&self) -> bool {
        *relock(&self.pause.flag)
    }

    /// Blocks the calling worker while the pool is paused (and not shutting
    /// down).
    pub(crate) fn wait_if_paused(&self) {
        let mut paused = relock(&self.pause.flag);
        while *paused && !self.shutdown.load(Ordering::Acquire) {
            paused = match self.pause.cv.wait(paused) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Requests a drain of `slot_idx`: CASes the slot's `scheduled` flag and,
    /// on winning, enqueues one token. Loser paths mean a token already exists
    /// (or the owning worker will re-check), so the chunk cannot be stranded.
    pub(crate) fn schedule(&self, slot_idx: usize) {
        let slot = &self.slots[slot_idx];
        if slot
            .scheduled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            match self.ready_tx.try_send(slot_idx as u32) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    // Full is unreachable (≤ 1 token per slot, queue sized at
                    // max_sessions); Disconnected only happens at shutdown.
                    // Either way, clear the flag so a later push can retry.
                    slot.scheduled.store(false, Ordering::Release);
                }
            }
        }
    }

    /// Applies any pending degrade transition, counts it and publishes it on
    /// the live feed.
    pub(crate) fn note_transitions(&self) {
        if let Some((from, to)) = self.load.evaluate() {
            if to > from {
                self.metrics.sheds.incr();
            } else {
                self.metrics.restores.incr();
            }
            self.feed.push_transition(from, to);
        }
    }

    /// Refreshes the computed gauges from live control-plane state. Called
    /// before every scrape so the exposition reflects the present, not the
    /// last mutation.
    pub(crate) fn refresh_gauges(&self) {
        let open = self.config.max_sessions - relock(&self.free).len();
        self.metrics.sessions_open.set(open as u64);
        self.metrics.queue_depth.set(self.load.in_flight() as u64);
        self.metrics.degrade_level.set(self.load.level() as u64);
    }

    /// Refreshes the gauges and renders the full Prometheus-style text
    /// exposition.
    pub(crate) fn render_prometheus(&self) -> String {
        self.refresh_gauges();
        self.registry.render_prometheus()
    }
}

/// A threaded host multiplexing concurrent perception streams over a fixed
/// worker pool, with bounded queues, typed backpressure and graceful
/// degradation. See the [module docs](self) for the dispatch protocol.
///
/// # Example
///
/// ```
/// use ispot_core::prelude::*;
/// use ispot_serve::{HostConfig, SessionHost, SharedVecSink};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = PipelineBuilder::new(16_000.0).channels(1).build_engine()?;
/// let host = SessionHost::new(engine, HostConfig { workers: 2, ..HostConfig::default() })?;
///
/// let events = SharedVecSink::new();
/// let stream = host.open_stream(events.clone())?;
///
/// let chunk = vec![0.25f64; 512];
/// host.push_chunk(stream, &[&chunk])?;
/// assert!(host.wait_idle(std::time::Duration::from_secs(5)));
///
/// let stats = host.close_stream(stream)?;
/// assert_eq!(stats.chunks_in, 1);
/// assert_eq!(events.len(), stats.events as usize);
/// # Ok(())
/// # }
/// ```
pub struct SessionHost {
    inner: Arc<HostInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SessionHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHost")
            .field("config", &self.inner.config)
            .field("workers", &self.workers.len())
            .field("level", &self.inner.load.level())
            .finish_non_exhaustive()
    }
}

impl SessionHost {
    /// Validates `config`, builds the slot table and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field when a
    /// configuration value is out of range, or when the engine's channel count
    /// exceeds the serve layer's stack-view bound.
    pub fn new(engine: Engine, config: HostConfig) -> Result<SessionHost, ServeError> {
        config.validate()?;
        if engine.num_channels() > MAX_CHANNELS {
            return Err(ServeError::InvalidConfig {
                field: "engine",
                reason: "channel count exceeds the serve layer's 32-channel bound",
            });
        }
        let (ready_tx, ready_rx) = crossbeam::channel::bounded(config.max_sessions);
        let mut slots = Vec::with_capacity(config.max_sessions);
        for _ in 0..config.max_sessions {
            slots.push(Slot {
                ring: Mutex::new(None),
                session: Mutex::new(None),
                scheduled: AtomicBool::new(false),
                generation: AtomicU32::new(0),
                stats: SlotStats::default(),
                spans: Mutex::new(None),
            });
        }
        // Popping from the back hands out low indices first.
        let free: Vec<u32> = (0..config.max_sessions as u32).rev().collect();
        let registry = MetricsRegistry::new();
        let metrics = HostMetrics::new(&registry);
        let stage_latency = StageHistograms::new(&registry);
        let inner = Arc::new(HostInner {
            engine,
            config,
            slots,
            free: Mutex::new(free),
            ready_tx,
            ready_rx,
            load: LoadController::new(config.policy),
            registry,
            metrics,
            stage_latency,
            feed: EventFeed::new(config.feed_capacity),
            ticks: TickSource::new(),
            shutdown: AtomicBool::new(false),
            pause: PauseGate {
                flag: Mutex::new(config.start_paused),
                cv: Condvar::new(),
            },
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ispot-serve-{i}"))
                    .spawn(move || worker::worker_loop(&inner))
                    .expect("spawn serve worker thread")
            })
            .collect();
        Ok(SessionHost { inner, workers })
    }

    /// The shared engine.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The validated configuration.
    pub fn config(&self) -> HostConfig {
        self.inner.config
    }

    /// Opens a stream: claims a slot, opens a [`Session`] on the shared engine
    /// and installs `sink` as the stream's event consumer. The sink is invoked
    /// from worker threads, one chunk at a time, in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AtCapacity`] when every slot is occupied.
    pub fn open_stream<S: EventSink + Send + 'static>(
        &self,
        sink: S,
    ) -> Result<StreamId, ServeError> {
        let inner = &self.inner;
        let idx = relock(&inner.free).pop().ok_or(ServeError::AtCapacity {
            max_sessions: inner.config.max_sessions,
        })?;
        let slot = &inner.slots[idx as usize];
        let mut session = inner.engine.open_session();
        // All sessions share the host clock, so spans from different streams
        // are directly comparable on one timeline.
        session.set_tick_source(inner.ticks);
        if inner.config.span_capacity > 0 {
            let spans = Arc::new(SpanRing::new(inner.config.span_capacity));
            session.set_observer(Box::new(HostObserver::new(
                Arc::clone(&spans),
                inner.stage_latency.clone(),
            )));
            *relock(&slot.spans) = Some(spans);
        }
        slot.stats.reset();
        *relock(&slot.session) = Some(SessionState {
            session,
            sink: Box::new(sink),
        });
        *relock(&slot.ring) = Some(ChunkRing::new(
            inner.config.ring_capacity,
            inner.engine.num_channels(),
            inner.config.max_chunk_len,
        ));
        inner.load.add_capacity(inner.config.ring_capacity);
        inner.metrics.sessions_opened.incr();
        Ok(StreamId {
            slot: idx,
            generation: slot.generation.load(Ordering::Acquire),
        })
    }

    /// Submits one planar `f64` chunk (`chunk[channel][sample]`) to a stream.
    /// Non-blocking and allocation-free on every path: the chunk is copied into
    /// the stream's preallocated ring or comes back with a typed
    /// [`SubmitError`] — nothing is ever dropped silently.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] (ring full) and [`SubmitError::Shed`] (host past
    /// its intake watermark) are transient by design; the remaining variants
    /// are caller bugs (stale id, wrong shape). In every case the chunk was not
    /// enqueued.
    pub fn push_chunk(&self, id: StreamId, chunk: &[&[f64]]) -> Result<(), SubmitError> {
        let inner = &self.inner;
        let slot = inner
            .slots
            .get(id.slot as usize)
            .ok_or(SubmitError::UnknownStream)?;
        let expected = inner.engine.num_channels();
        if chunk.len() != expected {
            return Err(SubmitError::ChannelMismatch {
                expected,
                actual: chunk.len(),
            });
        }
        let samples = chunk.first().map_or(0, |c| c.len());
        for channel in chunk {
            if channel.len() != samples {
                return Err(SubmitError::RaggedChunk);
            }
        }
        if samples > inner.config.max_chunk_len {
            return Err(SubmitError::ChunkTooLong {
                samples,
                max: inner.config.max_chunk_len,
            });
        }
        if inner.load.level() == DegradeLevel::ShedIntake {
            inner.metrics.chunks_shed.incr();
            return Err(SubmitError::Shed);
        }
        {
            let mut guard = relock(&slot.ring);
            // Generation is re-checked under the ring lock: close bumps it
            // under the same lock, so a stale id can never reach a recycled
            // slot's new ring.
            if slot.generation.load(Ordering::Acquire) != id.generation {
                return Err(SubmitError::UnknownStream);
            }
            let Some(ring) = guard.as_mut() else {
                return Err(SubmitError::UnknownStream);
            };
            if !ring.push_planar(chunk, Instant::now()) {
                inner.metrics.chunks_busy.incr();
                slot.stats.chunks_busy.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Busy { queued: ring.len() });
            }
        }
        inner.metrics.chunks_in.incr();
        slot.stats.chunks_in.fetch_add(1, Ordering::Relaxed);
        inner.load.on_enqueue();
        inner.note_transitions();
        inner.schedule(id.slot as usize);
        Ok(())
    }

    /// Closes a stream: discards undelivered chunks (counted in
    /// [`MetricsSnapshot::chunks_discarded`]), waits for any in-flight chunk of
    /// this stream to finish, drops the session and sink, and recycles the
    /// slot. Returns the stream's final statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownStream`] if `id` is stale or was never
    /// opened.
    pub fn close_stream(&self, id: StreamId) -> Result<StreamStats, ServeError> {
        let inner = &self.inner;
        let slot = inner
            .slots
            .get(id.slot as usize)
            .ok_or(ServeError::UnknownStream)?;
        let discarded = {
            let mut guard = relock(&slot.ring);
            if slot.generation.load(Ordering::Acquire) != id.generation || guard.is_none() {
                return Err(ServeError::UnknownStream);
            }
            slot.generation.fetch_add(1, Ordering::AcqRel);
            guard.take().map_or(0, |mut ring| ring.clear())
        };
        for _ in 0..discarded {
            inner.load.on_complete();
        }
        inner.metrics.chunks_discarded.add(discarded as u64);
        // Blocks until the worker currently processing this stream (if any)
        // releases the session lock — close never races a live drain.
        *relock(&slot.session) = None;
        *relock(&slot.spans) = None;
        inner.load.remove_capacity(inner.config.ring_capacity);
        inner.note_transitions();
        inner.metrics.sessions_closed.incr();
        let stats = slot.stats.snapshot(0);
        relock(&inner.free).push(id.slot);
        Ok(stats)
    }

    /// Point-in-time statistics of one open stream.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownStream`] if `id` is stale or was never
    /// opened.
    pub fn stream_stats(&self, id: StreamId) -> Result<StreamStats, ServeError> {
        let inner = &self.inner;
        let slot = inner
            .slots
            .get(id.slot as usize)
            .ok_or(ServeError::UnknownStream)?;
        let guard = relock(&slot.ring);
        if slot.generation.load(Ordering::Acquire) != id.generation {
            return Err(ServeError::UnknownStream);
        }
        let queued = guard.as_ref().ok_or(ServeError::UnknownStream)?.len();
        Ok(slot.stats.snapshot(queued))
    }

    /// Snapshots every host counter plus the latency quantiles. Reads relaxed
    /// atomics and briefly locks control-plane state only — never the data
    /// plane.
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        let m = &inner.metrics;
        MetricsSnapshot {
            sessions_open: inner.config.max_sessions - relock(&inner.free).len(),
            sessions_opened: m.sessions_opened.get(),
            sessions_closed: m.sessions_closed.get(),
            chunks_in: m.chunks_in.get(),
            chunks_busy: m.chunks_busy.get(),
            chunks_shed: m.chunks_shed.get(),
            chunks_discarded: m.chunks_discarded.get(),
            queue_depth: inner.load.in_flight(),
            frames: m.frames.get(),
            shed_frames: m.shed_frames.get(),
            events: m.events.get(),
            sheds: m.sheds.get(),
            restores: m.restores.get(),
            errors: m.errors.get(),
            degrade_level: inner.load.level(),
            latency: m.latency.snapshot(),
        }
    }

    /// Current level of the graceful-degradation ladder.
    pub fn degrade_level(&self) -> DegradeLevel {
        self.inner.load.level()
    }

    /// Renders every registered host metric as Prometheus-style text
    /// exposition — the body the `/metrics` endpoint serves. Computed gauges
    /// are refreshed first.
    pub fn render_prometheus(&self) -> String {
        self.inner.render_prometheus()
    }

    /// Resolved per-stage latency snapshots, in pipeline order
    /// (trigger, detection, localization, tracking). All-`None` quantiles
    /// until tracing is enabled (`span_capacity > 0`) and frames have run.
    pub fn stage_latency(&self) -> [(&'static str, crate::metrics::LatencySnapshot); 4] {
        self.inner.stage_latency.snapshot()
    }

    /// The live feed of perception-event summaries and degrade transitions.
    pub fn feed(&self) -> &EventFeed {
        &self.inner.feed
    }

    /// Copies the still-resident trace spans of one stream, oldest first.
    /// Empty when tracing is disabled (`span_capacity == 0`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownStream`] if `id` is stale or was never
    /// opened.
    pub fn stream_spans(&self, id: StreamId) -> Result<Vec<Span>, ServeError> {
        let inner = &self.inner;
        let slot = inner
            .slots
            .get(id.slot as usize)
            .ok_or(ServeError::UnknownStream)?;
        let guard = relock(&slot.spans);
        if slot.generation.load(Ordering::Acquire) != id.generation {
            return Err(ServeError::UnknownStream);
        }
        let mut out = Vec::new();
        if let Some(ring) = guard.as_ref() {
            ring.snapshot_into(&mut out);
        }
        Ok(out)
    }

    /// Shared host state for the HTTP exporter thread.
    pub(crate) fn inner(&self) -> &Arc<HostInner> {
        &self.inner
    }

    /// Pauses the worker pool after it finishes the chunks it is currently
    /// processing; accepted chunks queue in their rings. Used to build load
    /// deterministically in tests and benches.
    pub fn pause(&self) {
        *relock(&self.inner.pause.flag) = true;
    }

    /// Resumes a paused worker pool.
    pub fn resume(&self) {
        *relock(&self.inner.pause.flag) = false;
        self.inner.pause.cv.notify_all();
    }

    /// Blocks until every accepted chunk has been fully processed (or
    /// discarded by a close), polling the aggregate queue depth. Returns
    /// `false` on timeout — which is guaranteed if the pool is paused and
    /// chunks are queued.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.inner.load.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }
}

impl Drop for SessionHost {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake anything parked on the pause gate so it can observe shutdown.
        self.inner.pause.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
