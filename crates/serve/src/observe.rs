//! Pipeline tracing adapters for the session host: per-stage latency
//! histograms registered in the host's [`MetricsRegistry`] and the
//! [`HostObserver`] attached to every session when span tracing is enabled.
//!
//! The observer hot path ([`HostObserver::on_span`]) is one seqlock ring push
//! plus one relaxed histogram record — allocation-free and wait-free, pinned
//! by the counting-allocator test in `tests/zero_alloc.rs` and by the
//! `ispot-analyze` hot-path manifest.

use crate::metrics::LatencySnapshot;
use ispot_core::prelude::{Span, SpanRing, StageId, StageObserver};
use ispot_obs::{Histogram, MetricsRegistry};
use std::sync::Arc;

/// One latency histogram per pipeline stage, registered as the
/// `ispot_stage_latency_seconds` family with a `stage` label per member.
#[derive(Debug, Clone)]
pub(crate) struct StageHistograms {
    stages: [Histogram; StageId::COUNT],
}

impl StageHistograms {
    /// Registers the four labeled members consecutively so the text
    /// exposition emits HELP/TYPE once for the family.
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        const HELP: &str = "Per-stage pipeline latency";
        const NAME: &str = "ispot_stage_latency_seconds";
        StageHistograms {
            stages: [
                registry.histogram_labeled(NAME, HELP, "stage=\"trigger\""),
                registry.histogram_labeled(NAME, HELP, "stage=\"detection\""),
                registry.histogram_labeled(NAME, HELP, "stage=\"localization\""),
                registry.histogram_labeled(NAME, HELP, "stage=\"tracking\""),
            ],
        }
    }

    /// The histogram for `stage`.
    pub(crate) fn stage(&self, stage: StageId) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Resolved snapshots for every stage, in [`StageId::ALL`] order.
    pub(crate) fn snapshot(&self) -> [(&'static str, LatencySnapshot); StageId::COUNT] {
        StageId::ALL.map(|stage| (stage.name(), self.stages[stage.index()].snapshot()))
    }
}

/// The observer the host attaches to sessions: records every stage span into
/// the stream's [`SpanRing`] and folds its duration into the host-wide
/// per-stage histograms.
#[derive(Debug)]
pub struct HostObserver {
    ring: Arc<SpanRing>,
    stages: StageHistograms,
}

impl HostObserver {
    pub(crate) fn new(ring: Arc<SpanRing>, stages: StageHistograms) -> Self {
        HostObserver { ring, stages }
    }
}

impl StageObserver for HostObserver {
    fn on_span(&mut self, span: Span) {
        self.ring.record(span);
        self.stages.stage(span.stage).record_us(span.duration_us());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_obs::TickSource;

    #[test]
    fn observer_records_into_ring_and_histograms() {
        let registry = MetricsRegistry::default();
        let stages = StageHistograms::new(&registry);
        let ring = Arc::new(SpanRing::new(16));
        let mut obs = HostObserver::new(Arc::clone(&ring), stages.clone());
        let _ = TickSource::new();
        obs.on_span(Span {
            stage: StageId::Detection,
            frame_index: 7,
            start_ticks: 1_000,
            duration_ticks: 250_000,
        });
        assert_eq!(ring.recorded(), 1);
        let span = ring.read_at(0).expect("span resident");
        assert_eq!(span.stage, StageId::Detection);
        assert_eq!(span.frame_index, 7);
        assert_eq!(stages.stage(StageId::Detection).count(), 1);
        assert_eq!(stages.stage(StageId::Trigger).count(), 0);
    }

    #[test]
    fn stage_family_renders_once_with_labels() {
        let registry = MetricsRegistry::default();
        let stages = StageHistograms::new(&registry);
        stages.stage(StageId::Trigger).record_us(100);
        let text = registry.render_prometheus();
        assert_eq!(
            text.matches("# TYPE ispot_stage_latency_seconds histogram")
                .count(),
            1
        );
        assert!(
            text.contains("ispot_stage_latency_seconds_bucket{stage=\"trigger\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("ispot_stage_latency_seconds_count{stage=\"tracking\"} 0"));
    }

    #[test]
    fn snapshot_covers_all_stages_in_order() {
        let registry = MetricsRegistry::default();
        let stages = StageHistograms::new(&registry);
        let snap = stages.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].0, "trigger");
        assert_eq!(snap[3].0, "tracking");
        assert_eq!(snap[0].1.p50_ms, None);
    }
}
