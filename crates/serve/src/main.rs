//! `ispot-serve` — demo host: N concurrent siren streams over a fixed worker
//! pool, reporting throughput, latency quantiles and degrade activity.
//!
//! ```text
//! ispot-serve [--sessions N] [--workers N] [--seconds S] [--chunk LEN] [--smoke]
//!             [--metrics-port P] [--linger S]
//! ```
//!
//! The driver renders one multichannel siren scene with `ispot-roadsim`, opens
//! `--sessions` streams against a shared engine and pushes the recording
//! chunk-by-chunk into every stream as fast as the host accepts, honoring
//! backpressure (`Busy` chunks are retried on the next round, never dropped by
//! the driver). `--smoke` runs one short fixed workload for CI.
//!
//! With `--metrics-port P` the host additionally serves its observability
//! endpoint on `127.0.0.1:P` (`/metrics`, `/snapshot`, `/events`; port 0 binds
//! ephemerally and the bound address is printed). `--linger S` keeps the
//! process (and the endpoint) alive S extra seconds after the drive so
//! external scrapers can read the final state — the CI smoke step curls the
//! endpoint during this window.

use ispot_core::api::PipelineBuilder;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::time::{Duration, Instant};

/// Audio sample rate of the demo scene, Hz.
const SAMPLE_RATE: f64 = 16_000.0;

#[derive(Debug, Clone, Copy)]
struct Args {
    sessions: usize,
    workers: usize,
    seconds: f64,
    chunk: usize,
    smoke: bool,
    metrics_port: Option<u16>,
    linger: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 8,
            workers: 4,
            seconds: 2.0,
            chunk: 512,
            smoke: false,
            metrics_port: None,
            linger: 0.0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--seconds" => {
                args.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--chunk" => {
                args.chunk = value("--chunk")?
                    .parse()
                    .map_err(|e| format!("--chunk: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--metrics-port" => {
                args.metrics_port = Some(
                    value("--metrics-port")?
                        .parse()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                );
            }
            "--linger" => {
                args.linger = value("--linger")?
                    .parse()
                    .map_err(|e| format!("--linger: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.sessions = args.sessions.min(4);
        args.workers = args.workers.min(2);
        args.seconds = 0.5;
    }
    Ok(args)
}

/// One second of a wail siren driving past a 4-mic circular array.
fn siren_recording() -> ispot_roadsim::engine::MultichannelAudio {
    let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
    let siren = SirenSynthesizer::new(SirenKind::Wail, SAMPLE_RATE).synthesize(1.0);
    let scene = SceneBuilder::new(SAMPLE_RATE)
        .source(SoundSource::new(
            siren,
            Trajectory::linear(
                Position::new(-10.0, 8.0, 1.0),
                Position::new(10.0, 8.0, 1.0),
                20.0,
            ),
        ))
        .array(array)
        .reflection(false)
        .air_absorption(false)
        .build()
        .expect("valid demo scene");
    Simulator::new(scene)
        .expect("valid simulator")
        .run()
        .expect("demo simulation succeeds")
}

fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let audio = siren_recording();
    let array = MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0));
    let engine = PipelineBuilder::new(SAMPLE_RATE)
        .array(&array)
        .build_engine()?;
    let host = SessionHost::new(
        engine,
        HostConfig {
            workers: args.workers,
            max_sessions: args.sessions,
            max_chunk_len: args.chunk,
            // The demo always traces: per-stage latency shows up in the
            // report and on /metrics.
            span_capacity: 256,
            ..HostConfig::default()
        },
    )?;
    let endpoint = match args.metrics_port {
        Some(port) => {
            let endpoint = host.serve_http(("127.0.0.1", port))?;
            println!("metrics endpoint on http://{}", endpoint.addr());
            Some(endpoint)
        }
        None => None,
    };

    let counter = CountingSink::new();
    let streams: Vec<StreamId> = (0..args.sessions)
        .map(|_| host.open_stream(counter.clone()))
        .collect::<Result<_, _>>()?;

    // Per-stream cursors into the recording; wrap around for long drives.
    let channels = audio.channels();
    let samples = channels.first().map_or(0, |c| c.len());
    let mut cursors = vec![0usize; streams.len()];
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(args.seconds);
    while Instant::now() < deadline {
        let mut all_busy = true;
        for (stream, cursor) in streams.iter().zip(cursors.iter_mut()) {
            if *cursor + args.chunk > samples {
                *cursor = 0;
            }
            let views: Vec<&[f64]> = channels
                .iter()
                .map(|c| &c[*cursor..*cursor + args.chunk])
                .collect();
            match host.push_chunk(*stream, &views) {
                Ok(()) => {
                    *cursor += args.chunk;
                    all_busy = false;
                }
                Err(e) if e.is_transient() => {}
                Err(e) => return Err(Box::new(e)),
            }
        }
        if all_busy {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    host.wait_idle(Duration::from_secs(30));
    let wall = started.elapsed().as_secs_f64();
    let metrics = host.metrics();

    println!(
        "ispot-serve demo — {} sessions, {} workers, {:.1} s drive, {}-sample chunks",
        args.sessions, args.workers, wall, args.chunk
    );
    println!(
        "  chunks     in {}   busy {}   shed {}",
        metrics.chunks_in, metrics.chunks_busy, metrics.chunks_shed
    );
    println!(
        "  frames     {}   ({:.1}% with localization shed)   {:.0} frames/s aggregate",
        metrics.frames,
        100.0 * metrics.shed_rate(),
        metrics.frames as f64 / wall
    );
    println!(
        "  events     {}   (alerts {})",
        metrics.events,
        counter.alerts()
    );
    println!(
        "  latency    p50 {} ms   p99 {} ms   max {:.2} ms",
        fmt_ms(metrics.latency.p50_ms),
        fmt_ms(metrics.latency.p99_ms),
        metrics.latency.max_ms
    );
    for (stage, snap) in host.stage_latency() {
        println!(
            "  stage      {stage:<12} p50 {} ms   p99 {} ms   ({} spans)",
            fmt_ms(snap.p50_ms),
            fmt_ms(snap.p99_ms),
            snap.count
        );
    }
    println!(
        "  degrade    level {}   ({} sheds, {} restores)",
        metrics.degrade_level, metrics.sheds, metrics.restores
    );
    if args.linger > 0.0 && endpoint.is_some() {
        println!("lingering {:.1} s for scrapers...", args.linger);
        std::thread::sleep(Duration::from_secs_f64(args.linger));
    }
    for stream in streams {
        host.close_stream(stream)?;
    }
    drop(endpoint);
    if args.smoke && metrics.frames == 0 {
        return Err("smoke run processed no frames".into());
    }
    Ok(())
}

/// A conservative latency quantile for the report; `n/a` before any sample.
fn fmt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |ms| format!("{ms:.2}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("ispot-serve: {message}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(args) {
        eprintln!("ispot-serve: {error}");
        std::process::exit(1);
    }
}
