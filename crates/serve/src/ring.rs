//! The bounded per-session ingestion ring: fixed-capacity storage for audio
//! chunks between the producer (`push_chunk`) and the worker that drains the
//! session.
//!
//! Every buffer is allocated once when the stream opens — `capacity` slots of
//! `channels × max_chunk_len` samples each — and recycled forever after:
//! producers copy planar samples *into* a slot ([`ChunkRing::push_planar`]),
//! workers take a filled slot by **swapping** its storage with their own spare
//! buffer of identical capacity ([`ChunkRing::pop_swap`]), so the steady-state
//! data plane moves pointers, never allocates, and a full ring is reported to
//! the producer as typed backpressure instead of blocking or growing.

use std::time::Instant;

/// One preallocated chunk slot: planar samples at a fixed per-channel stride,
/// plus the submit timestamp that seeds the end-to-end latency measurement.
#[derive(Debug)]
struct ChunkSlot {
    /// Planar storage, channel-major: channel `c` occupies
    /// `[c * stride, c * stride + samples)`.
    data: Vec<f64>,
    /// Valid samples per channel (≤ stride).
    samples: usize,
    /// When the producer submitted the chunk.
    enqueued: Instant,
}

/// A fixed-capacity SPSC ring of audio chunks. Not internally synchronized —
/// the host wraps it in a mutex whose critical sections are bare copies.
#[derive(Debug)]
pub(crate) struct ChunkRing {
    slots: Vec<ChunkSlot>,
    /// Index of the oldest queued chunk.
    head: usize,
    /// Number of queued chunks.
    len: usize,
    channels: usize,
    stride: usize,
}

impl ChunkRing {
    /// Allocates `capacity` slots of `channels × max_chunk_len` samples. This
    /// is the *only* allocation the ring ever performs.
    pub(crate) fn new(capacity: usize, channels: usize, max_chunk_len: usize) -> Self {
        let now = Instant::now();
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(ChunkSlot {
                data: vec![0.0; channels * max_chunk_len],
                samples: 0,
                enqueued: now,
            });
        }
        ChunkRing {
            slots,
            head: 0,
            len: 0,
            channels,
            stride: max_chunk_len,
        }
    }

    /// Queued chunks.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when no chunk is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies a planar chunk (`chunk[channel][sample]`) into the next free
    /// slot, stamping it with `enqueued`. Returns `false` — accepting nothing —
    /// when the ring is full; the caller surfaces that as
    /// [`SubmitError::Busy`](crate::SubmitError::Busy). Shape validation
    /// (channel count, equal lengths, stride bound) is the caller's job; this
    /// debug-asserts it.
    pub(crate) fn push_planar(&mut self, chunk: &[&[f64]], enqueued: Instant) -> bool {
        if self.len == self.slots.len() {
            return false;
        }
        debug_assert_eq!(chunk.len(), self.channels);
        let tail = (self.head + self.len) % self.slots.len();
        let slot = &mut self.slots[tail];
        let samples = chunk.first().map_or(0, |c| c.len());
        debug_assert!(samples <= self.stride);
        for (c, channel) in chunk.iter().enumerate() {
            debug_assert_eq!(channel.len(), samples);
            let base = c * self.stride;
            slot.data[base..base + samples].copy_from_slice(channel);
        }
        slot.samples = samples;
        slot.enqueued = enqueued;
        self.len += 1;
        true
    }

    /// Takes the oldest chunk by swapping its storage with `out`'s (both are
    /// `channels × stride` buffers, so the slot stays full-size for reuse).
    /// Returns `false` when the ring is empty.
    pub(crate) fn pop_swap(&mut self, out: &mut ChunkBuf) -> bool {
        if self.len == 0 {
            return false;
        }
        debug_assert_eq!(out.channels, self.channels);
        debug_assert_eq!(out.stride, self.stride);
        let slot = &mut self.slots[self.head];
        std::mem::swap(&mut slot.data, &mut out.data);
        out.samples = slot.samples;
        out.enqueued = slot.enqueued;
        slot.samples = 0;
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        true
    }

    /// Discards every queued chunk (stream close), returning how many were
    /// dropped so the caller can settle the load accounting and report them.
    pub(crate) fn clear(&mut self) -> usize {
        let dropped = self.len;
        self.len = 0;
        self.head = 0;
        for slot in &mut self.slots {
            slot.samples = 0;
        }
        dropped
    }
}

/// A worker-owned chunk buffer, swap-compatible with the ring slots of every
/// stream of its host (one engine ⇒ one channel count, one stride).
#[derive(Debug)]
pub(crate) struct ChunkBuf {
    data: Vec<f64>,
    samples: usize,
    channels: usize,
    stride: usize,
    enqueued: Instant,
}

/// Channel counts the stack-allocated view table supports; matches the
/// engine-side bound (`ispot_core` builds frame views the same way).
pub(crate) const MAX_CHANNELS: usize = 32;

impl ChunkBuf {
    /// Allocates one swap buffer (worker startup — the only allocation).
    pub(crate) fn new(channels: usize, max_chunk_len: usize) -> Self {
        ChunkBuf {
            data: vec![0.0; channels * max_chunk_len],
            samples: 0,
            channels,
            stride: max_chunk_len,
            enqueued: Instant::now(),
        }
    }

    /// When the producer submitted the held chunk.
    pub(crate) fn enqueued(&self) -> Instant {
        self.enqueued
    }

    /// Runs `f` over per-channel `&[f64]` views of the held chunk. The view
    /// table lives on the stack (channel counts are validated ≤
    /// [`MAX_CHANNELS`] at host construction), so this allocates nothing.
    pub(crate) fn with_views<R>(&self, f: impl FnOnce(&[&[f64]]) -> R) -> R {
        debug_assert!(self.channels <= MAX_CHANNELS);
        let mut views: [&[f64]; MAX_CHANNELS] = [&[]; MAX_CHANNELS];
        for (c, view) in views.iter_mut().enumerate().take(self.channels) {
            let base = c * self.stride;
            *view = &self.data[base..base + self.samples];
        }
        f(&views[..self.channels])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk2(a: &[f64], b: &[f64]) -> [Vec<f64>; 2] {
        [a.to_vec(), b.to_vec()]
    }

    fn views(chunk: &[Vec<f64>]) -> Vec<&[f64]> {
        chunk.iter().map(|c| c.as_slice()).collect()
    }

    #[test]
    fn fifo_order_with_wraparound_and_varying_lengths() {
        let mut ring = ChunkRing::new(3, 2, 4);
        let mut out = ChunkBuf::new(2, 4);
        let now = Instant::now();
        // Fill, drain one, push one more — forces head wraparound.
        for i in 0..3 {
            let c = chunk2(&[i as f64; 3], &[10.0 + i as f64; 3]);
            assert!(ring.push_planar(&views(&c), now));
        }
        assert!(ring.pop_swap(&mut out));
        out.with_views(|v| {
            assert_eq!(v[0], &[0.0; 3]);
            assert_eq!(v[1], &[10.0; 3]);
        });
        let c = chunk2(&[7.0, 8.0], &[9.0, 11.0]);
        assert!(ring.push_planar(&views(&c), now));
        let mut seen = Vec::new();
        while ring.pop_swap(&mut out) {
            out.with_views(|v| seen.push((v[0].to_vec(), v[1].to_vec())));
        }
        assert_eq!(
            seen,
            vec![
                (vec![1.0; 3], vec![11.0; 3]),
                (vec![2.0; 3], vec![12.0; 3]),
                (vec![7.0, 8.0], vec![9.0, 11.0]),
            ]
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_without_overwriting() {
        let mut ring = ChunkRing::new(2, 1, 4);
        let now = Instant::now();
        assert!(ring.push_planar(&[&[1.0]], now));
        assert!(ring.push_planar(&[&[2.0]], now));
        assert!(!ring.push_planar(&[&[3.0]], now), "full ring must reject");
        assert_eq!(ring.len(), 2);
        let mut out = ChunkBuf::new(1, 4);
        assert!(ring.pop_swap(&mut out));
        out.with_views(|v| assert_eq!(v[0], &[1.0]));
        // The rejected chunk was never stored.
        assert!(ring.pop_swap(&mut out));
        out.with_views(|v| assert_eq!(v[0], &[2.0]));
        assert!(!ring.pop_swap(&mut out));
    }

    #[test]
    fn swap_recycles_storage_without_reallocating() {
        let mut ring = ChunkRing::new(2, 2, 8);
        let mut out = ChunkBuf::new(2, 8);
        let now = Instant::now();
        let before: Vec<usize> = ring.slots.iter().map(|s| s.data.capacity()).collect();
        for round in 0..50 {
            let c = chunk2(&[round as f64; 8], &[round as f64; 8]);
            assert!(ring.push_planar(&views(&c), now));
            assert!(ring.pop_swap(&mut out));
        }
        let after: Vec<usize> = ring.slots.iter().map(|s| s.data.capacity()).collect();
        assert_eq!(before, after, "slot capacities must be stable");
        assert_eq!(out.data.capacity(), 16);
    }

    #[test]
    fn clear_reports_dropped_chunks() {
        let mut ring = ChunkRing::new(4, 1, 2);
        let now = Instant::now();
        for _ in 0..3 {
            assert!(ring.push_planar(&[&[0.5, 0.5]], now));
        }
        assert_eq!(ring.clear(), 3);
        assert!(ring.is_empty());
        assert_eq!(ring.clear(), 0);
    }

    #[test]
    fn enqueue_timestamps_ride_along() {
        let mut ring = ChunkRing::new(2, 1, 2);
        let mut out = ChunkBuf::new(1, 2);
        let t0 = Instant::now();
        assert!(ring.push_planar(&[&[1.0]], t0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = Instant::now();
        assert!(ring.push_planar(&[&[2.0]], t1));
        assert!(ring.pop_swap(&mut out));
        assert_eq!(out.enqueued(), t0);
        assert!(ring.pop_swap(&mut out));
        assert_eq!(out.enqueued(), t1);
    }
}
