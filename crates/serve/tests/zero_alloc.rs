//! Asserts the hosted per-chunk serve path is allocation-free in steady state,
//! end to end: `push_chunk` (validation, ring copy, load accounting, dispatch),
//! the worker's pop-by-swap, the session's frame analysis with localization and
//! tracking, and metered event delivery through the stream's sink.
//!
//! The host runs with tracing ON (`span_capacity > 0`): the window therefore
//! also covers the attached `StageObserver` (four spans per frame into the
//! stream's span ring plus per-stage histogram records) and the event-feed
//! publish — proving instrumentation adds zero steady-state allocations.
//!
//! The counting allocator is process-global, so the measured window also covers
//! the worker thread — exactly the point: *no* thread of the host may allocate
//! per chunk once warm. This file holds a single test so no concurrent test can
//! pollute the window.

use ispot_core::prelude::*;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Wraps the system allocator, counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure pass-through to the system allocator — every layout/pointer
// contract is forwarded unchanged, the wrapper only bumps an atomic counter.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates directly to `System.alloc` under the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is forwarded unchanged under the caller's contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates directly to `System.dealloc`; `ptr` was produced by
    // the matching `alloc`/`realloc` on the same `System` allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged under the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates directly to `System.realloc` under the caller's
    // layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: all three arguments are forwarded unchanged under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

const CHUNK: usize = 512;

/// Pushes `rounds` siren chunks through the host, keeping the ring drained
/// (each chunk is fully processed before the next push, so the window spans
/// the complete submit→process→deliver path every time). Returns the
/// allocation delta across the window.
fn measure(host: &SessionHost, id: StreamId, channels: &[Vec<f64>], rounds: usize) -> usize {
    let len = channels[0].len();
    let mut start = 0;
    let before = allocation_count();
    for _ in 0..rounds {
        if start + CHUNK > len {
            start = 0;
        }
        let views: [&[f64]; 2] = [
            &channels[0][start..start + CHUNK],
            &channels[1][start..start + CHUNK],
        ];
        host.push_chunk(id, &views).unwrap();
        start += CHUNK;
        while host.stream_stats(id).unwrap().queued > 0 {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    allocation_count() - before
}

#[test]
fn hosted_steady_state_serve_path_allocates_nothing() {
    let fs = 16_000.0;
    // A loud siren on a 2-mic array: events fire on most frames, so the window
    // covers localization, tracking and metered event delivery — not silence.
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
    let channels = vec![siren.clone(), siren];
    let array = MicrophoneArray::circular(2, 0.2, Position::new(0.0, 0.0, 1.0));
    let engine = PipelineBuilder::new(fs)
        .array(&array)
        .build_engine()
        .unwrap();
    let host = SessionHost::new(
        engine,
        HostConfig {
            workers: 1,
            max_sessions: 1,
            max_chunk_len: CHUNK,
            // Tracing on: the measured window must stay allocation-free with
            // the observer attached and spans flowing.
            span_capacity: 128,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let counter = CountingSink::new();
    let id = host.open_stream(counter.clone()).unwrap();

    // Warm-up: sizes the session's assembler rings, detector and SRP scratch,
    // and exercises every host path (dispatch, swap recycling, metering).
    measure(&host, id, &channels, 32);
    assert!(counter.frames() > 0, "warm-up processed no frames");
    assert!(counter.events() > 0, "warm-up fired no events");

    // Measured region: zero allocations allowed anywhere in the process.
    let frames_before = counter.frames();
    let delta = measure(&host, id, &channels, 64);
    let frames = counter.frames() - frames_before;
    assert!(frames > 0, "measured window processed no frames");
    assert_eq!(
        delta,
        0,
        "hosted serve path allocated {delta} times in steady state \
         ({frames} frames, {} events delivered)",
        counter.events()
    );

    // The observer must have been live during the window, not silently off.
    let spans = host.stream_spans(id).unwrap();
    assert!(!spans.is_empty(), "tracing enabled but no spans recorded");

    let stats = host.close_stream(id).unwrap();
    assert_eq!(stats.errors, 0);

    // Sanity check that the counter is actually live.
    let before = allocation_count();
    let v: Vec<u8> = Vec::with_capacity(64);
    assert!(allocation_count() > before, "counting allocator inactive");
    drop(v);
}
