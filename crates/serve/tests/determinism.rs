//! Hosted determinism: a stream's event sequence is a function of its audio
//! alone. The same recording pushed through [`SessionHost`]s with 1, 2 and 8
//! workers — and under different chunk sizes and push interleavings — must
//! yield event sequences bit-identical to a bare [`Session`] processing the
//! recording directly. Runs repeat with pipeline tracing enabled
//! (`span_capacity > 0`): observation must never change what is observed.
//!
//! The driver keeps each stream's ring drained below the shed watermark, so
//! the load controller stays at full fidelity throughout: degrade decisions
//! are the one intentional cross-stream coupling and are exercised separately
//! in `overload.rs`.

use ispot_core::events::PerceptionEvent;
use ispot_core::prelude::*;
use ispot_roadsim::engine::{MultichannelAudio, Simulator};
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::time::Duration;

const FS: f64 = 16_000.0;

fn array() -> MicrophoneArray {
    MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0))
}

/// One second of a wail siren moving past the array — loud enough that most
/// frames emit an event, so the comparison covers azimuths and track lists.
fn siren_audio() -> MultichannelAudio {
    let siren = SirenSynthesizer::new(SirenKind::Wail, FS).synthesize(1.0);
    let scene = SceneBuilder::new(FS)
        .source(SoundSource::new(
            siren,
            Trajectory::linear(
                Position::new(-10.0, 8.0, 1.0),
                Position::new(10.0, 8.0, 1.0),
                20.0,
            ),
        ))
        .array(array())
        .reflection(false)
        .air_absorption(false)
        .build()
        .unwrap();
    Simulator::new(scene).unwrap().run().unwrap()
}

/// Splits `[0, len)` into chunk spans, cycling through `sizes`.
fn chunk_spans(len: usize, sizes: &[usize]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < len {
        let end = (start + sizes[i % sizes.len()]).min(len);
        spans.push((start, end));
        start = end;
        i += 1;
    }
    spans
}

/// Ground truth: a bare session fed the whole recording at once.
fn reference_events(engine: &Engine, audio: &MultichannelAudio) -> Vec<PerceptionEvent> {
    let mut session = engine.open_session();
    let mut sink = VecSink::new();
    session.process_recording_with(audio, &mut sink).unwrap();
    sink.into_events()
}

/// Pushes the recording into `streams` hosted streams chunk-by-chunk and
/// returns each stream's collected events. `reverse_order` flips the
/// per-round stream visiting order to vary the cross-stream interleaving.
fn hosted_events(
    engine: &Engine,
    audio: &MultichannelAudio,
    workers: usize,
    streams: usize,
    sizes: &[usize],
    reverse_order: bool,
    span_capacity: usize,
) -> Vec<Vec<PerceptionEvent>> {
    let host = SessionHost::new(
        engine.clone(),
        HostConfig {
            workers,
            max_sessions: streams,
            span_capacity,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let sinks: Vec<SharedVecSink> = (0..streams).map(|_| SharedVecSink::new()).collect();
    let ids: Vec<StreamId> = sinks
        .iter()
        .map(|sink| host.open_stream(sink.clone()).unwrap())
        .collect();

    let channels = audio.channels();
    let samples = channels[0].len();
    for (start, end) in chunk_spans(samples, sizes) {
        let mut order: Vec<usize> = (0..streams).collect();
        if reverse_order {
            order.reverse();
        }
        for s in order {
            // Keep every ring drained before pushing: aggregate depth stays at
            // ≤ `streams` chunks, far below the shed watermark, and Busy can
            // never fire — this run must exercise only the happy path.
            while host.stream_stats(ids[s]).unwrap().queued > 0 {
                std::thread::sleep(Duration::from_micros(20));
            }
            let views: Vec<&[f64]> = channels.iter().map(|c| &c[start..end]).collect();
            host.push_chunk(ids[s], &views).unwrap();
        }
    }
    assert!(
        host.wait_idle(Duration::from_secs(120)),
        "host never drained"
    );
    assert_eq!(host.metrics().degrade_level, DegradeLevel::Full);
    assert_eq!(host.metrics().sheds, 0, "driver load crossed a watermark");
    for id in ids {
        host.close_stream(id).unwrap();
    }
    sinks.iter().map(|s| s.snapshot()).collect()
}

#[test]
fn per_stream_events_are_bit_identical_across_worker_counts_and_interleavings() {
    let audio = siren_audio();
    let engine = PipelineBuilder::new(FS)
        .array(&array())
        .build_engine()
        .unwrap();
    let reference = reference_events(&engine, &audio);
    assert!(
        reference.iter().any(|e| e.azimuth_deg.is_some()),
        "reference run produced no localized events — the comparison would be vacuous"
    );

    let runs = [
        // (workers, streams, chunk sizes, reversed order, span capacity)
        (1, 3, vec![512], false, 0),
        (2, 3, vec![512], false, 0),
        (8, 3, vec![512], false, 0),
        // Ragged chunk sizes and flipped stream order: the interleaving
        // changes completely, the events must not.
        (8, 3, vec![160, 512, 352], true, 0),
        // Tracing enabled: the observer watches the pipeline but must not
        // perturb it — output stays bit-identical to the untraced reference.
        (2, 3, vec![512], false, 128),
        (8, 3, vec![160, 512, 352], true, 128),
    ];
    for (workers, streams, sizes, reversed, spans) in runs {
        let per_stream = hosted_events(&engine, &audio, workers, streams, &sizes, reversed, spans);
        for (s, events) in per_stream.iter().enumerate() {
            assert_eq!(
                events, &reference,
                "stream {s} diverged from the reference at {workers} workers, \
                 chunk sizes {sizes:?}, reversed={reversed}, span_capacity={spans}"
            );
        }
    }
}
