//! Backpressure and registry contracts of the host: bounded rings reject with
//! typed `Busy` (never block, never drop silently), shape and identity errors
//! are caller bugs surfaced before anything is enqueued, and every accepted
//! chunk is either processed or counted as discarded at close.

use ispot_core::prelude::*;
use ispot_serve::prelude::*;
use std::time::Duration;

const FS: f64 = 16_000.0;

fn engine(channels: usize) -> Engine {
    PipelineBuilder::new(FS)
        .channels(channels)
        .build_engine()
        .unwrap()
}

/// A paused two-stream host: stream A's ring can be filled to the brim while
/// aggregate depth stays below the intake watermark, isolating `Busy`.
fn paused_host() -> (SessionHost, StreamId, StreamId) {
    let host = SessionHost::new(
        engine(1),
        HostConfig {
            workers: 1,
            max_sessions: 2,
            ring_capacity: 4,
            max_chunk_len: 256,
            start_paused: true,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let a = host.open_stream(DiscardSink).unwrap();
    let b = host.open_stream(DiscardSink).unwrap();
    (host, a, b)
}

#[test]
fn full_ring_returns_busy_and_nothing_is_lost() {
    let (host, a, _b) = paused_host();
    let chunk = vec![0.5f64; 256];
    // Fill stream A's ring exactly: 4/8 aggregate = 50%, below every watermark.
    for _ in 0..4 {
        host.push_chunk(a, &[&chunk]).unwrap();
    }
    assert_eq!(host.degrade_level(), DegradeLevel::Full);
    // The 5th chunk comes back typed — not blocked, not dropped, not enqueued.
    assert_eq!(
        host.push_chunk(a, &[&chunk]),
        Err(SubmitError::Busy { queued: 4 })
    );
    assert!(SubmitError::Busy { queued: 4 }.is_transient());
    let stats = host.stream_stats(a).unwrap();
    assert_eq!(stats.queued, 4);
    assert_eq!(stats.chunks_in, 4);
    assert_eq!(stats.chunks_busy, 1);

    // Drain, then the retry goes through: backpressure is recoverable.
    host.resume();
    assert!(host.wait_idle(Duration::from_secs(60)));
    host.push_chunk(a, &[&chunk]).unwrap();
    assert!(host.wait_idle(Duration::from_secs(60)));

    // Full accounting: 5 accepted, 1 rejected, zero silent drops. 5 × 256
    // samples = 1280 < one 2048-sample frame, so no frame completed yet and
    // every accepted sample is sitting in the session's assembler.
    let metrics = host.metrics();
    assert_eq!(metrics.chunks_in, 5);
    assert_eq!(metrics.chunks_busy, 1);
    assert_eq!(metrics.chunks_discarded, 0);
    assert_eq!(metrics.queue_depth, 0);
    let stats = host.stream_stats(a).unwrap();
    assert_eq!(stats.chunks_in, 5);
    assert_eq!(stats.errors, 0);
}

#[test]
fn shape_and_identity_errors_are_typed_and_nothing_is_enqueued() {
    let (host, a, _b) = paused_host();
    let chunk = vec![0.0f64; 256];
    let long = vec![0.0f64; 257];
    let short = vec![0.0f64; 8];

    assert_eq!(
        host.push_chunk(a, &[&chunk, &chunk]),
        Err(SubmitError::ChannelMismatch {
            expected: 1,
            actual: 2
        })
    );
    assert_eq!(
        host.push_chunk(a, &[&long]),
        Err(SubmitError::ChunkTooLong {
            samples: 257,
            max: 256
        })
    );
    // A ragged chunk needs ≥ 2 channels; build a 2-channel host for it.
    let two = SessionHost::new(engine(2), HostConfig::default()).unwrap();
    let t = two.open_stream(DiscardSink).unwrap();
    assert_eq!(
        two.push_chunk(t, &[&chunk, &short]),
        Err(SubmitError::RaggedChunk)
    );
    // None of the rejections enqueued anything.
    assert_eq!(host.stream_stats(a).unwrap().queued, 0);
    assert_eq!(host.metrics().chunks_in, 0);
}

#[test]
fn stale_ids_and_capacity_are_enforced() {
    let host = SessionHost::new(
        engine(1),
        HostConfig {
            max_sessions: 2,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let a = host.open_stream(DiscardSink).unwrap();
    let b = host.open_stream(DiscardSink).unwrap();
    assert!(matches!(
        host.open_stream(DiscardSink),
        Err(ServeError::AtCapacity { max_sessions: 2 })
    ));

    host.close_stream(a).unwrap();
    // The slot is recycled, but the old id's generation is gone forever.
    let c = host.open_stream(DiscardSink).unwrap();
    let chunk = vec![0.0f64; 128];
    assert_eq!(
        host.push_chunk(a, &[&chunk]),
        Err(SubmitError::UnknownStream)
    );
    assert!(matches!(
        host.close_stream(a),
        Err(ServeError::UnknownStream)
    ));
    assert!(matches!(
        host.stream_stats(a),
        Err(ServeError::UnknownStream)
    ));
    // The new occupant is unaffected.
    host.push_chunk(c, &[&chunk]).unwrap();
    assert!(host.wait_idle(Duration::from_secs(60)));
    host.close_stream(b).unwrap();
    host.close_stream(c).unwrap();
    assert_eq!(host.metrics().sessions_open, 0);
}

#[test]
fn closing_a_loaded_stream_counts_discards_and_frees_the_queue() {
    let (host, a, b) = paused_host();
    let chunk = vec![0.25f64; 256];
    for _ in 0..3 {
        host.push_chunk(a, &[&chunk]).unwrap();
    }
    host.push_chunk(b, &[&chunk]).unwrap();
    assert_eq!(host.metrics().queue_depth, 4);

    // Closing A while its chunks are still queued: the discards are counted —
    // never silent — and the aggregate queue depth settles immediately.
    let stats = host.close_stream(a).unwrap();
    assert_eq!(stats.chunks_in, 3);
    let metrics = host.metrics();
    assert_eq!(metrics.chunks_discarded, 3);
    assert_eq!(metrics.queue_depth, 1);

    host.resume();
    assert!(host.wait_idle(Duration::from_secs(60)));
    assert_eq!(host.stream_stats(b).unwrap().chunks_in, 1);
    host.close_stream(b).unwrap();
}

#[test]
fn invalid_configurations_are_rejected_up_front() {
    let cases = [
        HostConfig {
            workers: 0,
            ..HostConfig::default()
        },
        HostConfig {
            max_sessions: 0,
            ..HostConfig::default()
        },
        HostConfig {
            ring_capacity: 0,
            ..HostConfig::default()
        },
        HostConfig {
            max_chunk_len: 0,
            ..HostConfig::default()
        },
        HostConfig {
            policy: LoadPolicy {
                shed_low: 0.9,
                ..LoadPolicy::default()
            },
            ..HostConfig::default()
        },
    ];
    for config in cases {
        assert!(
            matches!(
                SessionHost::new(engine(1), config),
                Err(ServeError::InvalidConfig { .. })
            ),
            "{config:?} accepted"
        );
    }
}

#[test]
fn host_sustains_256_concurrent_streams() {
    let host = SessionHost::new(
        engine(1),
        HostConfig {
            workers: 4,
            max_sessions: 256,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let counter = CountingSink::new();
    let ids: Vec<StreamId> = (0..256)
        .map(|_| host.open_stream(counter.clone()).unwrap())
        .collect();
    assert_eq!(host.metrics().sessions_open, 256);

    // Four 512-sample chunks per stream = exactly one 2048-sample frame each.
    let chunk = vec![0.1f64; 512];
    for _ in 0..4 {
        for id in &ids {
            loop {
                match host.push_chunk(*id, &[&chunk]) {
                    Ok(()) => break,
                    Err(e) if e.is_transient() => std::thread::sleep(Duration::from_micros(50)),
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            }
        }
    }
    assert!(host.wait_idle(Duration::from_secs(120)));
    assert_eq!(counter.frames(), 256);
    let metrics = host.metrics();
    assert_eq!(metrics.frames, 256);
    assert_eq!(metrics.errors, 0);
    for id in ids {
        host.close_stream(id).unwrap();
    }
    assert_eq!(host.metrics().sessions_open, 0);
}
