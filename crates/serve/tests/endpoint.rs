//! Integration test of the observability endpoint: boots a host with tracing
//! on, drives real siren audio through a stream, then speaks actual HTTP to
//! the exporter over a loopback socket — `/metrics` must expose the required
//! families with live values, `/snapshot` must parse as a sane JSON document,
//! and `/events` must deliver at least one SSE perception event.

use ispot_core::prelude::*;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const FS: f64 = 16_000.0;
const CHUNK: usize = 512;

/// Sends one GET and reads the full response (the endpoint always closes the
/// connection, so read-to-EOF terminates).
fn get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split")
        .1
}

/// A host with one stream that has fully processed one second of siren audio.
fn served_host() -> (SessionHost, StreamId, CountingSink) {
    let siren = SirenSynthesizer::new(SirenKind::Wail, FS).synthesize(1.0);
    let channels = [siren.clone(), siren];
    let array = MicrophoneArray::circular(2, 0.2, Position::new(0.0, 0.0, 1.0));
    let engine = PipelineBuilder::new(FS)
        .array(&array)
        .build_engine()
        .unwrap();
    let host = SessionHost::new(
        engine,
        HostConfig {
            workers: 1,
            max_sessions: 2,
            max_chunk_len: CHUNK,
            span_capacity: 128,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let sink = CountingSink::new();
    let id = host.open_stream(sink.clone()).unwrap();
    let samples = channels[0].len();
    let mut start = 0;
    while start + CHUNK <= samples {
        let views: [&[f64]; 2] = [
            &channels[0][start..start + CHUNK],
            &channels[1][start..start + CHUNK],
        ];
        while host.stream_stats(id).unwrap().queued > 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        host.push_chunk(id, &views).unwrap();
        start += CHUNK;
    }
    assert!(
        host.wait_idle(Duration::from_secs(60)),
        "host never drained"
    );
    assert!(sink.events() > 0, "siren drive produced no events");
    (host, id, sink)
}

#[test]
fn endpoint_serves_metrics_snapshot_and_events() {
    let (host, id, sink) = served_host();
    let endpoint = host.serve_http("127.0.0.1:0").expect("bind endpoint");
    let addr = endpoint.addr();

    // --- /metrics: required families present, with live values. ---
    let response = get(addr, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = body_of(&response);
    for family in [
        "ispot_frames_total",
        "ispot_events_total",
        "ispot_chunks_in_total",
        "ispot_sessions_open",
        "ispot_queue_depth",
        "ispot_degrade_level",
        "ispot_event_latency_seconds_bucket",
        "ispot_stage_latency_seconds_bucket",
    ] {
        assert!(body.contains(family), "missing metric family {family}");
    }
    assert!(
        body.contains("# TYPE ispot_frames_total counter"),
        "missing TYPE header"
    );
    let frames_line = body
        .lines()
        .find(|l| l.starts_with("ispot_frames_total "))
        .expect("frames sample line");
    let frames: u64 = frames_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(frames > 0, "exposition shows zero frames");
    assert!(
        body.contains("ispot_sessions_open 1"),
        "gauge not refreshed"
    );
    // Tracing was on, so the per-stage family has real samples.
    assert!(
        body.contains("ispot_stage_latency_seconds_count{stage=\"detection\"}"),
        "stage family missing labeled series"
    );

    // --- /snapshot: sane JSON with live values and the latest event. ---
    let response = get(addr, "/snapshot");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("Content-Type: application/json"));
    let body = body_of(&response);
    assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
    assert!(body.contains("\"schema_version\":1"));
    assert!(body.contains("\"degrade_level\":\"full\""));
    assert!(body.contains("\"stages\":{\"trigger\":"));
    assert!(body.contains("\"slot\":0"), "open stream missing: {body}");
    assert!(
        body.contains("\"latest_event\":{"),
        "latest_event absent despite delivered events: {body}"
    );
    assert!(!body.contains("NaN"), "JSON must not contain NaN: {body}");

    // --- /events: SSE replays buffered perception events. ---
    let response = get(addr, "/events?limit=3");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("Content-Type: text/event-stream"));
    let body = body_of(&response);
    assert!(
        body.matches("event: perception").count() >= 1,
        "SSE feed delivered no perception events: {body}"
    );
    assert!(body.contains("data: {\"slot\":0"), "{body}");

    // --- /events?limit=0 returns immediately with no events. ---
    let response = get(addr, "/events?limit=0");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = body_of(&response);
    assert_eq!(
        body.matches("event:").count(),
        0,
        "limit=0 must deliver nothing: {body}"
    );

    // --- Per-stream spans are exported through the typed API too. ---
    let spans = host.stream_spans(id).unwrap();
    assert!(!spans.is_empty(), "no spans despite tracing");
    assert!(spans.iter().any(|s| s.stage == StageId::Detection));

    // --- Unknown paths and non-GET requests fail cleanly. ---
    assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

    drop(endpoint); // joins the exporter thread
    let stats = host.close_stream(id).unwrap();
    assert_eq!(stats.events, sink.events());
}
