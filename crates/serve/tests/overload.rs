//! Graceful degradation end-to-end: a deterministically overloaded host sheds
//! localization first (events keep their detections, lose their azimuths),
//! then sheds intake with a typed rejection, and restores full fidelity — with
//! hysteresis, without resetting stream state, without panics or deadlocks.
//!
//! Determinism: the host starts paused, so load is built up with the workers
//! idle; watermark crossings happen at exact chunk counts. A single worker
//! then drains the backlog, so the per-chunk degrade decisions follow one
//! known depth trajectory.

use ispot_core::prelude::*;
use ispot_roadsim::engine::{MultichannelAudio, Simulator};
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::time::Duration;

const FS: f64 = 16_000.0;
const CHUNK: usize = 512;

fn array() -> MicrophoneArray {
    MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0))
}

fn siren_audio() -> MultichannelAudio {
    let siren = SirenSynthesizer::new(SirenKind::Wail, FS).synthesize(1.0);
    let scene = SceneBuilder::new(FS)
        .source(SoundSource::new(
            siren,
            Trajectory::fixed(Position::new(14.0, 10.0, 1.0)),
        ))
        .array(array())
        .reflection(false)
        .air_absorption(false)
        .build()
        .unwrap();
    Simulator::new(scene).unwrap().run().unwrap()
}

#[test]
fn overload_sheds_localization_then_intake_and_restores_with_hysteresis() {
    let audio = siren_audio();
    let channels = audio.channels();
    let engine = PipelineBuilder::new(FS)
        .array(&array())
        .build_engine()
        .unwrap();
    // Two streams × ring 8 = aggregate capacity 16 with the default policy:
    // localization sheds at depth 12 (0.75), intake at 15 (0.90); restore at
    // 8 (0.55) and 5 (0.35).
    let host = SessionHost::new(
        engine,
        HostConfig {
            workers: 1,
            max_sessions: 2,
            ring_capacity: 8,
            max_chunk_len: CHUNK,
            start_paused: true,
            ..HostConfig::default()
        },
    )
    .unwrap();
    let sink_a = SharedVecSink::new();
    let sink_b = SharedVecSink::new();
    let a = host.open_stream(sink_a.clone()).unwrap();
    let b = host.open_stream(sink_b.clone()).unwrap();

    let push = |id: StreamId, i: usize| {
        let start = (i * CHUNK) % (channels[0].len() - CHUNK);
        let views: Vec<&[f64]> = channels.iter().map(|c| &c[start..start + CHUNK]).collect();
        host.push_chunk(id, &views)
    };

    // Build the backlog while paused: 8 chunks to A, 7 to B → depth 15.
    for i in 0..8 {
        push(a, i).unwrap();
    }
    for i in 0..7 {
        push(b, i).unwrap();
    }
    // Watermarks crossed at exact counts: 12 → ShedLocalization, 15 → ShedIntake.
    assert_eq!(host.degrade_level(), DegradeLevel::ShedIntake);
    assert_eq!(host.metrics().sheds, 2);
    // Past the intake watermark every producer gets the typed fleet-wide
    // rejection — audio is refused loudly, never absorbed and dropped.
    assert_eq!(push(b, 7), Err(SubmitError::Shed));
    assert_eq!(host.metrics().chunks_shed, 1);

    // One worker drains the backlog: depth 15 → 0 crosses both restore
    // watermarks (8 then 5), ending at full fidelity.
    host.resume();
    assert!(host.wait_idle(Duration::from_secs(120)), "drain deadlocked");
    let metrics = host.metrics();
    assert_eq!(metrics.degrade_level, DegradeLevel::Full);
    assert_eq!(metrics.restores, 2);
    assert_eq!(metrics.chunks_in, 15);
    assert_eq!(metrics.chunks_discarded, 0);
    assert!(metrics.shed_frames > 0, "no frame ran in the shed window");

    // Detection survived the shed: events fired during overload, carrying
    // class and confidence but no azimuth (stream A drained first, entirely
    // above the restore watermark).
    let events_a = sink_a.snapshot();
    assert!(!events_a.is_empty(), "shed stream A emitted no events");
    assert!(
        events_a.iter().all(|e| e.confidence > 0.0),
        "shed events lost their detections"
    );
    assert!(
        events_a.iter().any(|e| e.azimuth_deg.is_none()),
        "no event shows localization shed"
    );
    assert!(host.stream_stats(a).unwrap().shed_frames > 0);

    // Stream B drained last: its tail crossed below the restore watermarks, so
    // its final frames ran at full fidelity again — restoration is in-band,
    // not just a counter.
    let events_b = sink_b.snapshot();
    assert!(
        events_b.last().is_some_and(|e| e.azimuth_deg.is_some()),
        "stream B's tail should have been processed at full fidelity: {:?}",
        events_b.last()
    );

    // After the storm: a fresh push is accepted and localized — intake reopened
    // and the stream kept its state (frame indices keep counting up).
    let last_index_a = events_a.last().unwrap().frame_index;
    for i in 8..12 {
        push(a, i).unwrap();
    }
    assert!(host.wait_idle(Duration::from_secs(120)));
    let after = sink_a.snapshot();
    let fresh: Vec<_> = after
        .iter()
        .filter(|e| e.frame_index > last_index_a)
        .collect();
    assert!(!fresh.is_empty(), "no events after restore");
    assert!(
        fresh.iter().all(|e| e.azimuth_deg.is_some()),
        "post-restore events must be localized again"
    );
    assert!(!host.stream_stats(a).unwrap().localization_shed);

    host.close_stream(a).unwrap();
    host.close_stream(b).unwrap();
    assert_eq!(host.metrics().errors, 0);
}
