//! Criterion bench for experiment E6: end-to-end frame processing latency of the
//! perception pipeline (detection-only vs detection + localization), plus the
//! streaming-vs-batch comparison backing the zero-allocation streaming claim.

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_bench::{simulate_static_source, SAMPLE_RATE};
use ispot_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let (audio, array) = simulate_static_source(45.0, 20.0, 4, 8192, 9);
    let mut detection_only = PipelineBuilder::new(SAMPLE_RATE)
        .channels(4)
        .build()
        .unwrap();
    let mut full = PipelineBuilder::new(SAMPLE_RATE)
        .array(&array)
        .build()
        .unwrap();
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();

    let mut group = c.benchmark_group("pipeline_frame");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("detection_only", |b| {
        b.iter(|| black_box(detection_only.process_frame(black_box(&frame), 0).unwrap()))
    });
    group.bench_function("detection_and_localization", |b| {
        b.iter(|| black_box(full.process_frame(black_box(&frame), 0).unwrap()))
    });
    group.finish();
}

/// Streaming (`push_chunk_into` with capture-sized chunks) against batch
/// (`process_recording`) over the same recording. The two process identical frames
/// through identical stages, so any gap between them is pure framing overhead; with
/// the preallocated assembler and recycled frame buffers the streaming path should
/// sit within noise of batch — this bench is the regression guard for the
/// zero-per-frame-allocation property of the mixdown/framing path.
fn bench_streaming_vs_batch(c: &mut Criterion) {
    let (audio, _array) = simulate_static_source(30.0, 20.0, 2, 32_768, 11);
    let engine = PipelineBuilder::new(SAMPLE_RATE)
        .channels(2)
        .build_engine()
        .unwrap();
    let channels: Vec<&[f64]> = audio.channels().iter().map(|c| c.as_slice()).collect();
    let len = audio.len();

    let mut group = c.benchmark_group("pipeline_streaming");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("batch_process_recording", |b| {
        let mut pipeline = engine.open_session();
        b.iter(|| black_box(pipeline.process_recording(black_box(&audio)).unwrap()))
    });
    // 160 samples = one 10 ms capture block at 16 kHz, the awkward driver-sized
    // chunking the FrameAssembler exists to absorb.
    for chunk_len in [160usize, 1024, 4096] {
        group.bench_function(format!("push_chunk_{chunk_len}"), |b| {
            let mut pipeline = engine.open_session();
            // A fixed-size sink: the steady-state streaming path allocates
            // nothing, so the bench measures pure analysis + framing cost.
            let mut sink = AlertCounter::new();
            b.iter(|| {
                pipeline.reset_streaming();
                let mut frames = 0;
                let mut start = 0;
                while start < len {
                    let end = (start + chunk_len).min(len);
                    let chunk = [&channels[0][start..end], &channels[1][start..end]];
                    frames += pipeline
                        .push_chunk_with(black_box(&chunk), &mut sink)
                        .unwrap();
                    start = end;
                }
                black_box(frames)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_streaming_vs_batch);
criterion_main!(benches);
