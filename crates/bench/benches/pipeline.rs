//! Criterion bench for experiment E6: end-to-end frame processing latency of the
//! perception pipeline (detection-only vs detection + localization).

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_bench::{simulate_static_source, SAMPLE_RATE};
use ispot_core::pipeline::{AcousticPerceptionPipeline, PipelineConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let (audio, array) = simulate_static_source(45.0, 20.0, 4, 8192, 9);
    let config = PipelineConfig::default();
    let mut detection_only =
        AcousticPerceptionPipeline::new(config, SAMPLE_RATE, 4).unwrap();
    let mut full = AcousticPerceptionPipeline::with_array(config, SAMPLE_RATE, &array).unwrap();
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();

    let mut group = c.benchmark_group("pipeline_frame");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("detection_only", |b| {
        b.iter(|| black_box(detection_only.process_frame(black_box(&frame), 0).unwrap()))
    });
    group.bench_function("detection_and_localization", |b| {
        b.iter(|| black_box(full.process_frame(black_box(&frame), 0).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
