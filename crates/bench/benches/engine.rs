//! Criterion bench for the multi-session engine: per-session setup cost versus
//! building full pipelines.
//!
//! The session/engine redesign claims that the marginal cost of another
//! concurrent stream is scratch-only — the detector templates and the SRP-PHAT
//! steering operator (the expensive constructions) are built once per engine and
//! shared behind `Arc`s. Compare `engine_build` / `full_pipeline_build` with
//! `open_session`: opening the 2nd…Nth session should cost well under 20 % of a
//! full pipeline construction (in practice under 1 %).

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_bench::SAMPLE_RATE;
use ispot_core::prelude::*;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use std::hint::black_box;
use std::time::Duration;

fn bench_engine_sessions(c: &mut Criterion) {
    let array = MicrophoneArray::circular(6, 0.2, Position::new(0.0, 0.0, 1.0));

    let mut group = c.benchmark_group("engine_sessions");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    // Baseline: what every new stream used to cost — a full pipeline build
    // (detector template synthesis + steering-tap precompute + scratch).
    group.bench_function("full_pipeline_build", |b| {
        b.iter(|| {
            black_box(
                PipelineBuilder::new(SAMPLE_RATE)
                    .array(black_box(&array))
                    .build()
                    .unwrap(),
            )
        })
    });

    // The shared build, paid once per deployment.
    group.bench_function("engine_build", |b| {
        b.iter(|| {
            black_box(
                PipelineBuilder::new(SAMPLE_RATE)
                    .array(black_box(&array))
                    .build_engine()
                    .unwrap(),
            )
        })
    });

    // The marginal stream: scratch-only.
    let engine = PipelineBuilder::new(SAMPLE_RATE)
        .array(&array)
        .build_engine()
        .unwrap();
    group.bench_function("open_session", |b| {
        b.iter(|| black_box(engine.open_session()))
    });

    // Eight concurrent streams the way a multi-array deployment would open them.
    group.bench_function("open_8_sessions", |b| {
        b.iter(|| {
            let sessions: Vec<Session> = (0..8).map(|_| engine.open_session()).collect();
            black_box(sessions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_sessions);
criterion_main!(benches);
