//! Criterion bench for the DSP substrate kernels that dominate the front-end cost
//! (supporting the operator-level cost model of experiments E5–E7).

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_dsp::fft::Fft;
use ispot_dsp::generator::{NoiseKind, NoiseSource};
use ispot_features::gcc::GccPhat;
use ispot_features::mfcc::{MfccConfig, MfccExtractor};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let signal: Vec<f64> = NoiseSource::new(NoiseKind::White, 1).take(16_384).collect();
    let mut group = c.benchmark_group("dsp_kernels");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(4));

    let fft = Fft::new(2048);
    group.bench_function("fft_2048_real", |b| {
        b.iter(|| black_box(fft.forward_real(black_box(&signal[..2048])).unwrap()))
    });

    let gcc = GccPhat::new(2048).unwrap();
    let x = &signal[..2048];
    let y = &signal[100..2148];
    group.bench_function("gcc_phat_2048", |b| {
        b.iter(|| black_box(gcc.correlate(black_box(x), black_box(y), 32).unwrap()))
    });

    let mfcc = MfccExtractor::new(MfccConfig::default(), 16_000.0).unwrap();
    group.bench_function("mfcc_1s_clip", |b| {
        b.iter(|| black_box(mfcc.compute(black_box(&signal)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
