//! Criterion bench for experiment E4: conventional vs low-complexity SRP-PHAT.

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_bench::{simulate_static_source, SAMPLE_RATE};
use ispot_ssl::srp_fast::{SrpPhatFast, SrpSearchConfig};
use ispot_ssl::srp_phat::{SrpConfig, SrpMap, SrpPhat};
use std::hint::black_box;
use std::time::Duration;

fn bench_srp(c: &mut Criterion) {
    let (audio, array) = simulate_static_source(60.0, 20.0, 6, 8192, 3);
    let config = SrpConfig::default();
    let conventional = SrpPhat::new(config, &array, SAMPLE_RATE).unwrap();
    let fast = SrpPhatFast::new(config, &array, SAMPLE_RATE).unwrap();
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();

    let mut group = c.benchmark_group("srp_phat_map");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("conventional_frequency_steering", |b| {
        b.iter(|| black_box(conventional.compute_map(black_box(&frame)).unwrap()))
    });
    group.bench_function("low_complexity_lag_domain", |b| {
        b.iter(|| black_box(fast.compute_map(black_box(&frame)).unwrap()))
    });
    // The real hot path: scratch and output map reused across frames, precomputed
    // f32 steering taps, SIMD kernels, zero per-frame heap allocation.
    group.bench_function("low_complexity_scratch_reuse", |b| {
        let mut scratch = fast.make_scratch();
        let mut map = SrpMap::default();
        b.iter(|| {
            fast.compute_map_into(black_box(&frame), &mut scratch, &mut map)
                .unwrap();
            black_box(map.power()[0])
        })
    });
    // The retained scalar f64 path (full-band rebuild + iFFT per pair) the SIMD
    // pipeline is numerically pinned against.
    group.bench_function("scalar_reference_scratch_reuse", |b| {
        let mut scratch = fast.make_scratch();
        let mut map = SrpMap::default();
        b.iter(|| {
            fast.compute_map_reference_into(black_box(&frame), &mut scratch, &mut map)
                .unwrap();
            black_box(map.power()[0])
        })
    });
    // Coarse-to-fine: decimated steering pass, NMS on the coarse map, exact
    // refinement only around the surviving peaks.
    group.bench_function("hierarchical_scratch_reuse", |b| {
        let hier =
            SrpPhatFast::with_search(config, SrpSearchConfig::hierarchical(), &array, SAMPLE_RATE)
                .unwrap();
        let mut scratch = hier.make_scratch();
        let mut map = SrpMap::default();
        b.iter(|| {
            hier.compute_map_into(black_box(&frame), &mut scratch, &mut map)
                .unwrap();
            black_box(map.power()[0])
        })
    });
    group.bench_function("conventional_scratch_reuse", |b| {
        let mut scratch = conventional.make_scratch();
        let mut map = SrpMap::default();
        b.iter(|| {
            conventional
                .compute_map_into(black_box(&frame), &mut scratch, &mut map)
                .unwrap();
            black_box(map.power()[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_srp);
criterion_main!(benches);
