//! Criterion bench for the multi-source render path: wall-clock cost of
//! `Simulator::run` as the source count grows.
//!
//! Sources render in parallel (one per thread, chunked over the available
//! cores) with per-source delay lines, filters and scratch, so wall-clock
//! should grow **sub-linearly** in the source count on a multi-core machine:
//! doubling the sources from 1 to 2 or 2 to 4 should cost well under 2x as
//! long as there are idle cores.

use criterion::{criterion_group, criterion_main, Criterion};
use ispot_bench::SAMPLE_RATE;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::{Scene, SceneBuilder};
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use std::hint::black_box;
use std::time::Duration;

/// Builds a 0.5 s scene with `num_sources` noise sources on staggered lanes.
fn scene_with_sources(num_sources: usize) -> Scene {
    let samples = (SAMPLE_RATE * 0.5) as usize;
    let sources = (0..num_sources).map(|k| {
        let signal: Vec<f64> = ispot_dsp::generator::NoiseSource::new(
            ispot_dsp::generator::NoiseKind::Pink,
            k as u64 + 1,
        )
        .take(samples)
        .collect();
        let lane = -8.0 + 3.0 * k as f64;
        SoundSource::new(
            signal,
            Trajectory::linear(
                Position::new(-20.0, lane, 1.0),
                Position::new(20.0, lane, 1.0),
                15.0,
            ),
        )
    });
    SceneBuilder::new(SAMPLE_RATE)
        .sources(sources)
        .array(MicrophoneArray::circular(
            6,
            0.2,
            Position::new(0.0, 0.0, 1.0),
        ))
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid bench scene")
}

fn bench_multi_source_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_source_render");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for num_sources in [1usize, 2, 4, 8] {
        let sim = Simulator::new(scene_with_sources(num_sources)).expect("valid simulator");
        group.bench_function(format!("sources_{num_sources}"), |b| {
            b.iter(|| black_box(sim.run().expect("render succeeds")))
        });
    }
    // Single-thread baseline at the largest size: the gap between this and
    // `sources_8` is the parallel speedup on this machine (none on 1 core).
    let sim = Simulator::new(scene_with_sources(8)).expect("valid simulator");
    group.bench_function("sources_8_single_thread", |b| {
        b.iter(|| black_box(sim.run_with_threads(1).expect("render succeeds")))
    });
    group.finish();
}

criterion_group!(benches, bench_multi_source_render);
criterion_main!(benches);
