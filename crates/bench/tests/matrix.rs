//! Property tests for the scenario-matrix generator: the same master seed must
//! reproduce the bit-identical scene population AND the bit-identical rendered
//! audio, for any seed. The aggregate report persists bare seeds, so this is
//! the contract that makes every matrix scene regenerable after the fact.

use ispot_bench::matrix::{generate, MatrixConfig, Regime};
use ispot_roadsim::engine::Simulator;
use proptest::prelude::*;

/// Small but fully featured population: one scene per regime, short render.
fn tiny(seed: u64) -> MatrixConfig {
    MatrixConfig {
        seed,
        num_scenes: 6,
        sample_rate: 8_000.0,
        duration_s: 0.25,
    }
}

proptest! {

    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_generates_bit_identical_scenes(seed in 0u64..u64::MAX) {
        let a = generate(&tiny(seed)).unwrap();
        let b = generate(&tiny(seed)).unwrap();
        // f64's Debug formatting is roundtrip-exact, so equal Debug strings
        // mean equal bits in every position, gain, signal sample and seed.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn same_seed_renders_bit_identical_audio(seed in 0u64..u64::MAX, pick in 0usize..6) {
        let a = generate(&tiny(seed)).unwrap();
        let b = generate(&tiny(seed)).unwrap();
        let ra = Simulator::new(a[pick].scene.clone()).unwrap().run().unwrap();
        let rb = Simulator::new(b[pick].scene.clone()).unwrap().run().unwrap();
        prop_assert_eq!(ra.num_channels(), rb.num_channels());
        for ch in 0..ra.num_channels() {
            prop_assert_eq!(ra.channel(ch), rb.channel(ch));
        }
    }
}

#[test]
fn smoke_population_covers_every_regime_with_unique_names() {
    let cfg = MatrixConfig {
        sample_rate: 8_000.0,
        duration_s: 0.25,
        ..MatrixConfig::smoke()
    };
    let scenes = generate(&cfg).unwrap();
    assert_eq!(scenes.len(), cfg.num_scenes);
    for regime in Regime::ALL {
        let count = scenes.iter().filter(|s| s.regime == regime).count();
        assert_eq!(count, cfg.num_scenes / 6, "{}", regime.label());
    }
    let mut names: Vec<&str> = scenes.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), scenes.len(), "names must be unique");
    // Environmental features actually land where the regime promises them.
    for s in &scenes {
        match s.regime {
            Regime::Canyon => assert!(s.scene.canyon.is_some(), "{}", s.name),
            Regime::Occluded => assert!(!s.scene.occluders.is_empty(), "{}", s.name),
            _ => {}
        }
    }
}
