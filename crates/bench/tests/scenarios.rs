//! End-to-end acceptance tests for the scenario evaluation harness: render a
//! multi-source road scene, run the full perception session on the array audio
//! and hold the scored metrics to the quality bar of the paper-style conditions.

use ispot_bench::scenarios;

/// The headline scenario: a siren passing the array amid traffic maskers must be
/// detected nearly everywhere (frame-level event F1 >= 0.9) and localized to
/// within 5 degrees on average by the tracked azimuth.
#[test]
fn siren_pass_by_meets_detection_and_doa_targets() {
    let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 4.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(report.num_frames > 50, "frames {}", report.num_frames);
    assert!(
        report.event_f1 >= 0.9,
        "pass-by F1 {:.3} below target (precision {:.3}, recall {:.3})",
        report.event_f1,
        report.event_precision,
        report.event_recall
    );
    let doa = report
        .mean_doa_error_deg
        .expect("pass-by events carry tracked bearings");
    assert!(
        doa <= 5.0,
        "mean tracked DoA error {doa:.1} deg above target"
    );
    assert!(report.doa_scored > 30, "scored {}", report.doa_scored);
}

/// Park mode: the trigger must gate the idle stretches (low duty cycle) while
/// still waking for — and detecting — the door-slam transient.
#[test]
fn park_door_slam_wakes_trigger_and_detects() {
    let scenario = scenarios::park_door_slam(16_000.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(
        report.duty_cycle <= 0.3,
        "trigger barely gates: duty {:.2}",
        report.duty_cycle
    );
    assert!(
        report.event_f1 >= 0.8,
        "slam not detected: F1 {:.3}",
        report.event_f1
    );
}

/// The multi-target acceptance scene: two emergency vehicles whose bearings
/// sweep towards each other and cross must resolve into exactly two confirmed
/// tracks that keep their identities through the crossing — no swap — with the
/// mean per-track bearing error inside the 5-degree budget.
#[test]
fn crossing_vehicles_resolves_two_tracks_with_no_identity_swap() {
    let scenario = scenarios::crossing_vehicles(16_000.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(report.event_f1 >= 0.9, "F1 {:.3}", report.event_f1);
    assert_eq!(
        report.confirmed_tracks, 2,
        "expected exactly the two vehicles as confirmed tracks, got {}",
        report.confirmed_tracks
    );
    assert_eq!(
        report.identity_swaps, 0,
        "tracks swapped vehicles {} time(s) through the bearing crossing",
        report.identity_swaps
    );
    let mean = report.mean_track_error_deg.expect("tracks were scored");
    assert!(mean <= 5.0, "mean per-track DoA error {mean:.1} deg");
    let worst = report.worst_track_error_deg.expect("tracks were scored");
    assert!(worst <= 10.0, "worst per-track DoA error {worst:.1} deg");
    // The set-level view agrees: OSPA stays well under the 30-degree cutoff
    // that a missing or spurious track would be charged.
    let ospa = report.mean_ospa_deg.expect("OSPA scored");
    assert!(ospa <= 15.0, "mean OSPA {ospa:.1} deg");
}

/// The occlusion acceptance scene: a distant siren approaching from directly
/// behind a much closer stationary siren masker. The tracker must hold one
/// identity on each — two confirmed tracks, zero swaps.
#[test]
fn approaching_behind_masker_holds_two_identities() {
    let scenario = scenarios::approaching_behind_masker(16_000.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert_eq!(
        report.confirmed_tracks, 2,
        "expected the approaching siren and the masker as confirmed tracks, got {}",
        report.confirmed_tracks
    );
    assert_eq!(
        report.identity_swaps, 0,
        "{} swap(s)",
        report.identity_swaps
    );
    let mean = report.mean_track_error_deg.expect("tracks were scored");
    assert!(mean <= 5.0, "mean per-track DoA error {mean:.1} deg");
}

/// The short smoke configuration used by CI runs end to end.
#[test]
fn smoke_scene_runs_end_to_end() {
    let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 1.5);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(report.num_frames > 10);
    assert!(report.num_events > 0, "no events in the smoke scene");
}

/// Perf pin: the full per-frame pipeline (SED + f32 SIMD SRP with hierarchical
/// search + tracking) must stay comfortably real-time. Measured ~0.32 ms/frame
/// on the reference host; the bound leaves ~3x headroom for machine-speed
/// fluctuation while still catching a regression back towards the ~1.3 ms/frame
/// the pre-SIMD exhaustive pipeline cost. Release builds only — debug codegen
/// is an order of magnitude slower and says nothing about the shipped kernels.
#[test]
#[cfg_attr(debug_assertions, ignore = "perf pin is only meaningful in release")]
fn pass_by_frame_latency_stays_under_budget() {
    let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 4.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(
        report.mean_frame_latency_ms <= 1.0,
        "mean per-frame latency {:.3} ms above the 1.0 ms budget",
        report.mean_frame_latency_ms
    );
}
