//! End-to-end acceptance tests for the scenario evaluation harness: render a
//! multi-source road scene, run the full perception session on the array audio
//! and hold the scored metrics to the quality bar of the paper-style conditions.

use ispot_bench::scenarios;

/// The headline scenario: a siren passing the array amid traffic maskers must be
/// detected nearly everywhere (frame-level event F1 >= 0.9) and localized to
/// within 5 degrees on average by the tracked azimuth.
#[test]
fn siren_pass_by_meets_detection_and_doa_targets() {
    let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 4.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(report.num_frames > 50, "frames {}", report.num_frames);
    assert!(
        report.event_f1 >= 0.9,
        "pass-by F1 {:.3} below target (precision {:.3}, recall {:.3})",
        report.event_f1,
        report.event_precision,
        report.event_recall
    );
    let doa = report
        .mean_doa_error_deg
        .expect("pass-by events carry tracked bearings");
    assert!(
        doa <= 5.0,
        "mean tracked DoA error {doa:.1} deg above target"
    );
    assert!(report.doa_scored > 30, "scored {}", report.doa_scored);
}

/// Park mode: the trigger must gate the idle stretches (low duty cycle) while
/// still waking for — and detecting — the door-slam transient.
#[test]
fn park_door_slam_wakes_trigger_and_detects() {
    let scenario = scenarios::park_door_slam(16_000.0);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(
        report.duty_cycle <= 0.3,
        "trigger barely gates: duty {:.2}",
        report.duty_cycle
    );
    assert!(
        report.event_f1 >= 0.8,
        "slam not detected: F1 {:.3}",
        report.event_f1
    );
}

/// The short smoke configuration used by CI runs end to end.
#[test]
fn smoke_scene_runs_end_to_end() {
    let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 1.5);
    let report = scenarios::evaluate(&scenario).expect("evaluation succeeds");
    assert!(report.num_frames > 10);
    assert!(report.num_events > 0, "no events in the smoke scene");
}
