//! Experiment E1 — physical validation of the road-acoustics simulator
//! (paper Fig. 2 / Fig. 3: variable-length delay lines, spreading gains, asphalt
//! reflection).
//!
//! Checks three physical properties against analytic ground truth: the Doppler shift of
//! a pass-by, the 1/r spherical-spreading law, and the image-source geometry of the
//! road reflection.

use ispot_bench::{print_header, print_row, SAMPLE_RATE};
use ispot_dsp::generator::Sine;
use ispot_dsp::level::rms;
use ispot_roadsim::doppler::observed_frequency;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::{reflected_path_length, Position};
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;

fn estimate_frequency(signal: &[f64], fs: f64) -> f64 {
    let mut crossings = 0;
    for w in signal.windows(2) {
        if w[0] <= 0.0 && w[1] > 0.0 {
            crossings += 1;
        }
    }
    crossings as f64 * fs / signal.len() as f64
}

fn doppler_check() {
    let fs = SAMPLE_RATE;
    let f0 = 440.0;
    let speed = 25.0;
    let tone: Vec<f64> = Sine::new(f0, fs).take(32_000).collect();
    let trajectory = Trajectory::linear(
        Position::new(-200.0, 0.0, 1.0),
        Position::new(0.0, 0.0, 1.0),
        speed,
    );
    let mic = Position::new(0.0, 0.0, 1.0);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(tone, trajectory.clone()))
        .array(MicrophoneArray::custom(vec![mic]).unwrap())
        .reflection(false)
        .air_absorption(false)
        .build()
        .unwrap();
    let audio = Simulator::new(scene).unwrap().run().unwrap();
    let seg = &audio.channel(0)[16_000..32_000];
    let measured = estimate_frequency(seg, fs);
    let analytic = observed_frequency(&trajectory, mic, 1.5, 343.0, f0);
    println!("\n[E1.a] Doppler shift of an approaching source ({speed} m/s, {f0} Hz tone)");
    print_row("analytic observed frequency (Hz)", format!("{analytic:.1}"));
    print_row(
        "simulator observed frequency (Hz)",
        format!("{measured:.1}"),
    );
    print_row(
        "relative error",
        format!("{:.2} %", 100.0 * (measured - analytic).abs() / analytic),
    );
}

fn spreading_check() {
    let fs = SAMPLE_RATE;
    println!("\n[E1.b] Spherical spreading (1/r law)");
    let mut previous: Option<f64> = None;
    for distance in [5.0, 10.0, 20.0, 40.0] {
        let tone: Vec<f64> = Sine::new(500.0, fs).take(8000).collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::fixed(Position::new(distance, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let level = rms(&audio.channel(0)[4000..]);
        let ratio = previous.map(|p: f64| p / level).unwrap_or(f64::NAN);
        print_row(
            &format!("distance {distance:>4.0} m: rms"),
            format!("{level:.5}   ratio to previous: {ratio:.2} (expected 2.00)"),
        );
        previous = Some(level);
    }
}

fn reflection_check() {
    println!("\n[E1.c] Road-reflection geometry (image source, Fig. 3)");
    let source = Position::new(-12.0, 4.0, 1.4);
    let mic = Position::new(0.0, 0.0, 1.0);
    let direct = source.distance_to(mic);
    let reflected = reflected_path_length(source, mic);
    let c = 343.0;
    print_row("direct path d1 (m)", format!("{direct:.3}"));
    print_row("reflected path d2+d3 (m)", format!("{reflected:.3}"));
    print_row(
        "extra delay of the reflection (ms)",
        format!("{:.3}", (reflected - direct) / c * 1e3),
    );
    print_row(
        "reflection arrives after the direct sound",
        reflected > direct,
    );
}

fn main() {
    print_header(
        "E1 - pyroadacoustics-equivalent simulator validation",
        "Fig. 2/3: delay-line propagation reproduces Doppler, 1/r spreading and the road reflection",
    );
    doppler_check();
    spreading_check();
    reflection_check();
}
