//! Ablation A1 — delay-line interpolation quality versus Doppler accuracy.
//!
//! DESIGN.md calls out the fractional-delay interpolation method as the key design
//! choice of the propagation model (pyroadacoustics uses high-order interpolation for
//! exactly this reason). This ablation measures the observed-frequency error of a fast
//! pass-by for every interpolation kind, plus the cost of the asphalt/air FIR length on
//! the rendered spectrum, quantifying the accuracy/complexity trade-off that feeds the
//! co-design loop.

use ispot_bench::{print_header, print_row, SAMPLE_RATE};
use ispot_dsp::generator::Sine;
use ispot_dsp::interp::Interpolator;
use ispot_roadsim::doppler::observed_frequency;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;

/// Renders a fast head-on approach with the given interpolation kind and returns the
/// signal-to-distortion ratio (dB): energy near the analytically expected
/// Doppler-shifted tone (and its synthesis harmonics are absent here) versus everything
/// else. Coarser interpolation produces "zipper" distortion that spreads energy across
/// the spectrum.
fn doppler_sdr_db(interpolation: Interpolator) -> f64 {
    let fs = SAMPLE_RATE;
    let f0 = 880.0;
    let speed = 30.0;
    let tone: Vec<f64> = Sine::new(f0, fs).take(24_000).collect();
    let trajectory = Trajectory::linear(
        Position::new(-250.0, 0.0, 1.0),
        Position::new(0.0, 0.0, 1.0),
        speed,
    );
    let mic = Position::new(0.0, 0.0, 1.0);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(tone, trajectory.clone()))
        .array(MicrophoneArray::custom(vec![mic]).unwrap())
        .reflection(false)
        .air_absorption(false)
        .interpolation(interpolation)
        .build()
        .unwrap();
    let audio = Simulator::new(scene).unwrap().run().unwrap();
    let n = 8192;
    let seg = &audio.channel(0)[14_000..14_000 + n];
    let expected = observed_frequency(&trajectory, mic, 14_500.0 / fs, 343.0, f0);
    let spectrum = ispot_dsp::fft::Fft::new(n).forward_real(seg).unwrap();
    let expected_bin = (expected / fs * n as f64).round() as usize;
    let mut signal_energy = 0.0;
    let mut total_energy = 0.0;
    for (k, c) in spectrum.iter().take(n / 2).enumerate() {
        let e = c.norm_sqr();
        total_energy += e;
        if (k as isize - expected_bin as isize).abs() <= 4 {
            signal_energy += e;
        }
    }
    10.0 * (signal_energy / (total_energy - signal_energy).max(1e-15)).log10()
}

fn main() {
    print_header(
        "A1 - ablation: delay-line interpolation and FIR length",
        "design-choice ablation backing the propagation model and the co-design cost trade-offs",
    );
    println!("\n[interpolation kind vs Doppler rendering quality, 880 Hz tone, 30 m/s approach]");
    println!("  (signal-to-distortion ratio of the received tone; higher is better)");
    for (name, kind, cost) in [
        ("nearest (zero-order)", Interpolator::Nearest, "1 read"),
        ("linear", Interpolator::Linear, "2 reads"),
        ("lagrange-3", Interpolator::Lagrange3, "4 reads"),
        ("windowed sinc (8 taps)", Interpolator::Sinc8, "8 reads"),
    ] {
        let sdr = doppler_sdr_db(kind);
        print_row(&format!("{name:<24} ({cost})"), format!("{sdr:.1} dB SDR"));
    }

    println!("\n[air-absorption FIR length vs response accuracy at 200 m]");
    let atmosphere = ispot_roadsim::atmosphere::Atmosphere::default();
    let fs = SAMPLE_RATE;
    for taps in [17usize, 33, 65, 129] {
        let filter = atmosphere.absorption_filter(200.0, fs, taps).unwrap();
        // Compare the filter response against the analytic absorption at a few probes.
        let mut worst: f64 = 0.0;
        for freq in [500.0, 2000.0, 4000.0, 7000.0] {
            let target = 10f64.powf(-atmosphere.absorption_db_per_m(freq) * 200.0 / 20.0);
            let (actual, _) = filter.frequency_response(freq, fs);
            worst = worst.max((actual - target).abs());
        }
        print_row(
            &format!("{taps:>4} taps"),
            format!("worst-case magnitude error {worst:.3}"),
        );
    }
    println!("\n  (longer filters buy accuracy at linear cost per sample - the DSP-side");
    println!("   counterpart of the network-compression trade-off explored in E5/E7)");
}
