//! Experiment E11 — the procedural scenario matrix.
//!
//! Generates a seeded population of road scenes (clean / masked / street-canyon
//! / occluded / low-SNR / no-event regimes, see `ispot_bench::matrix`), scores
//! every scene with the full perception session and reports aggregate
//! distributions: per-regime mean / median / 10th-percentile F1, false-alarm
//! rate on the no-event stratum, OSPA, identity swaps and the worst-k scenes.
//!
//! Flags:
//!
//! * `--smoke` — score the 18-scene smoke population instead of the full 120;
//! * `--seed N` — override the master seed (decimal);
//! * `--json` — additionally write `BENCH_matrix.json` (deterministic: the
//!   artifact is byte-identical across runs of the same seed);
//! * `--gate` — check the aggregates against the CI quality gate and exit
//!   non-zero on failure;
//! * `--broken` — score under a deliberately broken pipeline configuration
//!   (near-1.0 confidence threshold). CI runs `--broken --gate` and asserts
//!   the run *fails* — the inverted check that proves the gate trips when
//!   quality collapses.

use ispot_bench::matrix::{evaluate_matrix_with, MatrixConfig, MatrixGate};
use ispot_bench::scenarios::EvalOptions;
use ispot_bench::{print_header, print_row};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let mut cfg = if has("--smoke") {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::full()
    };
    if let Some(pos) = args.iter().position(|a| a == "--seed") {
        let value = args
            .get(pos + 1)
            .ok_or("--seed requires a value")?
            .parse::<u64>()?;
        cfg.seed = value;
    }
    let options = EvalOptions {
        // A detector that trusts nothing: every scene scores F1 = 0, which the
        // gate must reject.
        confidence_threshold: has("--broken").then_some(0.999),
    };

    print_header(
        "E11 - procedural scenario matrix (seeded population evaluation)",
        "aggregate quality over sampled regimes, not six hand-picked scenes",
    );
    print_row("scenes", cfg.num_scenes);
    print_row("seed", cfg.seed);
    print_row(
        "duration_s / fs",
        format!("{} / {}", cfg.duration_s, cfg.sample_rate),
    );
    if options.confidence_threshold.is_some() {
        print_row("pipeline", "BROKEN (confidence threshold 0.999)");
    }
    println!();

    let started = std::time::Instant::now();
    let report = evaluate_matrix_with(&cfg, options)?;
    println!("{}", report.table());
    print_row("mean event F1", format!("{:.3}", report.mean_event_f1));
    print_row(
        "no-event false-alarm rate",
        format!("{:.3}", report.no_event_false_alarm_rate),
    );
    print_row(
        "total wall clock",
        format!("{:.1}s", started.elapsed().as_secs_f64()),
    );
    println!("\n  worst scenes (by F1):");
    for s in &report.worst_scenes {
        println!(
            "    {:<26} F1 {:.3}  FA {:.3}  seed {}",
            s.name, s.scores.event_f1, s.scores.false_alarm_rate, s.seed
        );
    }

    if has("--json") {
        let path = "BENCH_matrix.json";
        std::fs::write(path, report.to_json())?;
        println!("\nwrote {path} ({} scenes)", report.num_scenes);
    }

    if has("--gate") {
        let failures = MatrixGate::default().check(&report);
        if failures.is_empty() {
            println!("\ngate: PASS");
        } else {
            println!("\ngate: FAIL");
            for f in &failures {
                println!("  {f}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
