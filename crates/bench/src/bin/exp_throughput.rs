//! Experiment E8 — serving-layer throughput: concurrent sessions over a fixed
//! worker pool.
//!
//! Drives an `ispot-serve` [`SessionHost`] with synthetic `ispot-roadsim`
//! siren traffic at increasing session counts (up to 256 concurrent streams)
//! and reports, per step: sessions per core, aggregate frames/sec, p50/p99
//! submit-to-event latency, and the shed rate of the graceful-degradation
//! controller. The driver honors backpressure — `Busy`/`Shed` chunks are
//! retried, never dropped — so the numbers are the host's sustainable rates,
//! not a fire-and-forget upper bound.
//!
//! Flags:
//!
//! * `--smoke` — two small steps, short drives, skip JSON (CI smoke run);
//! * `--json` — additionally write `BENCH_throughput.json`, the
//!   machine-readable scaling record consumed by CI: schema version 2, a
//!   `steps` array with per-step aggregates plus a per-stage latency
//!   breakdown (`stages.trigger/detection/localization/tracking`) from the
//!   host's tracing histograms. Quantiles are `null` until sampled; the
//!   document carries no wall-clock or host-identity fields.
//!
//! [`SessionHost`]: ispot_serve::SessionHost

use ispot_bench::{print_header, print_row, SAMPLE_RATE};
use ispot_core::api::PipelineBuilder;
use ispot_roadsim::engine::{MultichannelAudio, Simulator};
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};
use ispot_serve::prelude::*;
use std::time::{Duration, Instant};

/// Samples per pushed chunk (32 ms at 16 kHz).
const CHUNK: usize = 512;

fn array() -> MicrophoneArray {
    MicrophoneArray::circular(4, 0.2, Position::new(0.0, 0.0, 1.0))
}

/// One second of a wail siren passing the array — every stream replays this.
fn siren_traffic() -> MultichannelAudio {
    let siren = SirenSynthesizer::new(SirenKind::Wail, SAMPLE_RATE).synthesize(1.0);
    let scene = SceneBuilder::new(SAMPLE_RATE)
        .source(SoundSource::new(
            siren,
            Trajectory::linear(
                Position::new(-12.0, 9.0, 1.0),
                Position::new(12.0, 9.0, 1.0),
                24.0,
            ),
        ))
        .array(array())
        .reflection(false)
        .air_absorption(false)
        .build()
        .expect("valid traffic scene");
    Simulator::new(scene)
        .expect("valid simulator")
        .run()
        .expect("traffic simulation succeeds")
}

/// One scaling step's results.
struct StepRecord {
    sessions: usize,
    sessions_per_core: f64,
    frames_per_sec: f64,
    events: u64,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    shed_rate: f64,
    busy: u64,
    shed_rejected: u64,
    /// Per-stage latency breakdown (trigger, detection, localization,
    /// tracking) from the host's tracing histograms.
    stages: [(&'static str, LatencySnapshot); 4],
}

/// Runs one step: `sessions` streams driven flat-out for `drive` seconds.
fn run_step(
    audio: &MultichannelAudio,
    sessions: usize,
    workers: usize,
    drive: Duration,
) -> StepRecord {
    let engine = PipelineBuilder::new(SAMPLE_RATE)
        .array(&array())
        .build_engine()
        .expect("valid engine");
    let host = SessionHost::new(
        engine,
        HostConfig {
            workers,
            max_sessions: sessions,
            max_chunk_len: CHUNK,
            // Tracing on: the per-stage breakdown below comes from real spans.
            span_capacity: 128,
            ..HostConfig::default()
        },
    )
    .expect("valid host");
    let counter = CountingSink::new();
    let ids: Vec<StreamId> = (0..sessions)
        .map(|_| host.open_stream(counter.clone()).expect("open stream"))
        .collect();

    let channels = audio.channels();
    let samples = channels[0].len();
    let mut cursors = vec![0usize; sessions];
    let started = Instant::now();
    let deadline = started + drive;
    while Instant::now() < deadline {
        let mut accepted_any = false;
        for (id, cursor) in ids.iter().zip(cursors.iter_mut()) {
            if *cursor + CHUNK > samples {
                *cursor = 0;
            }
            let views: Vec<&[f64]> = channels
                .iter()
                .map(|c| &c[*cursor..*cursor + CHUNK])
                .collect();
            match host.push_chunk(*id, &views) {
                Ok(()) => {
                    *cursor += CHUNK;
                    accepted_any = true;
                }
                Err(e) if e.is_transient() => {}
                Err(e) => panic!("driver bug: {e}"),
            }
        }
        if !accepted_any {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    assert!(
        host.wait_idle(Duration::from_secs(120)),
        "host failed to drain after the drive window"
    );
    let wall = started.elapsed().as_secs_f64();
    let metrics = host.metrics();
    let stages = host.stage_latency();
    assert_eq!(metrics.errors, 0, "pipeline errors during the drive");
    for id in ids {
        host.close_stream(id).expect("close stream");
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    StepRecord {
        sessions,
        sessions_per_core: sessions as f64 / cores as f64,
        frames_per_sec: metrics.frames as f64 / wall,
        events: metrics.events,
        p50_ms: metrics.latency.p50_ms,
        p99_ms: metrics.latency.p99_ms,
        shed_rate: metrics.shed_rate(),
        busy: metrics.chunks_busy,
        shed_rejected: metrics.chunks_shed,
        stages,
    }
}

/// A quantile for the table; `n/a` before any sample.
fn fmt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |ms| format!("{ms:.2}"))
}

/// A quantile for JSON; `null` before any sample.
fn json_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), |ms| format!("{ms:.4}"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    print_header(
        "E8 - serving-layer throughput at increasing session counts",
        "one shared engine serves hundreds of bounded, degradable streams",
    );
    let audio = siren_traffic();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, 8);
    let (steps, drive): (&[usize], Duration) = if smoke {
        (&[1, 8], Duration::from_millis(300))
    } else {
        (&[1, 8, 32, 64, 128, 256], Duration::from_secs(1))
    };
    print_row("cores / worker threads", format!("{cores} / {workers}"));
    print_row("chunk size (samples)", CHUNK);
    println!();
    println!(
        "  {:>8}  {:>9}  {:>12}  {:>9}  {:>9}  {:>9}  {:>8}",
        "sessions", "sess/core", "frames/s", "p50 ms", "p99 ms", "shed", "busy"
    );

    let mut records = Vec::new();
    for &sessions in steps {
        let record = run_step(&audio, sessions, workers, drive);
        assert!(
            record.frames_per_sec > 0.0,
            "{sessions}-session step processed no frames"
        );
        println!(
            "  {:>8}  {:>9.2}  {:>12.0}  {:>9}  {:>9}  {:>8.1}%  {:>8}",
            record.sessions,
            record.sessions_per_core,
            record.frames_per_sec,
            fmt_ms(record.p50_ms),
            fmt_ms(record.p99_ms),
            100.0 * record.shed_rate,
            record.busy
        );
        records.push(record);
    }
    if let Some(last) = records.last() {
        println!();
        println!("  per-stage latency at {} sessions:", last.sessions);
        for (stage, snap) in &last.stages {
            println!(
                "  {:>12}  p50 {:>8} ms   p99 {:>8} ms   ({} spans)",
                stage,
                fmt_ms(snap.p50_ms),
                fmt_ms(snap.p99_ms),
                snap.count
            );
        }
    }

    if json {
        let entries: Vec<String> = records
            .iter()
            .map(|r| {
                let stages: Vec<String> = r
                    .stages
                    .iter()
                    .map(|(stage, snap)| {
                        format!(
                            "\"{stage}\": {{\"count\": {}, \"mean_ms\": {:.4}, \
                             \"p50_ms\": {}, \"p99_ms\": {}}}",
                            snap.count,
                            snap.mean_ms,
                            json_ms(snap.p50_ms),
                            json_ms(snap.p99_ms)
                        )
                    })
                    .collect();
                format!(
                    "    {{\"sessions\": {}, \"sessions_per_core\": {:.3}, \
                     \"frames_per_sec\": {:.1}, \"events\": {}, \
                     \"latency_p50_ms\": {}, \"latency_p99_ms\": {}, \
                     \"shed_rate\": {:.4}, \"busy_rejections\": {}, \
                     \"shed_rejections\": {}, \"stages\": {{{}}}}}",
                    r.sessions,
                    r.sessions_per_core,
                    r.frames_per_sec,
                    r.events,
                    json_ms(r.p50_ms),
                    json_ms(r.p99_ms),
                    r.shed_rate,
                    r.busy,
                    r.shed_rejected,
                    stages.join(", ")
                )
            })
            .collect();
        // No wall-clock or host-identity fields: rerunning on the same inputs
        // produces a structurally identical document.
        let body = format!(
            "{{\n  \"schema_version\": 2,\n  \"steps\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        let path = "BENCH_throughput.json";
        std::fs::write(path, body)?;
        println!("\nwrote {path} ({} steps)", records.len());
    }
    Ok(())
}
