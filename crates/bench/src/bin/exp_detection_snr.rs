//! Experiment E3 — detection robustness versus SNR.
//!
//! The paper motivates deep learning detectors by their robustness to the strong,
//! dynamic background noise of the automotive scene (SNR down to −30 dB in the
//! dataset). This experiment trains the small CNN detector and compares it against the
//! two classical baselines across an SNR sweep, reproducing the qualitative shape:
//! every method degrades as SNR drops, and the learned detector stays ahead of the
//! energy threshold at low SNR.

use ispot_bench::{full_scale_requested, print_header, print_row};
use ispot_sed::baseline::{EnergyDetector, SpectralTemplateDetector};
use ispot_sed::dataset::{Dataset, DatasetConfig};
use ispot_sed::detector::{CnnDetector, DetectorConfig};

fn dataset_at_snr(snr_db: f64, num_samples: usize, seed: u64) -> Dataset {
    let config = DatasetConfig {
        num_samples,
        duration_s: 1.0,
        spatialize: false,
        snr_min_db: snr_db - 2.0,
        snr_max_db: snr_db + 2.0,
        background_fraction: 0.4,
        ..DatasetConfig::default()
    };
    Dataset::generate(&config, seed).expect("dataset generation succeeds")
}

fn main() {
    let full = full_scale_requested();
    let (train_samples, test_samples) = if full { (600, 200) } else { (120, 60) };
    print_header(
        "E3 - detection accuracy vs SNR (CNN vs classical baselines)",
        "DL-based detection is robust to strong background noise (SNR down to -30 dB)",
    );
    // Train the CNN on a mixture of SNRs (the paper's dataset covers [-30, 0] dB).
    let train = Dataset::generate(
        &DatasetConfig {
            num_samples: train_samples,
            duration_s: 1.0,
            spatialize: false,
            snr_min_db: -20.0,
            snr_max_db: 5.0,
            background_fraction: 0.4,
            ..DatasetConfig::default()
        },
        7,
    )
    .expect("training set");
    let mut cnn = CnnDetector::new(
        if full {
            DetectorConfig::default()
        } else {
            DetectorConfig::tiny()
        },
        16_000.0,
    )
    .expect("detector");
    print_row("CNN parameters", cnn.num_parameters());
    print_row("training samples", train.len());
    let started = std::time::Instant::now();
    let losses = cnn.train(&train).expect("training succeeds");
    print_row(
        "training time (s) / final loss",
        format!(
            "{:.1} / {:.3}",
            started.elapsed().as_secs_f64(),
            losses.last().unwrap()
        ),
    );
    let energy = EnergyDetector::new(16_000.0).expect("energy detector");
    let template = SpectralTemplateDetector::new(16_000.0).expect("template detector");
    println!(
        "\n  {:>8}  {:>14}  {:>14}  {:>14}",
        "SNR (dB)", "CNN acc", "template acc", "energy det acc"
    );
    for snr in [0.0, -10.0, -20.0, -30.0] {
        let test = dataset_at_snr(snr, test_samples, 1000 + snr.abs() as u64);
        let cnn_report = cnn.evaluate(&test).expect("cnn evaluation");
        let template_report = template.evaluate(&test).expect("template evaluation");
        let energy_acc = energy.evaluate(&test).expect("energy evaluation");
        println!(
            "  {:>8.0}  {:>14.3}  {:>14.3}  {:>14.3}",
            snr,
            cnn_report.event_detection_accuracy(),
            template_report.event_detection_accuracy(),
            energy_acc
        );
    }
    println!(
        "\n  (multi-class macro-F1 of the CNN at 0 dB: {:.3})",
        cnn.evaluate(&dataset_at_snr(0.0, test_samples, 999))
            .expect("evaluation")
            .macro_f1()
    );
}
