//! Experiment E7 — a trace of the co-design workflow loop (paper Fig. 4).
//!
//! Prints one line per design-space iteration: the candidate configuration, its model
//! size, estimated latency and accuracy, and whether the trade-off judgment accepts it.
//! The last section shows the bottleneck analysis and the roofline placement of the
//! selected design — the "report" output of the workflow.

use ispot_bench::{cross3d_baseline_graph, print_header, print_row};
use ispot_codesign::dse::{AnalyticEvaluator, CoDesignLoop, DesignSpace};
use ispot_codesign::platform::EdgePlatform;

fn main() {
    print_header(
        "E7 - hardware-algorithm co-design loop trace",
        "Fig. 4: bottleneck analysis -> finetuning -> cost model -> trade-off -> update",
    );
    let baseline_graph = cross3d_baseline_graph();
    let platform = EdgePlatform::raspberry_pi4();
    let accuracy_floor = 0.85;
    let space = DesignSpace::default();
    let mut evaluator = AnalyticEvaluator::new(baseline_graph.clone(), 0.93);
    let dse = CoDesignLoop::new(platform.clone(), space, accuracy_floor).expect("valid loop");
    let report = dse.run(&mut evaluator).expect("exploration succeeds");

    println!("\n[bottleneck analysis of the baseline]");
    let mut ops: Vec<_> = baseline_graph.ops().iter().collect();
    ops.sort_by_key(|o| std::cmp::Reverse(o.macs()));
    for op in ops.iter().take(5) {
        print_row(
            &op.name,
            format!(
                "{:.1} MMAC  {:.2} ms",
                op.macs() as f64 / 1e6,
                platform.op_latency_ms(op)
            ),
        );
    }

    println!("\n[iteration trace: feature/channel/prune/bits -> size, latency, accuracy, verdict]");
    println!(
        "  {:<32} {:>10} {:>12} {:>10} {:>10}",
        "design point", "size (MB)", "latency (ms)", "accuracy", "feasible"
    );
    for it in &report.iterations {
        let p = it.point;
        println!(
            "  f={:.2} c={:.2} p={:.2} b={:<4} {:>10.2} {:>12.2} {:>10.3} {:>10}",
            p.feature_scale,
            p.channel_scale,
            p.prune_ratio,
            p.quantize_bits
                .map(|b| b.to_string())
                .unwrap_or_else(|| "f32".into()),
            it.model_bytes as f64 / 1e6,
            it.latency_ms,
            it.accuracy,
            it.accuracy >= accuracy_floor
        );
    }

    println!("\n[trade-off judgment]");
    print_row("accuracy floor", accuracy_floor);
    print_row("selected point", format!("{:?}", report.best.point));
    print_row("speedup over baseline", format!("{:.2}x", report.speedup()));
    print_row(
        "model size reduction",
        format!("{:.1} %", 100.0 * report.size_reduction()),
    );

    println!("\n[roofline placement of the selected design (top 5 ops by latency)]");
    let best_graph = report.best.point.apply_to(&baseline_graph).expect("apply");
    let mut points = platform.roofline(&best_graph);
    points.sort_by(|a, b| {
        (b.achieved_gmacs / b.attainable_gmacs).total_cmp(&(a.achieved_gmacs / a.attainable_gmacs))
    });
    print_row(
        "platform ridge point (MAC/byte)",
        format!("{:.2}", platform.ridge_point()),
    );
    for p in points.iter().take(5) {
        print_row(
            &p.op_name,
            format!(
                "intensity {:.2} MAC/B, achieved {:.2} / attainable {:.2} GMAC/s",
                p.operational_intensity, p.achieved_gmacs, p.attainable_gmacs
            ),
        );
    }
}
