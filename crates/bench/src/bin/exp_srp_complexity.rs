//! Experiment E4 — low-complexity SRP-PHAT versus the conventional implementation.
//!
//! Paper claim (Sec. IV-B): the hardware-driven analysis and the low-complexity SRP
//! literature inspire "a mathematically equivalent SRP-PHAT algorithm with ~10x latency
//! boost and ~50% coefficients reduce". This binary measures the conventional
//! frequency-domain steering and the three lag-domain variants (scalar `f64`
//! reference, `f32` SIMD, `f32` SIMD + hierarchical coarse-to-fine search) on
//! identical simulated frames and reports latency, speedup, coefficient counts
//! and the numerical equivalence of the produced maps.
//!
//! Flags:
//!
//! * `--smoke` — fewer repetitions, skip JSON (CI release-mode smoke run);
//! * `--json` — additionally write `BENCH_srp.json` (per-variant mean/min ms and
//!   speedups over the conventional implementation), the machine-readable perf
//!   trajectory consumed by CI.

use ispot_bench::{print_header, print_row, simulate_static_source, SAMPLE_RATE};
use ispot_codesign::profiler::{HostProfiler, ProfileRecord};
use ispot_ssl::srp_fast::{SrpPhatFast, SrpSearchConfig};
use ispot_ssl::srp_phat::{SrpConfig, SrpMap, SrpPhat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    print_header(
        "E4 - low-complexity SRP-PHAT vs conventional frequency-domain steering",
        "~10x latency boost and ~50% coefficient reduction, mathematically equivalent",
    );
    let (audio, array) = simulate_static_source(60.0, 20.0, 6, 8192, 11);
    let config = SrpConfig::default();
    let conventional = SrpPhat::new(config, &array, SAMPLE_RATE).expect("conventional SRP");
    let fast = SrpPhatFast::new(config, &array, SAMPLE_RATE).expect("fast SRP");
    let hierarchical =
        SrpPhatFast::with_search(config, SrpSearchConfig::hierarchical(), &array, SAMPLE_RATE)
            .expect("hierarchical SRP");
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();

    let (warmup, reps) = if smoke { (1, 3) } else { (5, 50) };
    let profiler = HostProfiler::new(warmup, reps);

    let mut conv_scratch = conventional.make_scratch();
    let mut conv_map = SrpMap::default();
    let conv_time = profiler.measure("conventional", || {
        conventional
            .compute_map_into(&frame, &mut conv_scratch, &mut conv_map)
            .expect("map")
    });
    let mut fast_scratch = fast.make_scratch();
    let mut scalar_map = SrpMap::default();
    let scalar_time = profiler.measure("scalar_fast", || {
        fast.compute_map_reference_into(&frame, &mut fast_scratch, &mut scalar_map)
            .expect("map")
    });
    let mut simd_map = SrpMap::default();
    let simd_time = profiler.measure("simd_fast", || {
        fast.compute_map_into(&frame, &mut fast_scratch, &mut simd_map)
            .expect("map")
    });
    let mut hier_scratch = hierarchical.make_scratch();
    let mut hier_map = SrpMap::default();
    let hier_time = profiler.measure("hierarchical", || {
        hierarchical
            .compute_map_into(&frame, &mut hier_scratch, &mut hier_map)
            .expect("map")
    });

    print_row(
        "microphones / pairs",
        format!("{} / {}", array.len(), fast.grid().num_pairs()),
    );
    print_row("grid directions", config.num_directions);
    print_row("frame length (samples)", config.frame_len);
    print_row("profiler repetitions", reps);
    println!();
    let speedup = |t: &ProfileRecord| conv_time.mean_ms / t.mean_ms;
    for time in [&conv_time, &scalar_time, &simd_time, &hier_time] {
        print_row(
            format!("{} latency per map (ms)", time.name).as_str(),
            format!(
                "{:.3}  ({:.1}x vs conventional)",
                time.mean_ms,
                speedup(time)
            ),
        );
    }
    println!();
    print_row(
        "conventional coefficients per pair",
        conventional.coefficients_per_pair(),
    );
    print_row("fast coefficients per pair", fast.coefficients_per_pair());
    print_row(
        "coefficient reduction (paper: ~50%)",
        format!("{:.1} %", 100.0 * fast.coefficient_reduction()),
    );
    println!();
    print_row(
        "map correlation conv vs simd (equivalence)",
        format!("{:.4}", conv_map.correlation(&simd_map)),
    );
    print_row(
        "map correlation conv vs hierarchical",
        format!("{:.4}", conv_map.correlation(&hier_map)),
    );
    let az_conv = conv_map.peak().expect("non-empty map").1;
    let az_simd = simd_map.peak().expect("non-empty map").1;
    let az_hier = hier_map.peak().expect("non-empty map").1;
    print_row(
        "peak azimuth conventional / simd / hierarchical (deg)",
        format!("{az_conv:.1} / {az_simd:.1} / {az_hier:.1}"),
    );

    if json {
        let entry = |t: &ProfileRecord| {
            format!(
                "  {{\"variant\": \"{}\", \"mean_ms\": {:.6}, \"min_ms\": {:.6}, \
                 \"speedup_vs_conventional\": {:.3}}}",
                t.name,
                t.mean_ms,
                t.min_ms,
                speedup(t)
            )
        };
        let body = format!(
            "[\n{},\n{},\n{},\n{}\n]\n",
            entry(&conv_time),
            entry(&scalar_time),
            entry(&simd_time),
            entry(&hier_time)
        );
        let path = "BENCH_srp.json";
        std::fs::write(path, body)?;
        println!("\nwrote {path} (4 variants)");
    }
    Ok(())
}
