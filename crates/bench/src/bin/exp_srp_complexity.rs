//! Experiment E4 — low-complexity SRP-PHAT versus the conventional implementation.
//!
//! Paper claim (Sec. IV-B): the hardware-driven analysis and the low-complexity SRP
//! literature inspire "a mathematically equivalent SRP-PHAT algorithm with ~10x latency
//! boost and ~50% coefficients reduce". This binary measures both implementations on
//! identical simulated frames and reports latency, speedup, coefficient counts and the
//! numerical equivalence of the produced maps.

use ispot_bench::{print_header, print_row, simulate_static_source, SAMPLE_RATE};
use ispot_codesign::profiler::HostProfiler;
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::{SrpConfig, SrpPhat};

fn main() {
    print_header(
        "E4 - low-complexity SRP-PHAT vs conventional frequency-domain steering",
        "~10x latency boost and ~50% coefficient reduction, mathematically equivalent",
    );
    let (audio, array) = simulate_static_source(60.0, 20.0, 6, 8192, 11);
    let config = SrpConfig::default();
    let conventional = SrpPhat::new(config, &array, SAMPLE_RATE).expect("conventional SRP");
    let fast = SrpPhatFast::new(config, &array, SAMPLE_RATE).expect("fast SRP");
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();

    let profiler = HostProfiler::new(2, 10);
    let mut conv_scratch = conventional.make_scratch();
    let mut conv_map = ispot_ssl::srp_phat::SrpMap::default();
    let conv_time = profiler.measure("conventional", || {
        conventional
            .compute_map_into(&frame, &mut conv_scratch, &mut conv_map)
            .expect("map")
    });
    let mut fast_scratch = fast.make_scratch();
    let mut fast_map = ispot_ssl::srp_phat::SrpMap::default();
    let fast_time = profiler.measure("fast", || {
        fast.compute_map_into(&frame, &mut fast_scratch, &mut fast_map)
            .expect("map")
    });

    let map_a = conventional.compute_map(&frame).expect("map");
    let map_b = fast.compute_map(&frame).expect("map");

    print_row(
        "microphones / pairs",
        format!("{} / {}", array.len(), fast.grid().num_pairs()),
    );
    print_row("grid directions", config.num_directions);
    print_row("frame length (samples)", config.frame_len);
    println!();
    print_row(
        "conventional latency per map (ms)",
        format!("{:.3}", conv_time.mean_ms),
    );
    print_row(
        "fast latency per map (ms)",
        format!("{:.3}", fast_time.mean_ms),
    );
    print_row(
        "latency speedup (paper: ~10x)",
        format!("{:.1}x", conv_time.mean_ms / fast_time.mean_ms),
    );
    println!();
    print_row(
        "conventional coefficients per pair",
        conventional.coefficients_per_pair(),
    );
    print_row("fast coefficients per pair", fast.coefficients_per_pair());
    print_row(
        "coefficient reduction (paper: ~50%)",
        format!("{:.1} %", 100.0 * fast.coefficient_reduction()),
    );
    println!();
    print_row(
        "map correlation (equivalence)",
        format!("{:.4}", map_a.correlation(&map_b)),
    );
    let az_a = map_a.peak().expect("non-empty map").1;
    let az_b = map_b.peak().expect("non-empty map").1;
    print_row(
        "peak azimuth conventional / fast (deg)",
        format!("{az_a:.1} / {az_b:.1}"),
    );
}
