//! Experiment E8 — microphone-array geometry assessment.
//!
//! The paper lists the assessment of the optimal microphone-array topology and
//! placement as an open system-level challenge (Sec. II and V) and built
//! pyroadacoustics precisely to make it feasible. This experiment runs that study at a
//! small scale: localization error of the SRP-PHAT front-end for linear, circular and
//! rectangular arrays with varying microphone counts.

use ispot_bench::{print_header, SAMPLE_RATE};
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_ssl::metrics::angular_error_deg;
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::SrpConfig;

fn localization_error(array: &MicrophoneArray, azimuths: &[f64]) -> f64 {
    let fs = SAMPLE_RATE;
    let srp = SrpPhatFast::new(SrpConfig::default(), array, fs).expect("srp");
    let mut total = 0.0;
    for (i, &truth) in azimuths.iter().enumerate() {
        let az = truth.to_radians();
        let signal: Vec<f64> = ispot_dsp::generator::NoiseSource::new(
            ispot_dsp::generator::NoiseKind::White,
            100 + i as u64,
        )
        .take(6144)
        .collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                signal,
                Trajectory::fixed(Position::new(20.0 * az.cos(), 20.0 * az.sin(), 1.0)),
            ))
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .expect("scene");
        let audio = Simulator::new(scene)
            .expect("simulator")
            .run()
            .expect("run");
        let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();
        let estimate = srp.localize(&frame).expect("localization");
        total += angular_error_deg(estimate.azimuth_deg(), truth);
    }
    total / azimuths.len() as f64
}

fn main() {
    print_header(
        "E8 - microphone-array geometry assessment",
        "array topology and sensor count strongly influence localization (Sec. II/V)",
    );
    let azimuths: Vec<f64> = vec![-150.0, -90.0, -30.0, 0.0, 40.0, 95.0, 160.0];
    let center = Position::new(0.0, 0.0, 1.0);
    println!(
        "\n  {:<28} {:>6} {:>12} {:>18}",
        "geometry", "mics", "aperture (m)", "mean DOA error (deg)"
    );
    let candidates: Vec<(String, MicrophoneArray)> = vec![
        (
            "linear 0.1 m".into(),
            MicrophoneArray::linear(4, 0.1, center),
        ),
        (
            "linear 0.1 m".into(),
            MicrophoneArray::linear(8, 0.1, center),
        ),
        (
            "circular r=0.2 m".into(),
            MicrophoneArray::circular(4, 0.2, center),
        ),
        (
            "circular r=0.2 m".into(),
            MicrophoneArray::circular(6, 0.2, center),
        ),
        (
            "circular r=0.2 m".into(),
            MicrophoneArray::circular(8, 0.2, center),
        ),
        (
            "rectangular 0.15 m".into(),
            MicrophoneArray::rectangular(2, 2, 0.15, 0.15, center),
        ),
        (
            "rectangular 0.15 m".into(),
            MicrophoneArray::rectangular(4, 2, 0.15, 0.15, center),
        ),
    ];
    let mut best: Option<(String, usize, f64)> = None;
    for (name, array) in candidates {
        let error = localization_error(&array, &azimuths);
        println!(
            "  {:<28} {:>6} {:>12.2} {:>18.2}",
            name,
            array.len(),
            array.aperture(),
            error
        );
        if best.as_ref().map(|b| error < b.2).unwrap_or(true) {
            best = Some((name, array.len(), error));
        }
    }
    if let Some((name, mics, error)) = best {
        println!("\n  best geometry: {name} with {mics} microphones ({error:.2} deg mean error)");
        println!("  note: linear arrays suffer front-back ambiguity on a 360-degree grid,");
        println!("  which is why planar (circular/rectangular) layouts win - the motivation");
        println!("  for the array-topology study the paper schedules for its second stage.");
    }
}
