//! Experiment E6 — end-to-end frame latency of the optimized pipeline.
//!
//! Paper claim (Sec. IV-B): the script-based workflow squeezes the Cross3D project to
//! "8.59 ms/frame end-to-end on RasPi-4B, 7.26x faster than the baseline". Two
//! complementary measurements are reported:
//!
//! 1. **platform model**: estimated latency of the baseline and optimized operator
//!    graphs on the RasPi-4B-class cost model (absolute numbers comparable to the
//!    paper's 8.59 ms);
//! 2. **host wall-clock**: measured latency of the real Rust kernels (conventional vs
//!    low-complexity SRP front-end), confirming the speedup factor on this machine.

use ispot_bench::{
    cross3d_baseline_graph, print_header, print_row, simulate_static_source, SAMPLE_RATE,
};
use ispot_codesign::dse::DesignPoint;
use ispot_codesign::ir::{OpKind, OpNode};
use ispot_codesign::platform::EdgePlatform;
use ispot_codesign::profiler::HostProfiler;
use ispot_ssl::srp_fast::SrpPhatFast;
use ispot_ssl::srp_phat::{SrpConfig, SrpPhat};

/// Builds the optimized pipeline graph: the Nyquist-sampled SRP front-end (lag tables
/// instead of full-band steering) plus the compressed CNN selected by experiment E5.
fn optimized_graph() -> ispot_codesign::ir::OpGraph {
    let baseline = cross3d_baseline_graph();
    // Compress the network as E5's selected design point does.
    let point = DesignPoint {
        feature_scale: 1.0,
        channel_scale: 0.35,
        prune_ratio: 0.5,
        quantize_bits: Some(8),
    };
    let mut graph = point.apply_to(&baseline).expect("passes apply");
    // Replace the frequency-domain steering with the lag-domain formulation:
    // per pair one extra inverse FFT, then directions x ~20 lag taps.
    for op in graph.ops_mut() {
        if let OpKind::SrpSteering { coefficients, .. } = &mut op.kind {
            *coefficients = 21;
            op.parameters = 15 * 21;
        }
    }
    let mut with_ifft = ispot_codesign::ir::OpGraph::new("cross3d-optimized");
    for op in graph.ops() {
        with_ifft.push(op.clone());
        if op.name.starts_with("gcc_pair") {
            // The lag-domain SRP adds one inverse FFT per pair.
            with_ifft.push(OpNode::fft(&format!("{}_ifft", op.name), 2048));
        }
    }
    with_ifft
}

fn main() {
    print_header(
        "E6 - end-to-end frame latency (baseline vs optimized)",
        "8.59 ms/frame end-to-end on RasPi-4B, 7.26x faster than the baseline",
    );
    let platform = EdgePlatform::raspberry_pi4();
    let baseline = cross3d_baseline_graph();
    let optimized = optimized_graph();
    let baseline_ms = platform.graph_latency_ms(&baseline);
    let optimized_ms = platform.graph_latency_ms(&optimized);
    println!("\n[platform model: {}]", platform.name);
    print_row(
        "baseline end-to-end (ms/frame)",
        format!("{baseline_ms:.2}"),
    );
    print_row(
        "optimized end-to-end (ms/frame, paper: 8.59)",
        format!("{optimized_ms:.2}"),
    );
    print_row(
        "speedup (paper: 7.26x)",
        format!("{:.2}x", baseline_ms / optimized_ms),
    );
    print_row(
        "energy per frame baseline -> optimized (mJ)",
        format!(
            "{:.1} -> {:.1}",
            platform.graph_energy_mj(&baseline),
            platform.graph_energy_mj(&optimized)
        ),
    );

    // Host wall-clock of the real front-end kernels (the dominant cost).
    println!("\n[host wall-clock: SRP-PHAT front-end on this machine]");
    let (audio, array) = simulate_static_source(40.0, 20.0, 6, 8192, 5);
    let config = SrpConfig::default();
    let conventional = SrpPhat::new(config, &array, SAMPLE_RATE).expect("srp");
    let fast = SrpPhatFast::new(config, &array, SAMPLE_RATE).expect("fast srp");
    let frame: Vec<&[f64]> = audio.channels().iter().map(|c| &c[4096..6144]).collect();
    let profiler = HostProfiler::new(2, 10);
    // Both sides reuse scratch so the ratio reflects the algorithms, not allocation.
    let mut conv_scratch = conventional.make_scratch();
    let mut conv_map = ispot_ssl::srp_phat::SrpMap::default();
    let conv = profiler.measure("conventional", || {
        conventional
            .compute_map_into(&frame, &mut conv_scratch, &mut conv_map)
            .unwrap()
    });
    let mut scratch = fast.make_scratch();
    let mut map = ispot_ssl::srp_phat::SrpMap::default();
    let fst = profiler.measure("fast", || {
        fast.compute_map_into(&frame, &mut scratch, &mut map)
            .unwrap()
    });
    print_row(
        "baseline front-end (ms/frame)",
        format!("{:.3}", conv.mean_ms),
    );
    print_row(
        "optimized front-end (ms/frame)",
        format!("{:.3}", fst.mean_ms),
    );
    print_row(
        "front-end speedup on this machine",
        format!("{:.1}x", conv.mean_ms / fst.mean_ms),
    );

    // Per-stage breakdown on the platform model for the optimized pipeline.
    println!("\n[optimized pipeline, platform-model stage breakdown]");
    let mut by_kind: std::collections::BTreeMap<&'static str, f64> = Default::default();
    for op in optimized.ops() {
        let label = match op.kind {
            OpKind::Fft { .. } => "fft",
            OpKind::GccPhat { .. } => "gcc-phat",
            OpKind::SrpSteering { .. } => "srp steering",
            OpKind::Conv2d { .. } => "convolutions",
            OpKind::Dense { .. } => "dense layers",
            _ => "other",
        };
        *by_kind.entry(label).or_default() += platform.op_latency_ms(op);
    }
    for (label, ms) in by_kind {
        print_row(label, format!("{ms:.2} ms"));
    }
}
