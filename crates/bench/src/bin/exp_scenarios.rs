//! Experiment E10 — the scenario evaluation harness.
//!
//! Renders every stock road scene (multi-source: sirens, traffic maskers,
//! transients), runs the full perception session on the rendered array audio and
//! prints per-scene detection F1 and mean tracked-DoA error against the scene's
//! ground truth. This is the end-to-end workload the paper evaluates — a moving
//! siren amid interfering sources — applied across the gallery of conditions the
//! acoustic traffic-perception literature stresses.
//!
//! Flags:
//!
//! * `--smoke` — render one short scene only (CI smoke run);
//! * `--markdown` — additionally print the scenario gallery as a Markdown table
//!   (the source of the table in `ARCHITECTURE.md`);
//! * `--json` — additionally write `BENCH_scenarios.json` (per-scene detection
//!   F1, DoA error, confirmed tracks, identity swaps, OSPA, per-frame latency),
//!   the machine-readable quality/perf trajectory consumed by CI.

use ispot_bench::scenarios::{self, ScenarioReport};
use ispot_bench::{print_header, print_row, SAMPLE_RATE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let markdown = std::env::args().any(|a| a == "--markdown");
    let json = std::env::args().any(|a| a == "--json");
    print_header(
        "E10 - scenario evaluation harness (multi-source road scenes)",
        "perception quality is decided by interfering sources and pass-by geometry",
    );
    let scenarios = if smoke {
        vec![scenarios::siren_pass_by_in_traffic(SAMPLE_RATE, 1.5)]
    } else {
        scenarios::all(SAMPLE_RATE)
    };
    print_row("scenes", scenarios.len());
    print_row(
        "frame / hop",
        format!("{} / {}", scenarios::FRAME_LEN, scenarios::HOP),
    );
    println!();
    println!("  {}", ScenarioReport::table_header());
    let mut reports = Vec::new();
    for scenario in &scenarios {
        let started = std::time::Instant::now();
        let report = scenarios::evaluate(scenario)?;
        println!(
            "  {}   ({:.1}s)",
            report.table_row(),
            started.elapsed().as_secs_f64()
        );
        reports.push(report);
    }
    if markdown {
        println!("\n| scenario | description | event F1 | precision / recall | mean DoA err (deg) | tracks / swaps | track err (deg) | duty |");
        println!("|---|---|---|---|---|---|---|---|");
        for (scenario, report) in scenarios.iter().zip(&reports) {
            println!("{}", report.markdown_row(scenario.description));
        }
    }
    if json {
        let objects: Vec<String> = scenarios
            .iter()
            .zip(&reports)
            .map(|(s, r)| format!("  {}", r.json_object(s.description)))
            .collect();
        let body = format!("[\n{}\n]\n", objects.join(",\n"));
        let path = "BENCH_scenarios.json";
        std::fs::write(path, body)?;
        println!("\nwrote {path} ({} scenes)", reports.len());
    }
    Ok(())
}
