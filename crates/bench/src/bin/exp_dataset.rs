//! Experiment E2 — the emergency-sound dataset protocol (paper Sec. IV-A).
//!
//! The paper generates 15 000 single-channel samples: sirens (hi-low, wail, yelp) and
//! car horns on random trajectories, mixed with urban noise at SNR ∈ [−30, 0] dB. This
//! binary regenerates the protocol (a reduced count by default; pass `--full` for the
//! complete 15 000 samples) and reports the dataset statistics.

use ispot_bench::{full_scale_requested, print_header, print_row};
use ispot_sed::dataset::{Dataset, DatasetConfig};
use ispot_sed::EventClass;

fn main() {
    let full = full_scale_requested();
    let config = if full {
        DatasetConfig::paper_protocol()
    } else {
        DatasetConfig {
            num_samples: 200,
            duration_s: 1.0,
            spatialize: true,
            ..DatasetConfig::default()
        }
    };
    print_header(
        "E2 - emergency-sound dataset generation",
        "15 000 single-channel samples, random trajectories and speeds, SNR in [-30, 0] dB",
    );
    print_row(
        "samples requested (paper: 15000)",
        format!(
            "{}{}",
            config.num_samples,
            if full { "" } else { "  (use --full for 15000)" }
        ),
    );
    print_row("clip duration (s)", config.duration_s);
    print_row("sample rate (Hz)", config.sample_rate);
    print_row(
        "SNR range (dB)",
        format!("[{}, {}]", config.snr_min_db, config.snr_max_db),
    );
    print_row(
        "source speed range (m/s)",
        format!("[{}, {}]", config.speed_min, config.speed_max),
    );
    let started = std::time::Instant::now();
    let dataset = Dataset::generate(&config, 2023).expect("dataset generation succeeds");
    let elapsed = started.elapsed().as_secs_f64();
    println!("\nGenerated {} samples in {:.1} s", dataset.len(), elapsed);
    let histogram = dataset.class_histogram();
    for class in EventClass::ALL {
        print_row(
            &format!("class `{}`", class.label()),
            histogram[class.index()],
        );
    }
    let snrs: Vec<f64> = dataset.samples().iter().filter_map(|s| s.snr_db).collect();
    if !snrs.is_empty() {
        let min = snrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = snrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = snrs.iter().sum::<f64>() / snrs.len() as f64;
        print_row(
            "measured SNR min / mean / max (dB)",
            format!("{min:.1} / {mean:.1} / {max:.1}"),
        );
    }
    let speeds: Vec<f64> = dataset
        .samples()
        .iter()
        .filter_map(|s| s.source_speed)
        .collect();
    if !speeds.is_empty() {
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        print_row(
            "source speed min / max (m/s)",
            format!("{min:.1} / {max:.1}"),
        );
    }
    print_row(
        "samples per hour of generation (this machine)",
        format!("{:.0}", dataset.len() as f64 / elapsed * 3600.0),
    );
}
