//! Experiment E9 — drive versus park operating modes.
//!
//! The project requires "multi-mode and computationally efficient" operation: a
//! fully-functional low-latency driving mode and a trigger-based low-power parking mode
//! (Sec. II, requirement 3). This experiment measures the analysis duty cycle, the
//! wake-up latency and the modelled average power of both modes on the same scene: a
//! long quiet period followed by an approaching siren.

use ispot_bench::{cross3d_baseline_graph, print_header, print_row, SAMPLE_RATE};
use ispot_codesign::platform::EdgePlatform;
use ispot_core::api::PipelineBuilder;
use ispot_core::mode::OperatingMode;
use ispot_core::pipeline::PipelineConfig;
use ispot_roadsim::engine::MultichannelAudio;
use ispot_sed::noise::UrbanNoiseSynthesizer;
use ispot_sed::sirens::{SirenKind, SirenSynthesizer};

fn build_scene_audio() -> (MultichannelAudio, usize) {
    let fs = SAMPLE_RATE;
    // 3 s of quiet urban background followed by 2 s with a loud siren on top.
    let mut signal: Vec<f64> = UrbanNoiseSynthesizer::new(fs, 9)
        .synthesize(3.0)
        .iter()
        .map(|x| x * 0.02)
        .collect();
    let quiet_len = signal.len();
    let background: Vec<f64> = UrbanNoiseSynthesizer::new(fs, 10)
        .synthesize(2.0)
        .iter()
        .map(|x| x * 0.02)
        .collect();
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(2.0);
    signal.extend(siren.iter().zip(&background).map(|(s, n)| 0.6 * s + n));
    (MultichannelAudio::new(vec![signal], fs), quiet_len)
}

fn main() {
    print_header(
        "E9 - drive mode vs trigger-based park mode",
        "multi-mode operation: low-latency drive mode, low-power always-on park mode",
    );
    let (audio, quiet_len) = build_scene_audio();
    let platform = EdgePlatform::raspberry_pi4();
    let graph = cross3d_baseline_graph();
    let frame_ms = PipelineConfig::default().hop as f64 / SAMPLE_RATE * 1e3;
    println!(
        "\n  scene: {:.1} s quiet background, then a wail siren (event starts at {:.1} s)",
        audio.len() as f64 / SAMPLE_RATE,
        quiet_len as f64 / SAMPLE_RATE
    );
    println!(
        "\n  {:<10} {:>12} {:>14} {:>18} {:>16}",
        "mode", "duty cycle", "events", "wake latency (ms)", "avg power (W)"
    );
    for mode in [OperatingMode::Drive, OperatingMode::Park] {
        let mut pipeline = PipelineBuilder::new(SAMPLE_RATE)
            .mode(mode)
            .build()
            .expect("pipeline");
        let events = pipeline.process_recording(&audio).expect("processing");
        let first_alert = events.iter().find(|e| e.is_alert());
        let wake_latency_ms = first_alert
            .map(|e| (e.time_s - quiet_len as f64 / SAMPLE_RATE).max(0.0) * 1e3 + frame_ms)
            .unwrap_or(f64::NAN);
        let duty = pipeline.analysis_duty_cycle();
        // Average power: the expensive graph runs only on analysed frames.
        let wakeups_per_second = duty * SAMPLE_RATE / PipelineConfig::default().hop as f64;
        let power = platform.duty_cycled_power_w(&graph, wakeups_per_second);
        println!(
            "  {:<10} {:>12.2} {:>14} {:>18.1} {:>16.2}",
            mode.label(),
            duty,
            events.iter().filter(|e| e.is_alert()).count(),
            wake_latency_ms,
            power
        );
    }
    println!();
    print_row(
        "park-mode power saving vs drive mode",
        "the duty cycle (and therefore average power) drops while the siren is still reported",
    );
}
