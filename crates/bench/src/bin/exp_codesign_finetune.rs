//! Experiment E5 — co-design finetuning of the Cross3D-style model.
//!
//! Paper claim (Sec. IV-B): "the algorithm-hardware co-optimization helps to discover
//! better training scripts and finetune the baseline model to edge-device versions
//! which are ~86% smaller while ~47% faster". This binary runs the design-space
//! exploration loop on the Cross3D-style operator graph and reports the size and
//! latency of the selected edge-device configuration relative to the baseline.

use ispot_bench::{cross3d_baseline_graph, print_header, print_row};
use ispot_codesign::dse::{AnalyticEvaluator, CoDesignLoop, DesignSpace};
use ispot_codesign::ir::OpKind;
use ispot_codesign::platform::EdgePlatform;

fn main() {
    print_header(
        "E5 - co-design finetuning of the Cross3D-style model",
        "finetuned edge model is ~86% smaller and ~47% faster than the baseline",
    );
    let baseline_graph = cross3d_baseline_graph();
    let platform = EdgePlatform::raspberry_pi4();
    print_row("baseline parameters", baseline_graph.total_parameters());
    print_row(
        "baseline model size (MB)",
        format!("{:.2}", baseline_graph.total_weight_bytes() as f64 / 1e6),
    );
    print_row(
        "baseline MACs per frame (M)",
        format!("{:.1}", baseline_graph.total_macs() as f64 / 1e6),
    );
    print_row(
        "bottleneck operator",
        &baseline_graph.bottleneck().expect("non-empty graph").name,
    );
    // The design space of Fig. 4: feature resolution, channel widths, pruning and
    // quantization, judged against an accuracy floor.
    let space = DesignSpace {
        feature_scales: vec![1.0, 0.75, 0.5],
        channel_scales: vec![1.0, 0.75, 0.5, 0.35, 0.25],
        prune_ratios: vec![0.0, 0.25, 0.5, 0.7],
        quantize_bits: vec![None, Some(8), Some(6)],
    };
    let mut evaluator = AnalyticEvaluator::new(baseline_graph.clone(), 0.93);
    let dse = CoDesignLoop::new(platform, space, 0.85).expect("valid loop");
    let report = dse.run(&mut evaluator).expect("exploration succeeds");

    // Model-only comparison (the 86%/47% claim is about the finetuned network).
    let network_macs = |graph: &ispot_codesign::ir::OpGraph| -> u64 {
        graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d { .. } | OpKind::Dense { .. }))
            .map(|o| o.macs())
            .sum()
    };
    let best_graph = report
        .best
        .point
        .apply_to(&baseline_graph)
        .expect("passes apply");
    println!();
    print_row("candidates evaluated", report.iterations.len());
    print_row("selected design point", format!("{:?}", report.best.point));
    print_row(
        "model size reduction (paper: ~86%)",
        format!("{:.1} %", 100.0 * report.size_reduction()),
    );
    print_row(
        "model compute reduction (MACs)",
        format!(
            "{:.1} %",
            100.0 * (1.0 - network_macs(&best_graph) as f64 / network_macs(&baseline_graph) as f64)
        ),
    );
    print_row(
        "end-to-end latency speedup on RasPi-4B model (paper model-level: ~1.47x)",
        format!("{:.2}x", report.speedup()),
    );
    print_row(
        "accuracy baseline -> optimized",
        format!(
            "{:.3} -> {:.3}",
            report.baseline.accuracy, report.best.accuracy
        ),
    );
    print_row(
        "estimated latency baseline -> optimized (ms/frame)",
        format!(
            "{:.2} -> {:.2}",
            report.baseline.latency_ms, report.best.latency_ms
        ),
    );
}
