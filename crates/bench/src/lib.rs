//! # ispot-bench
//!
//! Shared helpers for the experiment binaries (`src/bin/exp_*.rs`) and Criterion
//! benches that regenerate every quantitative claim of the paper's evaluation
//! (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured record).

#![forbid(unsafe_code)]

pub mod matrix;
pub mod scenarios;

use ispot_codesign::ir::{OpGraph, OpNode};
use ispot_roadsim::engine::{MultichannelAudio, Simulator};
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;

/// Sampling rate used by every experiment (matches the dataset protocol).
pub const SAMPLE_RATE: f64 = 16_000.0;

/// Builds the operator graph of the Cross3D-style hybrid pipeline at baseline
/// resolution: STFT front-end, GCC-PHAT for 15 microphone pairs, SRP steering over 181
/// directions and the CNN back-end. The absolute sizes follow the shapes used in the
/// `ispot-ssl` implementation so the cost model reflects the code that actually runs.
pub fn cross3d_baseline_graph() -> OpGraph {
    let mut g = OpGraph::new("cross3d-baseline");
    // Six microphones -> one FFT per channel (frame 2048).
    for m in 0..6 {
        g.push(OpNode::fft(&format!("fft_ch{m}"), 2048));
    }
    // 15 pairs of PHAT-weighted cross spectra.
    for p in 0..15 {
        g.push(OpNode::gcc_phat(&format!("gcc_pair{p}"), 1024));
    }
    // Conventional frequency-domain steering: 15 pairs x 181 directions x 850 bins.
    g.push(OpNode::srp_steering("srp_steering", 15, 181, 850));
    // Cross3D-style CNN over stacked SRP maps (16 x 181 input).
    g.push(OpNode::conv2d("conv1", 1, 32, (3, 3), (16, 181), 1));
    g.push(OpNode::activation("relu1", 32 * 16 * 181));
    g.push(OpNode::pool("pool1", 32 * 8 * 90));
    g.push(OpNode::conv2d("conv2", 32, 64, (3, 3), (8, 90), 1));
    g.push(OpNode::activation("relu2", 64 * 8 * 90));
    g.push(OpNode::pool("pool2", 64 * 4 * 45));
    g.push(OpNode::conv2d("conv3", 64, 64, (3, 3), (4, 45), 1));
    g.push(OpNode::pool("pool3", 64 * 2 * 22));
    g.push(OpNode::dense("fc1", 64 * 2 * 22, 512));
    g.push(OpNode::dense("fc2", 512, 181));
    g
}

/// Simulates a static broadband source at the given azimuth and distance, received by a
/// circular array, returning the rendered channels and the array geometry.
pub fn simulate_static_source(
    azimuth_deg: f64,
    distance_m: f64,
    num_mics: usize,
    num_samples: usize,
    seed: u64,
) -> (MultichannelAudio, MicrophoneArray) {
    let az = azimuth_deg.to_radians();
    let source_pos = Position::new(distance_m * az.cos(), distance_m * az.sin(), 1.0);
    let signal: Vec<f64> =
        ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::White, seed)
            .take(num_samples)
            .collect();
    let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
    let scene = SceneBuilder::new(SAMPLE_RATE)
        .source(SoundSource::new(signal, Trajectory::fixed(source_pos)))
        .array(array.clone())
        .reflection(false)
        .air_absorption(false)
        .build()
        .expect("valid scene");
    let audio = Simulator::new(scene)
        .expect("valid simulator")
        .run()
        .expect("simulation succeeds");
    (audio, array)
}

/// Simulates a source driving past the array while emitting `signal`, returning the
/// rendered channels and the array.
pub fn simulate_drive_by(
    signal: Vec<f64>,
    speed_mps: f64,
    lateral_offset_m: f64,
    num_mics: usize,
) -> (MultichannelAudio, MicrophoneArray) {
    let array = MicrophoneArray::circular(num_mics, 0.2, Position::new(0.0, 0.0, 1.0));
    let scene = SceneBuilder::new(SAMPLE_RATE)
        .source(SoundSource::new(
            signal,
            Trajectory::linear(
                Position::new(-60.0, lateral_offset_m, 1.0),
                Position::new(60.0, lateral_offset_m, 1.0),
                speed_mps,
            ),
        ))
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid scene");
    let audio = Simulator::new(scene)
        .expect("valid simulator")
        .run()
        .expect("simulation succeeds");
    (audio, array)
}

/// Prints a section header for experiment output.
pub fn print_header(experiment: &str, claim: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Prints one `label: value` row with aligned columns.
pub fn print_row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<42} {value}");
}

/// Returns true if `--full` was passed on the command line (experiments then run the
/// complete paper-scale protocol instead of the quick default).
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross3d_graph_is_large_and_has_srp_bottleneck_or_cnn() {
        let g = cross3d_baseline_graph();
        assert!(g.len() > 20);
        assert!(g.total_parameters() > 1_000_000);
        assert!(g.total_macs() > 10_000_000);
    }

    #[test]
    fn simulation_helpers_produce_audio() {
        let (audio, array) = simulate_static_source(30.0, 15.0, 4, 4096, 1);
        assert_eq!(audio.num_channels(), 4);
        assert_eq!(array.len(), 4);
        assert_eq!(audio.len(), 4096);
    }
}
