//! Procedural scenario matrix: seeded scene generation and aggregate scoring.
//!
//! Where [`crate::scenarios`] curates six hand-built scenes, this module
//! *samples* the scene space: source types × trajectories × environmental
//! maskers × SNR × array pose, organised into six [`Regime`]s (clean, masked,
//! street canyon, occluded, low-SNR, no-event). Generation is driven entirely
//! by a single `u64` seed through the vendored [`rand`] stand-in — the same
//! seed always produces the bit-identical scene list, and because the renderer
//! is bit-exact the same seed produces the bit-identical multichannel audio,
//! which the matrix tests pin.
//!
//! [`evaluate_matrix`] scores every generated scene with the shared
//! [`evaluate_scene`] core (frame F1, false-alarm rate, identity-aware
//! tracking, OSPA) and aggregates the population into per-regime
//! distributions (mean / median / 10th-percentile F1), a worst-k scene list
//! and two headline numbers gated in CI by [`MatrixGate`]. The aggregate JSON
//! ([`MatrixReport::to_json`], written as `BENCH_matrix.json` by
//! `exp_matrix`) deliberately excludes wall-clock latency so the artifact is
//! byte-identical across runs of the same seed.
//!
//! ```
//! use ispot_bench::matrix::{generate, MatrixConfig};
//!
//! let cfg = MatrixConfig { num_scenes: 6, duration_s: 0.25, ..MatrixConfig::smoke() };
//! let a = generate(&cfg).unwrap();
//! let b = generate(&cfg).unwrap();
//! assert_eq!(a.len(), 6);
//! assert_eq!(format!("{:?}", a[0].scene), format!("{:?}", b[0].scene));
//! ```

use crate::scenarios::{evaluate_scene, DoaTruth, EvalOptions, EvalScores};
use ispot_core::prelude::OperatingMode;
use ispot_roadsim::ambience::{AmbienceKind, AmbienceSynthesizer};
use ispot_roadsim::environment::{Occluder, StreetCanyon};
use ispot_roadsim::error::RoadSimError;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::{Scene, SceneBuilder};
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::labels::LabeledInterval;
use ispot_sed::sirens::{CarHornSynthesizer, SirenKind, SirenSynthesizer};
use ispot_sed::EventClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The condition families the matrix stratifies over, assigned round-robin so
/// every run covers all of them evenly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Event source over a quiet ambience bed — the easy reference stratum.
    Clean,
    /// Event source competing with a loud environmental masker (wind, rain or
    /// road noise) at a random bearing.
    Masked,
    /// Event and maskers inside a street canyon: two first-order wall
    /// reflections per source–mic pair join the direct and road paths.
    Canyon,
    /// Event approaches from behind an acoustic screen and emerges around its
    /// edge mid-scene.
    Occluded,
    /// Far-field event (60–120 m) under a nearby masker.
    LowSnr,
    /// Ambience and traffic only — scored on false alarms, not F1.
    NoEvent,
}

impl Regime {
    /// All regimes in round-robin order.
    pub const ALL: [Regime; 6] = [
        Regime::Clean,
        Regime::Masked,
        Regime::Canyon,
        Regime::Occluded,
        Regime::LowSnr,
        Regime::NoEvent,
    ];

    /// Stable kebab-case label used in scene names and the JSON artifact.
    pub fn label(&self) -> &'static str {
        match self {
            Regime::Clean => "clean",
            Regime::Masked => "masked",
            Regime::Canyon => "canyon",
            Regime::Occluded => "occluded",
            Regime::LowSnr => "low-snr",
            Regime::NoEvent => "no-event",
        }
    }

    /// Index into [`Regime::ALL`].
    pub fn index(&self) -> usize {
        match self {
            Regime::Clean => 0,
            Regime::Masked => 1,
            Regime::Canyon => 2,
            Regime::Occluded => 3,
            Regime::LowSnr => 4,
            Regime::NoEvent => 5,
        }
    }

    /// Whether scenes of this regime carry an event (and hence an F1 score).
    pub fn has_event(&self) -> bool {
        !matches!(self, Regime::NoEvent)
    }
}

/// Parameters of one matrix run. Everything that affects the generated scenes
/// lives here; two runs with equal configs are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixConfig {
    /// Master seed; each scene derives its own seed from this stream.
    pub seed: u64,
    /// Number of scenes to generate (regimes assigned round-robin).
    pub num_scenes: usize,
    /// Render sampling rate, Hz.
    pub sample_rate: f64,
    /// Duration of every scene, seconds.
    pub duration_s: f64,
}

impl MatrixConfig {
    /// The full CI population: 120 scenes (20 per regime) of 2 s at 16 kHz.
    pub fn full() -> Self {
        MatrixConfig {
            seed: 0x1507_2023,
            num_scenes: 120,
            sample_rate: 16_000.0,
            duration_s: 2.0,
        }
    }

    /// The smoke population: 18 scenes (3 per regime), same seed and scene
    /// parameters as [`full`](Self::full) — a prefix-like quick pass for CI.
    pub fn smoke() -> Self {
        MatrixConfig {
            num_scenes: 18,
            ..Self::full()
        }
    }
}

/// One generated scene with its ground truth, ready for [`evaluate_scene`].
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// Stable name: `m{index:03}-{regime}-{event|ambience}`.
    pub name: String,
    /// The condition family this scene was sampled for.
    pub regime: Regime,
    /// The per-scene seed (derived from the master seed); persisting it in the
    /// report lets any scene be regenerated in isolation.
    pub seed: u64,
    /// The renderable scene.
    pub scene: Scene,
    /// The (randomly posed) receiving array.
    pub array: MicrophoneArray,
    /// Operating mode for the session.
    pub mode: OperatingMode,
    /// Ground-truth detection timeline (empty for no-event scenes).
    pub timeline: Vec<LabeledInterval>,
    /// Ground-truth bearings (empty for no-event scenes).
    pub doa_truth: Vec<DoaTruth>,
}

/// The four event emitters the matrix samples from.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    Wail,
    Yelp,
    HiLow,
    Horn,
}

impl EventKind {
    const ALL: [EventKind; 4] = [
        EventKind::Wail,
        EventKind::Yelp,
        EventKind::HiLow,
        EventKind::Horn,
    ];

    fn label(self) -> &'static str {
        match self {
            EventKind::Wail => "wail",
            EventKind::Yelp => "yelp",
            EventKind::HiLow => "hilow",
            EventKind::Horn => "horn",
        }
    }

    fn class(self) -> EventClass {
        match self {
            EventKind::Wail => SirenKind::Wail.event_class(),
            EventKind::Yelp => SirenKind::Yelp.event_class(),
            EventKind::HiLow => SirenKind::HiLow.event_class(),
            EventKind::Horn => EventClass::CarHorn,
        }
    }

    fn synthesize(self, fs: f64, duration_s: f64) -> Vec<f64> {
        match self {
            EventKind::Wail => SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s),
            EventKind::Yelp => SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration_s),
            EventKind::HiLow => SirenSynthesizer::new(SirenKind::HiLow, fs).synthesize(duration_s),
            EventKind::Horn => CarHornSynthesizer::new(fs).synthesize(duration_s),
        }
    }
}

/// The roof array at a random pose: the stock irregular hexagon rotated by
/// `yaw` about its centroid and shifted by `(dx, dy)`. Bearing truths are
/// computed from the posed centroid, so truth and estimate share a frame.
fn posed_array(rng: &mut StdRng) -> MicrophoneArray {
    let yaw = rng.random_range(0.0..std::f64::consts::TAU);
    let dx = rng.random_range(-1.5..1.5);
    let dy = rng.random_range(-1.5..1.5);
    let base = MicrophoneArray::irregular_hexagon(Position::new(0.0, 0.0, 1.0));
    let c = base.centroid();
    let (s, co) = yaw.sin_cos();
    let positions = base
        .positions()
        .iter()
        .map(|p| {
            let (rx, ry) = (p.x - c.x, p.y - c.y);
            Position::new(
                c.x + dx + co * rx - s * ry,
                c.y + dy + s * rx + co * ry,
                p.z,
            )
        })
        .collect();
    MicrophoneArray::custom(positions).expect("hexagon pose is non-empty")
}

/// Samples an event trajectory. `max_lateral_m` bounds |y| so canyon scenes
/// keep their sources between the walls; shapes that would cross the walls
/// (crossings along y) are only drawn when the bound allows them.
fn sample_trajectory(rng: &mut StdRng, duration_s: f64, max_lateral_m: f64) -> Trajectory {
    let lane_bound = max_lateral_m.min(10.0);
    let shape = if max_lateral_m >= 16.0 {
        rng.random_range(0usize..4)
    } else {
        rng.random_range(0usize..3)
    };
    let side = if rng.random::<bool>() { 1.0 } else { -1.0 };
    let lane = side * rng.random_range(3.0..lane_bound);
    match shape {
        0 => {
            // Pass-by along x, centred on the array.
            let speed = rng.random_range(8.0..16.0);
            let half = (0.5 * speed * duration_s).max(4.0);
            Trajectory::linear(
                Position::new(-side * half, lane, 1.0),
                Position::new(side * half, lane, 1.0),
                speed,
            )
        }
        1 => {
            // Head-on approach from up the road.
            let speed = rng.random_range(10.0..20.0);
            let start_x = -rng.random_range(25.0..45.0);
            Trajectory::linear(
                Position::new(start_x, lane, 1.0),
                Position::new(-6.0, lane, 1.0),
                speed,
            )
        }
        2 => {
            // Stationary emitter (incident scene, parked horn). The lateral
            // component is clamped so canyon scenes keep it between the walls.
            let r = rng.random_range(5.0..15.0);
            let az = rng.random_range(0.0..std::f64::consts::TAU);
            let y = (r * az.sin()).clamp(-max_lateral_m, max_lateral_m);
            Trajectory::fixed(Position::new(r * az.cos(), y, 1.0))
        }
        _ => {
            // Crossing along y on a perpendicular road (open intersections only).
            let speed = rng.random_range(6.0..12.0);
            let x = side * rng.random_range(5.0..12.0);
            let half = (0.5 * speed * duration_s).max(4.0);
            Trajectory::linear(
                Position::new(x, -half, 1.0),
                Position::new(x, half, 1.0),
                speed,
            )
        }
    }
}

/// One environmental masker at a fixed random bearing.
fn sample_masker(
    rng: &mut StdRng,
    fs: f64,
    duration_s: f64,
    max_lateral_m: f64,
    gain_range: std::ops::Range<f64>,
) -> Result<SoundSource, RoadSimError> {
    let kind = [
        AmbienceKind::Wind,
        AmbienceKind::Rain,
        AmbienceKind::RoadNoise,
    ][rng.random_range(0usize..3)];
    let seed = rng.random::<u64>();
    let gain = rng.random_range(gain_range);
    let r = rng.random_range(6.0..14.0);
    let az = rng.random_range(0.0..std::f64::consts::TAU);
    let y = (r * az.sin()).clamp(-max_lateral_m, max_lateral_m);
    let signal = AmbienceSynthesizer::new(kind, fs, seed).synthesize(duration_s)?;
    Ok(SoundSource::new(
        signal,
        Trajectory::fixed(Position::new(r * az.cos(), y, 0.8)),
    )
    .with_gain(gain))
}

/// Generates scene `index` of the matrix from its derived `seed`.
fn generate_scene(
    index: usize,
    regime: Regime,
    seed: u64,
    cfg: &MatrixConfig,
) -> Result<GeneratedScenario, RoadSimError> {
    let mut rng = StdRng::from_seed(seed);
    let fs = cfg.sample_rate;
    let duration_s = cfg.duration_s;
    let array = posed_array(&mut rng);

    let mut builder = SceneBuilder::new(fs)
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33);

    // Regime geometry: canyon walls bound the usable lateral range; the
    // occluded regime drops a screen between the event's approach and the
    // array.
    let mut max_lateral_m = 24.0;
    match regime {
        Regime::Canyon => {
            let width = rng.random_range(18.0..26.0);
            let gain = rng.random_range(0.4..0.8);
            builder = builder.canyon(StreetCanyon::new(width, gain)?);
            max_lateral_m = width / 2.0 - 2.0;
        }
        Regime::Occluded => {
            let wall_y = rng.random_range(3.5..5.5);
            let wall_end = rng.random_range(6.0..10.0);
            builder = builder.occluder(Occluder::screen(
                Position::new(-14.0, wall_y, 0.0),
                Position::new(wall_end, wall_y, 0.0),
                rng.random_range(3.0..4.5),
            ));
        }
        _ => {}
    }

    let (event_label, timeline, doa_truth) = if regime.has_event() {
        let kind = EventKind::ALL[rng.random_range(0usize..4)];
        let trajectory = match regime {
            Regime::Occluded => {
                // Drive along x behind the screen (beyond wall_y) towards +x so
                // the source emerges around the screen's end mid-scene.
                let lane = rng.random_range(6.5..9.5);
                let speed = rng.random_range(10.0..18.0);
                let half = (0.5 * speed * duration_s).max(4.0);
                Trajectory::linear(
                    Position::new(-half, lane, 1.0),
                    Position::new(half, lane, 1.0),
                    speed,
                )
            }
            Regime::LowSnr => {
                // Far field: slow drift at 60-120 m.
                let r = rng.random_range(60.0..120.0);
                let az = rng.random_range(0.0..std::f64::consts::TAU);
                let start = Position::new(r * az.cos(), r * az.sin(), 1.5);
                let end = Position::new(start.x - 8.0, start.y - 6.0, 1.5);
                Trajectory::linear(start, end, rng.random_range(3.0..6.0))
            }
            _ => sample_trajectory(&mut rng, duration_s, max_lateral_m),
        };
        let gain = match regime {
            Regime::Clean => rng.random_range(2.5..4.0),
            Regime::LowSnr => rng.random_range(1.5..3.0),
            _ => rng.random_range(2.0..3.5),
        };
        builder = builder.source(
            SoundSource::new(kind.synthesize(fs, duration_s), trajectory.clone()).with_gain(gain),
        );
        (
            kind.label(),
            vec![LabeledInterval::new(kind.class(), 0.0, duration_s)],
            vec![DoaTruth {
                trajectory,
                start_s: 0.0,
                end_s: duration_s,
            }],
        )
    } else {
        ("ambience", Vec::new(), Vec::new())
    };

    // Masker bed. Clean scenes get a faint bed; masked/low-SNR/no-event
    // scenes get one or two loud maskers.
    let masker_gain = match regime {
        Regime::Clean => 0.02..0.08,
        Regime::Masked | Regime::LowSnr => 0.3..0.8,
        _ => 0.1..0.4,
    };
    builder = builder.source(sample_masker(
        &mut rng,
        fs,
        duration_s,
        max_lateral_m,
        masker_gain.clone(),
    )?);
    if matches!(regime, Regime::Masked | Regime::NoEvent) && rng.random::<bool>() {
        builder = builder.source(sample_masker(
            &mut rng,
            fs,
            duration_s,
            max_lateral_m,
            masker_gain,
        )?);
    }

    let scene = builder.build()?;
    Ok(GeneratedScenario {
        name: format!("m{index:03}-{}-{}", regime.label(), event_label),
        regime,
        seed,
        scene,
        array,
        mode: OperatingMode::Drive,
        timeline,
        doa_truth,
    })
}

/// Generates the full scene population of `cfg`, deterministically: the master
/// seed drives one [`StdRng`] stream whose draws become per-scene seeds, and
/// every scene is generated from its own seed only. Same config → bit-identical
/// scene list.
///
/// # Errors
///
/// Returns [`RoadSimError`] if a sampled scene fails validation — which would
/// be a generator bug, since the sampling ranges are chosen to satisfy the
/// scene invariants for every draw.
pub fn generate(cfg: &MatrixConfig) -> Result<Vec<GeneratedScenario>, RoadSimError> {
    let mut master = StdRng::from_seed(cfg.seed);
    let mut scenes = Vec::with_capacity(cfg.num_scenes);
    for index in 0..cfg.num_scenes {
        let seed = master.random::<u64>();
        let regime = Regime::ALL[index % Regime::ALL.len()];
        scenes.push(generate_scene(index, regime, seed, cfg)?);
    }
    Ok(scenes)
}

/// One scored scene of the matrix.
#[derive(Debug, Clone)]
pub struct SceneScore {
    /// Scene name (`m{index:03}-{regime}-{event}`).
    pub name: String,
    /// The scene's regime.
    pub regime: Regime,
    /// The scene's derived seed.
    pub seed: u64,
    /// The full score vector from [`evaluate_scene`].
    pub scores: EvalScores,
}

/// Aggregate distribution of one regime's F1 (event regimes) and false-alarm
/// rate.
#[derive(Debug, Clone)]
pub struct RegimeSummary {
    /// The regime.
    pub regime: Regime,
    /// Scenes scored in this regime.
    pub num_scenes: usize,
    /// Mean frame-level event F1 (0.0 for an empty regime).
    pub mean_f1: f64,
    /// Median F1.
    pub median_f1: f64,
    /// 10th-percentile F1 — the regime's weak tail.
    pub p10_f1: f64,
    /// Mean false-alarm rate over background-truth frames.
    pub mean_false_alarm_rate: f64,
    /// Mean OSPA over scenes where it was defined, degrees.
    pub mean_ospa_deg: Option<f64>,
    /// Total identity swaps across the regime.
    pub identity_swaps: usize,
}

/// The scored matrix: per-regime distributions, worst-k scenes and the two
/// headline aggregates the CI gate checks.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Master seed the population was generated from.
    pub seed: u64,
    /// Scenes scored.
    pub num_scenes: usize,
    /// Per-regime summaries, in [`Regime::ALL`] order (empty regimes omitted).
    pub regimes: Vec<RegimeSummary>,
    /// The `k` lowest-F1 event scenes, worst first.
    pub worst_scenes: Vec<SceneScore>,
    /// Mean F1 over every event scene.
    pub mean_event_f1: f64,
    /// Mean false-alarm rate over the no-event scenes (0.0 if none were run).
    pub no_event_false_alarm_rate: f64,
    /// All per-scene scores in generation order.
    pub scenes: Vec<SceneScore>,
}

/// How many worst scenes the report keeps.
pub const WORST_K: usize = 5;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

impl MatrixReport {
    /// Aggregates per-scene scores into the report. Exposed so the gate can be
    /// tested on synthetic populations without rendering audio.
    pub fn from_scores(seed: u64, scenes: Vec<SceneScore>) -> Self {
        let mut regimes = Vec::new();
        for regime in Regime::ALL {
            let of_regime: Vec<&SceneScore> =
                scenes.iter().filter(|s| s.regime == regime).collect();
            if of_regime.is_empty() {
                continue;
            }
            let mut f1s: Vec<f64> = of_regime.iter().map(|s| s.scores.event_f1).collect();
            f1s.sort_unstable_by(f64::total_cmp);
            let n = of_regime.len() as f64;
            let (mut ospa_sum, mut ospa_n) = (0.0, 0usize);
            for s in &of_regime {
                if let Some(o) = s.scores.mean_ospa_deg {
                    ospa_sum += o;
                    ospa_n += 1;
                }
            }
            regimes.push(RegimeSummary {
                regime,
                num_scenes: of_regime.len(),
                mean_f1: f1s.iter().sum::<f64>() / n,
                median_f1: quantile(&f1s, 0.5),
                p10_f1: quantile(&f1s, 0.1),
                mean_false_alarm_rate: of_regime
                    .iter()
                    .map(|s| s.scores.false_alarm_rate)
                    .sum::<f64>()
                    / n,
                mean_ospa_deg: (ospa_n > 0).then(|| ospa_sum / ospa_n as f64),
                identity_swaps: of_regime.iter().map(|s| s.scores.identity_swaps).sum(),
            });
        }

        let event_scenes: Vec<&SceneScore> =
            scenes.iter().filter(|s| s.regime.has_event()).collect();
        let mean_event_f1 = if event_scenes.is_empty() {
            0.0
        } else {
            event_scenes.iter().map(|s| s.scores.event_f1).sum::<f64>() / event_scenes.len() as f64
        };
        let no_event: Vec<&SceneScore> = scenes.iter().filter(|s| !s.regime.has_event()).collect();
        let no_event_false_alarm_rate = if no_event.is_empty() {
            0.0
        } else {
            no_event
                .iter()
                .map(|s| s.scores.false_alarm_rate)
                .sum::<f64>()
                / no_event.len() as f64
        };

        let mut worst: Vec<SceneScore> = event_scenes.into_iter().cloned().collect();
        worst.sort_by(|a, b| {
            a.scores
                .event_f1
                .total_cmp(&b.scores.event_f1)
                .then_with(|| a.name.cmp(&b.name))
        });
        worst.truncate(WORST_K);

        MatrixReport {
            seed,
            num_scenes: scenes.len(),
            regimes,
            worst_scenes: worst,
            mean_event_f1,
            no_event_false_alarm_rate,
            scenes,
        }
    }

    /// Serializes the report as deterministic JSON (hand-rolled: the workspace
    /// carries no JSON dependency). Wall-clock latency is deliberately
    /// excluded so two runs of the same seed produce byte-identical artifacts;
    /// perf tracking lives in `BENCH_scenarios.json`.
    pub fn to_json(&self) -> String {
        let num = |v: Option<f64>| match v {
            Some(e) if e.is_finite() => format!("{e:.4}"),
            _ => "null".to_string(),
        };
        let scene_obj = |s: &SceneScore| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"regime\":\"{}\",\"seed\":{},",
                    "\"frames\":{},\"events\":{},\"event_f1\":{:.4},",
                    "\"false_alarm_rate\":{:.4},\"mean_doa_error_deg\":{},",
                    "\"confirmed_tracks\":{},\"identity_swaps\":{},",
                    "\"mean_track_error_deg\":{},\"mean_ospa_deg\":{}}}"
                ),
                s.name,
                s.regime.label(),
                s.seed,
                s.scores.num_frames,
                s.scores.num_events,
                s.scores.event_f1,
                s.scores.false_alarm_rate,
                num(s.scores.mean_doa_error_deg),
                s.scores.confirmed_tracks,
                s.scores.identity_swaps,
                num(s.scores.mean_track_error_deg),
                num(s.scores.mean_ospa_deg),
            )
        };
        let regimes: Vec<String> = self
            .regimes
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"regime\":\"{}\",\"scenes\":{},\"mean_f1\":{:.4},",
                        "\"median_f1\":{:.4},\"p10_f1\":{:.4},",
                        "\"mean_false_alarm_rate\":{:.4},\"mean_ospa_deg\":{},",
                        "\"identity_swaps\":{}}}"
                    ),
                    r.regime.label(),
                    r.num_scenes,
                    r.mean_f1,
                    r.median_f1,
                    r.p10_f1,
                    r.mean_false_alarm_rate,
                    num(r.mean_ospa_deg),
                    r.identity_swaps,
                )
            })
            .collect();
        let worst: Vec<String> = self
            .worst_scenes
            .iter()
            .map(|s| format!("    {}", scene_obj(s)))
            .collect();
        let scenes: Vec<String> = self
            .scenes
            .iter()
            .map(|s| format!("    {}", scene_obj(s)))
            .collect();
        format!(
            concat!(
                "{{\n  \"seed\": {},\n  \"num_scenes\": {},\n",
                "  \"mean_event_f1\": {:.4},\n",
                "  \"no_event_false_alarm_rate\": {:.4},\n",
                "  \"regimes\": [\n{}\n  ],\n",
                "  \"worst_scenes\": [\n{}\n  ],\n",
                "  \"scenes\": [\n{}\n  ]\n}}\n"
            ),
            self.seed,
            self.num_scenes,
            self.mean_event_f1,
            self.no_event_false_alarm_rate,
            regimes.join(",\n"),
            worst.join(",\n"),
            scenes.join(",\n"),
        )
    }

    /// Formats the per-regime summary table for the experiment output.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<10} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}\n",
            "regime", "scenes", "meanF1", "medF1", "p10F1", "FA-rate", "ospa", "swaps"
        );
        for r in &self.regimes {
            let ospa = match r.mean_ospa_deg {
                Some(o) => format!("{o:>8.1}"),
                None => format!("{:>8}", "-"),
            };
            out.push_str(&format!(
                "{:<10} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {} {:>6}\n",
                r.regime.label(),
                r.num_scenes,
                r.mean_f1,
                r.median_f1,
                r.p10_f1,
                r.mean_false_alarm_rate,
                ospa,
                r.identity_swaps,
            ));
        }
        out
    }
}

/// The CI quality gate over the matrix aggregates. Thresholds are pinned well
/// below the measured baseline (see `EXPERIMENTS.md`) so they trip on real
/// regressions, not sampling noise.
#[derive(Debug, Clone, Copy)]
pub struct MatrixGate {
    /// Minimum mean F1 over all event scenes.
    pub min_mean_event_f1: f64,
    /// Minimum mean F1 within every event regime.
    pub min_regime_mean_f1: f64,
    /// Maximum mean false-alarm rate over the no-event scenes.
    pub max_no_event_false_alarm_rate: f64,
}

impl Default for MatrixGate {
    fn default() -> Self {
        // Measured baseline (seed 0x1507_2023): full 120 scenes — mean event
        // F1 0.749, regime means 0.446 (low-SNR) to 0.997 (clean), no-event
        // false-alarm rate 0.258; smoke 18 scenes — 0.792 / 0.433 / 0.211.
        // Thresholds sit well under the weakest measured stratum so they trip
        // on real regressions, not sampling noise; the broken-pipeline
        // inverted check scores 0.000 everywhere and must stay below them.
        MatrixGate {
            min_mean_event_f1: 0.55,
            min_regime_mean_f1: 0.25,
            max_no_event_false_alarm_rate: 0.40,
        }
    }
}

impl MatrixGate {
    /// Checks the report; returns one message per violated threshold (empty →
    /// the gate passes).
    pub fn check(&self, report: &MatrixReport) -> Vec<String> {
        let mut failures = Vec::new();
        if report.mean_event_f1 < self.min_mean_event_f1 {
            failures.push(format!(
                "mean event F1 {:.3} < {:.3}",
                report.mean_event_f1, self.min_mean_event_f1
            ));
        }
        for r in &report.regimes {
            if r.regime.has_event() && r.mean_f1 < self.min_regime_mean_f1 {
                failures.push(format!(
                    "regime {} mean F1 {:.3} < {:.3}",
                    r.regime.label(),
                    r.mean_f1,
                    self.min_regime_mean_f1
                ));
            }
        }
        if report.no_event_false_alarm_rate > self.max_no_event_false_alarm_rate {
            failures.push(format!(
                "no-event false-alarm rate {:.3} > {:.3}",
                report.no_event_false_alarm_rate, self.max_no_event_false_alarm_rate
            ));
        }
        failures
    }
}

/// Generates and scores the matrix population of `cfg` with the stock pipeline
/// configuration.
///
/// # Errors
///
/// Propagates generation, simulation and pipeline errors.
pub fn evaluate_matrix(cfg: &MatrixConfig) -> Result<MatrixReport, Box<dyn std::error::Error>> {
    evaluate_matrix_with(cfg, EvalOptions::default())
}

/// [`evaluate_matrix`] with pipeline overrides — the inverted CI check scores
/// the population under a deliberately broken configuration (a near-1.0
/// confidence threshold) and asserts the gate fails.
///
/// # Errors
///
/// Propagates generation, simulation and pipeline errors.
pub fn evaluate_matrix_with(
    cfg: &MatrixConfig,
    options: EvalOptions,
) -> Result<MatrixReport, Box<dyn std::error::Error>> {
    let scenarios = generate(cfg)?;
    let mut scores = Vec::with_capacity(scenarios.len());
    for s in &scenarios {
        let scene_scores = evaluate_scene(
            &s.scene,
            &s.array,
            s.mode,
            &s.timeline,
            &s.doa_truth,
            options,
        )?;
        scores.push(SceneScore {
            name: s.name.clone(),
            regime: s.regime,
            seed: s.seed,
            scores: scene_scores,
        });
    }
    Ok(MatrixReport::from_scores(cfg.seed, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_roadsim::engine::Simulator;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            seed: 7,
            num_scenes: 6,
            sample_rate: 8_000.0,
            duration_s: 0.3,
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = generate(&tiny()).unwrap();
        let b = generate(&tiny()).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = generate(&MatrixConfig { seed: 8, ..tiny() }).unwrap();
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn round_robin_covers_every_regime() {
        let scenes = generate(&tiny()).unwrap();
        for (i, regime) in Regime::ALL.iter().enumerate() {
            assert_eq!(scenes[i].regime, *regime);
            assert!(
                scenes[i].name.contains(regime.label()),
                "{}",
                scenes[i].name
            );
        }
    }

    #[test]
    fn every_generated_scene_is_renderable_and_labeled() {
        let scenes = generate(&MatrixConfig {
            num_scenes: 12,
            ..tiny()
        })
        .unwrap();
        assert_eq!(scenes.len(), 12);
        for s in &scenes {
            Simulator::new(s.scene.clone()).expect(&s.name);
            if s.regime.has_event() {
                assert!(!s.timeline.is_empty(), "{}: timeline", s.name);
                assert!(!s.doa_truth.is_empty(), "{}: doa truth", s.name);
            } else {
                assert!(s.timeline.is_empty());
                assert!(s.doa_truth.is_empty());
            }
        }
    }

    fn synthetic_score(regime: Regime, f1: f64, fa: f64) -> SceneScore {
        SceneScore {
            name: format!("syn-{}", regime.label()),
            regime,
            seed: 1,
            scores: EvalScores {
                num_frames: 10,
                num_events: 5,
                event_f1: f1,
                event_precision: f1,
                event_recall: f1,
                false_alarm_rate: fa,
                mean_doa_error_deg: Some(4.0),
                doa_scored: 5,
                duty_cycle: 1.0,
                confirmed_tracks: 1,
                identity_swaps: 0,
                mean_track_error_deg: Some(4.0),
                worst_track_error_deg: Some(6.0),
                mean_ospa_deg: Some(8.0),
                mean_frame_latency_ms: 123.0,
            },
        }
    }

    #[test]
    fn gate_passes_healthy_and_fails_collapsed_populations() {
        let healthy: Vec<SceneScore> = Regime::ALL
            .iter()
            .map(|&r| synthetic_score(r, if r.has_event() { 0.9 } else { 0.0 }, 0.0))
            .collect();
        let report = MatrixReport::from_scores(1, healthy);
        assert!(MatrixGate::default().check(&report).is_empty());

        let collapsed: Vec<SceneScore> = Regime::ALL
            .iter()
            .map(|&r| synthetic_score(r, 0.0, 0.5))
            .collect();
        let report = MatrixReport::from_scores(1, collapsed);
        let failures = MatrixGate::default().check(&report);
        assert!(!failures.is_empty());
        assert!(failures.iter().any(|f| f.contains("mean event F1")));
        assert!(failures.iter().any(|f| f.contains("false-alarm")));
    }

    #[test]
    fn report_aggregates_and_json_are_latency_free_and_deterministic() {
        let scores: Vec<SceneScore> = (0..12)
            .map(|i| {
                let regime = Regime::ALL[i % 6];
                synthetic_score(regime, 0.5 + 0.04 * i as f64, 0.01 * i as f64)
            })
            .collect();
        let report = MatrixReport::from_scores(42, scores);
        assert_eq!(report.num_scenes, 12);
        assert_eq!(report.regimes.len(), 6);
        assert_eq!(report.worst_scenes.len(), WORST_K);
        // Worst list is sorted ascending by F1 and only holds event scenes.
        for w in &report.worst_scenes {
            assert!(w.regime.has_event());
        }
        for pair in report.worst_scenes.windows(2) {
            assert!(pair[0].scores.event_f1 <= pair[1].scores.event_f1);
        }
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        // Wall-clock numbers must not leak into the deterministic artifact.
        assert!(!a.contains("latency"));
        assert!(!a.contains("123"));
        assert!(a.contains("\"regimes\""));
        assert!(a.contains("\"worst_scenes\""));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 1.5);
        assert!(quantile(&[], 0.5).abs() < f64::EPSILON);
    }
}
