//! A gallery of named, scored road scenes — the scenario evaluation harness.
//!
//! Each [`Scenario`] bundles a multi-source [`Scene`] (event emitters, traffic
//! maskers, transients — each on its own trajectory) with its ground truth: a
//! timeline of [`LabeledInterval`]s for detection scoring and the trajectories of
//! the event-emitting sources for DoA scoring. [`evaluate`] renders the scene,
//! pushes the audio through a full perception [`Session`] and scores the emitted
//! events with `ispot_sed::metrics` (frame-level event F1) and
//! `ispot_ssl::metrics` (nearest-truth tracked-DoA error).
//!
//! The stock scenes ([`all`]) mirror the conditions stressed by the I-SPOT paper
//! and the acoustic traffic-perception literature: a siren pass-by amid traffic,
//! crossing vehicles, an approaching emergency vehicle behind a masker, a
//! stationary array at an intersection, a far-field siren at low SNR, and a
//! park-mode door-slam transient between idling engines.
//!
//! ```
//! use ispot_bench::scenarios;
//!
//! let scenario = scenarios::siren_pass_by_in_traffic(16_000.0, 1.0);
//! assert_eq!(scenario.name, "siren-pass-by-traffic");
//! assert!(scenario.scene.sources.len() >= 3);
//! let report = scenarios::evaluate(&scenario).unwrap();
//! assert!(report.num_frames > 0);
//! ```

use ispot_core::prelude::*;
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::{Scene, SceneBuilder};
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use ispot_sed::labels::{frame_labels, LabeledInterval};
use ispot_sed::metrics::ClassificationReport;
use ispot_sed::noise::UrbanNoiseSynthesizer;
use ispot_sed::sirens::{CarHornSynthesizer, SirenKind, SirenSynthesizer};
use ispot_sed::EventClass;
use ispot_ssl::metrics::{ospa_deg, MultiSourceDoaScore, TrackIdentityScore};
use ispot_ssl::multitrack::TrackId;
use std::collections::BTreeSet;

/// Analysis frame length used by the harness (matches the pipeline default).
pub const FRAME_LEN: usize = 2048;
/// Analysis hop used by the harness.
pub const HOP: usize = 1024;

/// Ground truth for one event-emitting source: where it is (for bearing truth) and
/// when it is audible.
#[derive(Debug, Clone)]
pub struct DoaTruth {
    /// The source trajectory, parameterized by scene time.
    pub trajectory: Trajectory,
    /// Time the source becomes audible, seconds.
    pub start_s: f64,
    /// Time the source stops being audible, seconds.
    pub end_s: f64,
}

/// A named road scene plus its ground truth, ready for [`evaluate`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable kebab-case identifier (used in reports and the scenario gallery).
    pub name: &'static str,
    /// One-line description of the traffic situation.
    pub description: &'static str,
    /// Operating mode the session is evaluated in.
    pub mode: OperatingMode,
    /// The renderable scene.
    pub scene: Scene,
    /// The receiving array (same geometry the scene was built with).
    pub array: MicrophoneArray,
    /// Ground-truth detection timeline.
    pub timeline: Vec<LabeledInterval>,
    /// Ground-truth bearings of the event-emitting sources.
    pub doa_truth: Vec<DoaTruth>,
}

/// Per-scenario evaluation results: frame-level detection quality and
/// nearest-truth DoA error of the tracked events.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario identifier.
    pub name: &'static str,
    /// Frames pushed through the session.
    pub num_frames: usize,
    /// Events emitted by the session.
    pub num_events: usize,
    /// Frame-level binary event F1 (any siren/horn class vs background).
    pub event_f1: f64,
    /// Frame-level binary event precision.
    pub event_precision: f64,
    /// Frame-level binary event recall.
    pub event_recall: f64,
    /// Mean nearest-truth error of the tracked azimuth over scored events
    /// (degrees); `None` when no event carried a bearing while a truth was active.
    pub mean_doa_error_deg: Option<f64>,
    /// Number of events scored for DoA.
    pub doa_scored: usize,
    /// Fraction of frames on which the full analysis ran (trigger duty cycle in
    /// park mode, 1.0 in drive mode).
    pub duty_cycle: f64,
    /// Distinct confirmed track identities observed across the scene.
    pub confirmed_tracks: usize,
    /// Identity swaps: frames where a confirmed track's optimally assigned
    /// truth changed (with hysteresis, so truth-bearing crossings alone do not
    /// count).
    pub identity_swaps: usize,
    /// Mean bearing error of confirmed tracks against their **assigned** truth
    /// (optimal 1:1 assignment per frame), degrees.
    pub mean_track_error_deg: Option<f64>,
    /// Largest per-track mean bearing error, degrees — every track must stay on
    /// its own vehicle, not just the best one.
    pub worst_track_error_deg: Option<f64>,
    /// Mean OSPA (localization + cardinality) error of the confirmed track set
    /// against the active truth set, degrees, cutoff [`OSPA_CUTOFF_DEG`].
    pub mean_ospa_deg: Option<f64>,
    /// Mean end-to-end processing latency per frame, milliseconds (host).
    pub mean_frame_latency_ms: f64,
}

/// OSPA cutoff used by [`evaluate`]: bearing errors beyond this (and every
/// missing/spurious track) are charged this many degrees.
pub const OSPA_CUTOFF_DEG: f64 = 30.0;

/// Assignment hysteresis used by [`evaluate`]'s identity scoring: a track keeps
/// its standing truth unless an alternative is closer by more than this.
pub const IDENTITY_HYSTERESIS_DEG: f64 = 10.0;

impl ScenarioReport {
    /// Formats the report as one row of the scenario table.
    pub fn table_row(&self) -> String {
        let fmt_opt = |v: Option<f64>, width: usize| match v {
            Some(e) => format!("{e:>width$.1}"),
            None => format!("{:>width$}", "-"),
        };
        format!(
            "{:<26} {:>6} {:>7} {:>6.3} {:>6.3} {:>6.3} {} {:>6} {:>4} {:>5} {} {} {:>8.3} {:>5.2}",
            self.name,
            self.num_frames,
            self.num_events,
            self.event_f1,
            self.event_precision,
            self.event_recall,
            fmt_opt(self.mean_doa_error_deg, 8),
            self.doa_scored,
            self.confirmed_tracks,
            self.identity_swaps,
            fmt_opt(self.mean_track_error_deg, 7),
            fmt_opt(self.mean_ospa_deg, 7),
            self.mean_frame_latency_ms,
            self.duty_cycle,
        )
    }

    /// Header matching [`table_row`](Self::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<26} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8} {:>6} {:>4} {:>5} {:>7} {:>7} {:>8} {:>5}",
            "scenario",
            "frames",
            "events",
            "F1",
            "prec",
            "recall",
            "DoA(dg)",
            "scored",
            "trk",
            "swaps",
            "trkerr",
            "ospa",
            "ms/frm",
            "duty"
        )
    }

    /// Serializes the report as one JSON object (hand-rolled: the workspace
    /// carries no JSON dependency). Used by `exp_scenarios --json` to write the
    /// machine-readable `BENCH_scenarios.json` quality/perf artifact.
    pub fn json_object(&self, description: &str) -> String {
        let num = |v: Option<f64>| match v {
            Some(e) if e.is_finite() => format!("{e:.4}"),
            _ => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"description\":\"{}\",\"frames\":{},\"events\":{},",
                "\"event_f1\":{:.4},\"event_precision\":{:.4},\"event_recall\":{:.4},",
                "\"mean_doa_error_deg\":{},\"doa_scored\":{},\"duty_cycle\":{:.4},",
                "\"confirmed_tracks\":{},\"identity_swaps\":{},",
                "\"mean_track_error_deg\":{},\"worst_track_error_deg\":{},",
                "\"mean_ospa_deg\":{},\"mean_frame_latency_ms\":{:.4}}}"
            ),
            self.name,
            description.replace('"', "'"),
            self.num_frames,
            self.num_events,
            self.event_f1,
            self.event_precision,
            self.event_recall,
            num(self.mean_doa_error_deg),
            self.doa_scored,
            self.duty_cycle,
            self.confirmed_tracks,
            self.identity_swaps,
            num(self.mean_track_error_deg),
            num(self.worst_track_error_deg),
            num(self.mean_ospa_deg),
            self.mean_frame_latency_ms,
        )
    }

    /// Formats the report as one row of a Markdown table (for the scenario
    /// gallery in `ARCHITECTURE.md`).
    pub fn markdown_row(&self, description: &str) -> String {
        let fmt_opt = |v: Option<f64>| match v {
            Some(e) => format!("{e:.1}"),
            None => "–".to_string(),
        };
        format!(
            "| `{}` | {} | {:.3} | {:.3} / {:.3} | {} | {} / {} | {} | {:.2} |",
            self.name,
            description,
            self.event_f1,
            self.event_precision,
            self.event_recall,
            fmt_opt(self.mean_doa_error_deg),
            self.confirmed_tracks,
            self.identity_swaps,
            fmt_opt(self.mean_track_error_deg),
            self.duty_cycle,
        )
    }
}

/// The roof array shared by every scenario: six microphones on an **irregular**
/// hexagon (jittered angles and radii, ~0.2 m aperture) at 1 m height.
///
/// A regular circular array is invariant under reflection about its symmetry
/// axes, so the SRP map of a source at `+θ` carries a strong mirror lobe near
/// `−θ`; with several concurrent sources those persistent phantoms confirm as
/// spurious tracks. Jittering the geometry breaks the symmetry and removes the
/// mirror lobes — the irregular layout measurably cleans the multi-target
/// picture in the crossing-vehicles scene while leaving single-source scenes
/// as accurate as the regular hexagon.
fn roof_array() -> MicrophoneArray {
    MicrophoneArray::irregular_hexagon(Position::new(0.0, 0.0, 1.0))
}

fn urban(fs: f64, seed: u64, duration_s: f64) -> Vec<f64> {
    UrbanNoiseSynthesizer::new(fs, seed).synthesize(duration_s)
}

fn engine_idle(fs: f64, seed: u64, duration_s: f64) -> Vec<f64> {
    UrbanNoiseSynthesizer::new(fs, seed)
        .with_levels(1.6, 0.15, 0.1)
        .synthesize(duration_s)
}

/// Scene 1 — a yelp siren drives past the array amid two traffic maskers
/// (an oncoming vehicle on the opposite lane and a parked idler). `duration_s`
/// scales the pass length; 4.0 s is the paper-style full pass.
pub fn siren_pass_by_in_traffic(fs: f64, duration_s: f64) -> Scenario {
    let array = roof_array();
    let half = 7.5 * duration_s; // 15 m/s pass centred on the array
    let siren_traj = Trajectory::linear(
        Position::new(-half, 6.0, 1.0),
        Position::new(half, 6.0, 1.0),
        15.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration_s);
    let oncoming = SoundSource::new(
        urban(fs, 11, duration_s),
        Trajectory::linear(
            Position::new(half, -8.0, 1.0),
            Position::new(-half, -8.0, 1.0),
            12.0,
        ),
    )
    .with_gain(0.18);
    let idler = SoundSource::new(
        engine_idle(fs, 23, duration_s),
        Trajectory::fixed(Position::new(12.0, -10.0, 0.8)),
    )
    .with_gain(0.12);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(3.0))
        .source(oncoming)
        .source(idler)
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid pass-by scene");
    Scenario {
        name: "siren-pass-by-traffic",
        description: "yelp siren passes the array between two traffic maskers",
        mode: OperatingMode::Drive,
        scene,
        array,
        timeline: vec![LabeledInterval::new(EventClass::YelpSiren, 0.0, duration_s)],
        doa_truth: vec![DoaTruth {
            trajectory: siren_traj,
            start_s: 0.0,
            end_s: duration_s,
        }],
    }
}

/// Scene 2 — two emergency vehicles on perpendicular roads cross in front of
/// the array: a wail siren travelling along x and a yelp ambulance travelling
/// along y, plus a quiet broadband traffic masker. Their bearings sweep towards
/// each other and cross near the end of the scene — the identity-preservation
/// stress case for the multi-target tracker (two confirmed tracks, no swap).
pub fn crossing_vehicles(fs: f64) -> Scenario {
    let duration_s = 4.0;
    let array = roof_array();
    let siren_traj = Trajectory::linear(
        Position::new(-28.0, 8.0, 1.0),
        Position::new(28.0, 8.0, 1.0),
        14.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
    let crosser_traj = Trajectory::linear(
        Position::new(15.0, -16.0, 1.0),
        Position::new(15.0, 16.0, 1.0),
        8.0,
    );
    let crosser = SoundSource::new(
        SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration_s),
        crosser_traj.clone(),
    )
    .with_gain(1.5);
    let traffic = SoundSource::new(
        urban(fs, 31, duration_s),
        Trajectory::fixed(Position::new(-10.0, -14.0, 0.8)),
    )
    .with_gain(0.1);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(3.0))
        .source(crosser)
        .source(traffic)
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid crossing scene");
    Scenario {
        name: "crossing-vehicles",
        description: "wail siren and a yelp ambulance cross on perpendicular roads",
        mode: OperatingMode::Drive,
        scene,
        array,
        timeline: vec![
            LabeledInterval::new(EventClass::WailSiren, 0.0, duration_s),
            LabeledInterval::new(EventClass::YelpSiren, 0.0, duration_s),
        ],
        doa_truth: vec![
            DoaTruth {
                trajectory: siren_traj,
                start_s: 0.0,
                end_s: duration_s,
            },
            // The crossing ambulance is a first-class source: identity-aware
            // scoring demands a second stable track on it, not merely a
            // nearest-truth match.
            DoaTruth {
                trajectory: crosser_traj,
                start_s: 0.0,
                end_s: duration_s,
            },
        ],
    }
}

/// Scene 3 — an emergency vehicle approaches head-on from far behind a nearby
/// masker — a second siren blaring at an incident scene (a yelp, as services
/// use at a standstill); the approaching wail emerges from behind it
/// as it closes in. Identity-wise the tracker must hold one track on the
/// stationary masker and a second on the approaching vehicle, without swapping.
pub fn approaching_behind_masker(fs: f64) -> Scenario {
    let duration_s = 4.0;
    let array = roof_array();
    let siren_traj = Trajectory::linear(
        Position::new(-70.0, 2.0, 1.0),
        Position::new(-10.0, 2.0, 1.0),
        15.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
    let masker_pos = Trajectory::fixed(Position::new(5.0, -3.0, 0.7));
    let masker = SoundSource::new(
        SirenSynthesizer::new(SirenKind::Yelp, fs).synthesize(duration_s),
        masker_pos.clone(),
    )
    .with_gain(0.6);
    let idle = SoundSource::new(
        engine_idle(fs, 41, duration_s),
        Trajectory::fixed(Position::new(6.0, -2.5, 0.7)),
    )
    .with_gain(0.2);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(4.0))
        .source(masker)
        .source(idle)
        .array(array.clone())
        .reflection(true)
        .air_absorption(true)
        .filter_taps(33)
        .build()
        .expect("valid approach scene");
    Scenario {
        name: "approaching-behind-masker",
        description: "wail siren approaches head-on from 70 m behind a stationary siren masker",
        mode: OperatingMode::Drive,
        scene,
        array,
        timeline: vec![
            LabeledInterval::new(EventClass::WailSiren, 0.0, duration_s),
            LabeledInterval::new(EventClass::YelpSiren, 0.0, duration_s),
        ],
        doa_truth: vec![
            DoaTruth {
                trajectory: siren_traj,
                start_s: 0.0,
                end_s: duration_s,
            },
            DoaTruth {
                trajectory: masker_pos,
                start_s: 0.0,
                end_s: duration_s,
            },
        ],
    }
}

/// Scene 4 — the car waits at an intersection while a hi-low siren crosses on the
/// perpendicular road amid two further traffic sources.
pub fn intersection_wait(fs: f64) -> Scenario {
    let duration_s = 4.0;
    let array = roof_array();
    let siren_traj = Trajectory::linear(
        Position::new(-36.0, 12.0, 1.0),
        Position::new(36.0, 12.0, 1.0),
        18.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::HiLow, fs).synthesize(duration_s);
    let crosser_traj = Trajectory::linear(
        Position::new(12.0, -22.0, 1.0),
        Position::new(12.0, 22.0, 1.0),
        10.0,
    );
    // Tyre-hiss-forward mix so the crossing vehicle is spatially visible to
    // the tracker, not just an energy masker.
    let crosser_signal = UrbanNoiseSynthesizer::new(fs, 53)
        .with_levels(0.6, 1.0, 0.1)
        .synthesize(duration_s);
    let crosser = SoundSource::new(crosser_signal, crosser_traj.clone()).with_gain(0.25);
    let idler = SoundSource::new(
        engine_idle(fs, 59, duration_s),
        Trajectory::fixed(Position::new(-8.0, -5.0, 0.8)),
    )
    .with_gain(0.12);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(3.0))
        .source(crosser)
        .source(idler)
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid intersection scene");
    Scenario {
        name: "intersection-wait",
        description: "stationary array; hi-low siren crosses amid two traffic sources",
        mode: OperatingMode::Drive,
        scene,
        array,
        timeline: vec![LabeledInterval::new(
            EventClass::HiLowSiren,
            0.0,
            duration_s,
        )],
        doa_truth: vec![
            DoaTruth {
                trajectory: siren_traj,
                start_s: 0.0,
                end_s: duration_s,
            },
            DoaTruth {
                trajectory: crosser_traj,
                start_s: 0.0,
                end_s: duration_s,
            },
        ],
    }
}

/// Scene 5 — a far-field wail siren (130 m) under a nearby broadband masker:
/// the low-SNR stress case. Detection is expected to degrade here; the scenario
/// exists to chart that edge, not to pass a threshold.
pub fn far_field_low_snr(fs: f64) -> Scenario {
    let duration_s = 3.0;
    let array = roof_array();
    let siren_traj = Trajectory::linear(
        Position::new(120.0, 50.0, 1.5),
        Position::new(110.0, 40.0, 1.5),
        4.0,
    );
    let siren = SirenSynthesizer::new(SirenKind::Wail, fs).synthesize(duration_s);
    let masker = SoundSource::new(
        urban(fs, 61, duration_s),
        Trajectory::fixed(Position::new(7.0, -5.0, 0.8)),
    )
    .with_gain(0.35);
    let scene = SceneBuilder::new(fs)
        .source(SoundSource::new(siren, siren_traj.clone()).with_gain(3.0))
        .source(masker)
        .array(array.clone())
        .reflection(true)
        .air_absorption(true)
        .filter_taps(33)
        .build()
        .expect("valid far-field scene");
    Scenario {
        name: "far-field-low-snr",
        description: "wail siren at 130 m under a nearby masker (low-SNR stress case)",
        mode: OperatingMode::Drive,
        scene,
        array,
        timeline: vec![LabeledInterval::new(EventClass::WailSiren, 0.0, duration_s)],
        doa_truth: vec![DoaTruth {
            trajectory: siren_traj,
            start_s: 0.0,
            end_s: duration_s,
        }],
    }
}

/// Scene 6 — park mode: two idling engines flank the parked car; a door-slam-like
/// transient (a short horn blast) fires mid-scene. The energy trigger must wake
/// the pipeline for the transient while gating the idle stretches.
pub fn park_door_slam(fs: f64) -> Scenario {
    let duration_s = 4.0;
    let array = roof_array();
    let slam_start = 2.0;
    let slam_len = 0.4;
    let slam_pos = Trajectory::fixed(Position::new(6.0, -2.0, 1.0));
    let slam = CarHornSynthesizer::new(fs).synthesize(slam_len);
    let idler_a = SoundSource::new(
        engine_idle(fs, 71, duration_s),
        Trajectory::fixed(Position::new(4.0, 2.5, 0.6)),
    )
    .with_gain(0.06);
    let idler_b = SoundSource::new(
        engine_idle(fs, 73, duration_s),
        Trajectory::fixed(Position::new(-5.0, -3.0, 0.6)),
    )
    .with_gain(0.06);
    let scene = SceneBuilder::new(fs)
        .source(
            SoundSource::new(slam, slam_pos.clone())
                .with_start(slam_start)
                .with_gain(2.5),
        )
        .source(idler_a)
        .source(idler_b)
        .array(array.clone())
        .reflection(true)
        .air_absorption(false)
        .filter_taps(33)
        .build()
        .expect("valid park scene");
    Scenario {
        name: "park-door-slam",
        description: "park mode: door-slam transient between two idling engines",
        mode: OperatingMode::Park,
        scene,
        array,
        timeline: vec![LabeledInterval::new(
            EventClass::CarHorn,
            slam_start,
            slam_start + slam_len,
        )],
        doa_truth: vec![DoaTruth {
            trajectory: slam_pos,
            start_s: slam_start,
            end_s: slam_start + slam_len,
        }],
    }
}

/// All stock scenarios at their paper-style durations.
pub fn all(fs: f64) -> Vec<Scenario> {
    vec![
        siren_pass_by_in_traffic(fs, 4.0),
        crossing_vehicles(fs),
        approaching_behind_masker(fs),
        intersection_wait(fs),
        far_field_low_snr(fs),
        park_door_slam(fs),
    ]
}

/// Pipeline overrides for scoring a scene outside the stock configuration.
///
/// The scenario matrix's inverted CI check scores a deliberately broken
/// configuration (a near-1.0 confidence threshold that suppresses every
/// detection) to prove the aggregate gate actually fails when quality
/// collapses.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Overrides the engine's minimum detector confidence when set.
    pub confidence_threshold: Option<f64>,
}

/// Raw numeric scores of one scored scene — everything in [`ScenarioReport`]
/// except the identity fields, plus the false-alarm rate needed by no-event
/// scenes (where F1 is undefined because no positive frames exist).
#[derive(Debug, Clone)]
pub struct EvalScores {
    /// Frames pushed through the session.
    pub num_frames: usize,
    /// Events emitted by the session.
    pub num_events: usize,
    /// Frame-level binary event F1.
    pub event_f1: f64,
    /// Frame-level binary event precision.
    pub event_precision: f64,
    /// Frame-level binary event recall.
    pub event_recall: f64,
    /// Fraction of background-truth frames predicted as an event.
    pub false_alarm_rate: f64,
    /// Mean nearest-truth error of the tracked azimuth (degrees).
    pub mean_doa_error_deg: Option<f64>,
    /// Number of events scored for DoA.
    pub doa_scored: usize,
    /// Analysis duty cycle over the scene.
    pub duty_cycle: f64,
    /// Distinct confirmed track identities.
    pub confirmed_tracks: usize,
    /// Identity swaps.
    pub identity_swaps: usize,
    /// Mean assigned-truth bearing error of confirmed tracks, degrees.
    pub mean_track_error_deg: Option<f64>,
    /// Largest per-track mean bearing error, degrees.
    pub worst_track_error_deg: Option<f64>,
    /// Mean OSPA error, degrees, cutoff [`OSPA_CUTOFF_DEG`].
    pub mean_ospa_deg: Option<f64>,
    /// Mean end-to-end processing latency per frame, milliseconds (host).
    pub mean_frame_latency_ms: f64,
}

/// Renders a scene, runs a full perception session over the audio and scores
/// the emitted events against the given ground truth — the scoring core shared
/// by [`evaluate`] (the 6-scene gallery) and the procedural scenario matrix.
///
/// The session runs with `array` and `mode` at [`FRAME_LEN`]/[`HOP`]. Three
/// scoring layers:
///
/// * **detection** — frame-by-frame event-vs-background
///   (`ClassificationReport`), plus the false-alarm rate over
///   background-truth frames (the only defined detection number for no-event
///   scenes);
/// * **legacy DoA** — the best tracked bearing of every event against the
///   nearest simultaneously active source (`MultiSourceDoaScore`), kept for
///   continuity with the single-track harness;
/// * **identity-aware tracking** — every event's confirmed track set is
///   optimally assigned to the active truth set (`TrackIdentityScore`, with
///   [`IDENTITY_HYSTERESIS_DEG`]) for per-track error and swap counting, and
///   scored as a set with OSPA ([`OSPA_CUTOFF_DEG`]) so missing and spurious
///   tracks are charged too.
///
/// # Errors
///
/// Propagates simulation, pipeline-construction and metric errors.
pub fn evaluate_scene(
    scene: &Scene,
    array: &MicrophoneArray,
    mode: OperatingMode,
    timeline: &[LabeledInterval],
    doa_truth: &[DoaTruth],
    options: EvalOptions,
) -> Result<EvalScores, Box<dyn std::error::Error>> {
    let fs = scene.sample_rate;
    let audio = Simulator::new(scene.clone())?.run()?;
    let mut builder = PipelineBuilder::new(fs)
        .array(array)
        .frame_len(FRAME_LEN)
        .hop(HOP)
        .mode(mode)
        .search(SrpSearchConfig::hierarchical());
    if let Some(threshold) = options.confidence_threshold {
        builder = builder.confidence_threshold(threshold);
    }
    let engine = builder.build_engine()?;
    let mut session = engine.open_session();
    let mut sink = VecSink::new();
    let num_frames = session.process_recording_with(&audio, &mut sink)?;

    // Frame-level detection scoring: frames without an event are background.
    let mut predictions = vec![EventClass::Background; num_frames];
    for event in sink.events() {
        if event.frame_index < num_frames {
            predictions[event.frame_index] = event.class;
        }
    }
    let truth = frame_labels(timeline, num_frames, FRAME_LEN, HOP, fs);
    let report = ClassificationReport::from_predictions(&truth, &predictions)?;
    let (mut background_frames, mut false_alarms) = (0usize, 0usize);
    for (t, p) in truth.iter().zip(&predictions) {
        if *t == EventClass::Background {
            background_frames += 1;
            if *p != EventClass::Background {
                false_alarms += 1;
            }
        }
    }
    let false_alarm_rate = if background_frames > 0 {
        false_alarms as f64 / background_frames as f64
    } else {
        0.0
    };

    // Bearing truths at a given moment, one slot per `doa_truth` entry in
    // stable order: a momentarily inactive source is NaN, not dropped, so the
    // identity scorer's assignments stay keyed to the same vehicle throughout
    // (the metric helpers all skip non-finite bearings).
    let origin = array.centroid();
    let truths_at = |time_s: f64| -> Vec<f64> {
        doa_truth
            .iter()
            .map(|t| {
                if t.start_s <= time_s && time_s <= t.end_s {
                    t.trajectory
                        .position_at(time_s)
                        .azimuth_from(origin)
                        .to_degrees()
                } else {
                    f64::NAN
                }
            })
            .collect()
    };

    // Legacy DoA scoring plus the identity-aware layer.
    let mut doa = MultiSourceDoaScore::new();
    let mut identity = TrackIdentityScore::with_hysteresis(IDENTITY_HYSTERESIS_DEG);
    let mut confirmed_ids = BTreeSet::new();
    let mut frame_tracks: Vec<(TrackId, f64)> = Vec::new();
    let mut ospa_sum = 0.0;
    let mut ospa_count = 0usize;
    for event in sink.events() {
        let truths = truths_at(event.time_s);
        if let Some(estimate) = event.tracked_azimuth_deg.or(event.azimuth_deg) {
            doa.add(estimate, &truths);
        }
        frame_tracks.clear();
        for track in event.tracks.confirmed() {
            confirmed_ids.insert(track.id);
            frame_tracks.push((track.id, track.azimuth_deg));
        }
        identity.observe_frame(&frame_tracks, &truths);
        if truths.iter().any(|t| t.is_finite()) {
            let bearings: Vec<f64> = frame_tracks.iter().map(|(_, az)| *az).collect();
            ospa_sum += ospa_deg(&bearings, &truths, OSPA_CUTOFF_DEG);
            ospa_count += 1;
        }
    }

    Ok(EvalScores {
        num_frames,
        num_events: sink.events().len(),
        event_f1: report.event_f1(),
        event_precision: report.event_precision(),
        event_recall: report.event_recall(),
        false_alarm_rate,
        mean_doa_error_deg: doa.mean_error_deg(),
        doa_scored: doa.count(),
        duty_cycle: session.analysis_duty_cycle(),
        confirmed_tracks: confirmed_ids.len(),
        identity_swaps: identity.swap_count(),
        mean_track_error_deg: identity.mean_error_deg(),
        worst_track_error_deg: identity.worst_track_mean_error_deg(),
        mean_ospa_deg: (ospa_count > 0).then(|| ospa_sum / ospa_count as f64),
        mean_frame_latency_ms: session.latency_report().mean_frame_ms(),
    })
}

/// Renders a scenario, runs a full perception session over the audio and scores
/// the emitted events against the scenario's ground truth — see
/// [`evaluate_scene`] for the scoring layers.
///
/// # Errors
///
/// Propagates simulation, pipeline-construction and metric errors.
pub fn evaluate(scenario: &Scenario) -> Result<ScenarioReport, Box<dyn std::error::Error>> {
    let scores = evaluate_scene(
        &scenario.scene,
        &scenario.array,
        scenario.mode,
        &scenario.timeline,
        &scenario.doa_truth,
        EvalOptions::default(),
    )?;
    Ok(ScenarioReport {
        name: scenario.name,
        num_frames: scores.num_frames,
        num_events: scores.num_events,
        event_f1: scores.event_f1,
        event_precision: scores.event_precision,
        event_recall: scores.event_recall,
        mean_doa_error_deg: scores.mean_doa_error_deg,
        doa_scored: scores.doa_scored,
        duty_cycle: scores.duty_cycle,
        confirmed_tracks: scores.confirmed_tracks,
        identity_swaps: scores.identity_swaps,
        mean_track_error_deg: scores.mean_track_error_deg,
        worst_track_error_deg: scores.worst_track_error_deg,
        mean_ospa_deg: scores.mean_ospa_deg,
        mean_frame_latency_ms: scores.mean_frame_latency_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_scenarios_are_well_formed() {
        let scenarios = all(16_000.0);
        assert!(scenarios.len() >= 6);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            scenarios.len(),
            "scenario names must be unique"
        );
        for s in &scenarios {
            assert!(
                s.scene.sources.len() >= 2,
                "{}: multi-source scenes only",
                s.name
            );
            assert!(!s.timeline.is_empty(), "{}: timeline required", s.name);
            assert!(!s.doa_truth.is_empty(), "{}: DoA truth required", s.name);
            assert!(s.scene.duration_samples() > 0);
            // Every scene is renderable (trajectories above the road etc.).
            Simulator::new(s.scene.clone()).expect(s.name);
        }
    }
}
