//! Spherical-spreading attenuation (the gain blocks `G1..G3` of Fig. 2).

use serde::{Deserialize, Serialize};

/// Spherical (point-source) spreading model: amplitude decays as `1/r` relative to a
/// reference distance.
///
/// # Example
///
/// ```
/// use ispot_roadsim::attenuation::SphericalSpreading;
///
/// let model = SphericalSpreading::default();
/// // Doubling the distance halves the amplitude (−6 dB).
/// let g1 = model.gain_at(10.0);
/// let g2 = model.gain_at(20.0);
/// assert!((g1 / g2 - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SphericalSpreading {
    /// Distance (metres) at which the gain is unity.
    pub reference_distance_m: f64,
    /// Minimum distance used in the gain computation, to avoid the singularity when a
    /// source passes arbitrarily close to a microphone.
    pub minimum_distance_m: f64,
}

impl Default for SphericalSpreading {
    fn default() -> Self {
        SphericalSpreading {
            reference_distance_m: 1.0,
            minimum_distance_m: 0.25,
        }
    }
}

impl SphericalSpreading {
    /// Creates a spreading model with the given reference distance (gain = 1 there).
    pub fn new(reference_distance_m: f64) -> Self {
        SphericalSpreading {
            reference_distance_m: reference_distance_m.max(1e-6),
            minimum_distance_m: 0.25,
        }
    }

    /// Amplitude gain at `distance_m` metres from the source.
    pub fn gain_at(&self, distance_m: f64) -> f64 {
        self.reference_distance_m / distance_m.max(self.minimum_distance_m)
    }

    /// Attenuation in dB (positive numbers mean loss) at `distance_m`.
    pub fn attenuation_db(&self, distance_m: f64) -> f64 {
        -20.0 * self.gain_at(distance_m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_is_unity_at_reference_distance() {
        let m = SphericalSpreading::new(2.0);
        assert!((m.gain_at(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_distance_law() {
        let m = SphericalSpreading::default();
        assert!((m.gain_at(5.0) - 0.2).abs() < 1e-12);
        assert!((m.attenuation_db(10.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn close_distances_are_clamped() {
        let m = SphericalSpreading::default();
        assert_eq!(m.gain_at(0.0), m.gain_at(0.1));
        assert!(m.gain_at(0.0).is_finite());
    }
}
