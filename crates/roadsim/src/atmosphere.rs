//! Atmospheric model: speed of sound and ISO 9613-1 air absorption.
//!
//! pyroadacoustics models air absorption with FIR filters derived from the standard
//! atmospheric-absorption curves (Fig. 2, the `H_air` blocks); this module computes
//! those curves and designs matching filters.

use crate::error::RoadSimError;
use ispot_dsp::fir::{FirDesign, FirFilter};
use serde::{Deserialize, Serialize};

/// Atmospheric conditions controlling sound propagation.
///
/// # Example
///
/// ```
/// use ispot_roadsim::atmosphere::Atmosphere;
///
/// let atm = Atmosphere::default();
/// // Speed of sound at 20 °C is about 343 m/s.
/// assert!((atm.speed_of_sound() - 343.0).abs() < 1.0);
/// // Absorption grows with frequency.
/// assert!(atm.absorption_db_per_m(8000.0) > atm.absorption_db_per_m(500.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atmosphere {
    /// Air temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Relative humidity in percent (0–100).
    pub relative_humidity: f64,
    /// Atmospheric pressure in kilopascal.
    pub pressure_kpa: f64,
}

impl Default for Atmosphere {
    fn default() -> Self {
        Atmosphere {
            temperature_c: 20.0,
            relative_humidity: 50.0,
            pressure_kpa: 101.325,
        }
    }
}

impl Atmosphere {
    /// Creates an atmosphere, validating the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns an error if the temperature is below −50 °C or above 60 °C, the humidity
    /// is outside 0–100 %, or the pressure is not positive.
    pub fn new(
        temperature_c: f64,
        relative_humidity: f64,
        pressure_kpa: f64,
    ) -> Result<Self, RoadSimError> {
        if !(-50.0..=60.0).contains(&temperature_c) {
            return Err(RoadSimError::invalid_parameter(
                "temperature_c",
                format!("must be within [-50, 60] C, got {temperature_c}"),
            ));
        }
        if !(0.0..=100.0).contains(&relative_humidity) {
            return Err(RoadSimError::invalid_parameter(
                "relative_humidity",
                format!("must be within [0, 100] %, got {relative_humidity}"),
            ));
        }
        if pressure_kpa <= 0.0 {
            return Err(RoadSimError::invalid_parameter(
                "pressure_kpa",
                "must be positive",
            ));
        }
        Ok(Atmosphere {
            temperature_c,
            relative_humidity,
            pressure_kpa,
        })
    }

    /// Speed of sound in m/s for the configured temperature.
    pub fn speed_of_sound(&self) -> f64 {
        331.3 * (1.0 + self.temperature_c / 273.15).sqrt()
    }

    /// Pure-tone atmospheric absorption coefficient in dB per metre at `freq_hz`,
    /// following ISO 9613-1.
    pub fn absorption_db_per_m(&self, freq_hz: f64) -> f64 {
        let t = self.temperature_c + 273.15;
        let t0 = 293.15;
        let t01 = 273.16;
        let pa = self.pressure_kpa;
        let pr = 101.325;
        // Saturation vapour pressure ratio and molar concentration of water vapour.
        let psat_ratio = 10f64.powf(-6.8346 * (t01 / t).powf(1.261) + 4.6151);
        let h = self.relative_humidity * psat_ratio * (pr / pa);
        // Relaxation frequencies of oxygen and nitrogen.
        let fr_o = (pa / pr) * (24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h));
        let fr_n = (pa / pr)
            * (t / t0).powf(-0.5)
            * (9.0 + 280.0 * h * (-4.170 * ((t / t0).powf(-1.0 / 3.0) - 1.0)).exp());
        let f2 = freq_hz * freq_hz;
        8.686
            * f2
            * ((1.84e-11 * (pr / pa) * (t / t0).sqrt())
                + (t / t0).powf(-2.5)
                    * (0.01275 * (-2239.1 / t).exp() / (fr_o + f2 / fr_o)
                        + 0.1068 * (-3352.0 / t).exp() / (fr_n + f2 / fr_n)))
    }

    /// Linear magnitude response of the air-absorption filter for a propagation
    /// distance of `distance_m`, evaluated on `grid_points` uniformly spaced
    /// frequencies from DC to `fs/2`.
    pub fn absorption_magnitude_grid(
        &self,
        distance_m: f64,
        fs: f64,
        grid_points: usize,
    ) -> Vec<f64> {
        (0..grid_points)
            .map(|k| {
                let f = k as f64 / (grid_points.max(2) - 1) as f64 * fs / 2.0;
                let att_db = self.absorption_db_per_m(f) * distance_m.max(0.0);
                10f64.powf(-att_db / 20.0)
            })
            .collect()
    }

    /// Designs an FIR filter reproducing the air-absorption magnitude response for a
    /// propagation distance of `distance_m` at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `taps` is invalid (must be odd and non-zero).
    pub fn absorption_filter(
        &self,
        distance_m: f64,
        fs: f64,
        taps: usize,
    ) -> Result<FirFilter, RoadSimError> {
        let grid = self.absorption_magnitude_grid(distance_m, fs, 128);
        let coeffs = FirDesign::from_magnitude_response(taps, &grid)?;
        Ok(FirFilter::new(coeffs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_of_sound_increases_with_temperature() {
        let cold = Atmosphere::new(0.0, 50.0, 101.325).unwrap();
        let warm = Atmosphere::new(30.0, 50.0, 101.325).unwrap();
        assert!(warm.speed_of_sound() > cold.speed_of_sound());
        assert!((cold.speed_of_sound() - 331.3).abs() < 0.5);
    }

    #[test]
    fn absorption_is_monotonic_in_frequency() {
        let atm = Atmosphere::default();
        let mut last = 0.0;
        for f in [125.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0] {
            let a = atm.absorption_db_per_m(f);
            assert!(a >= last, "absorption must grow with frequency");
            last = a;
        }
    }

    #[test]
    fn absorption_matches_iso_reference_magnitude() {
        // ISO 9613-1 reference: at 20 C, 70 % RH, 1 atm, absorption at 1 kHz is about
        // 4.7-5.5 dB/km; at 4 kHz about 23-33 dB/km.
        let atm = Atmosphere::new(20.0, 70.0, 101.325).unwrap();
        let a1k = atm.absorption_db_per_m(1000.0) * 1000.0;
        let a4k = atm.absorption_db_per_m(4000.0) * 1000.0;
        assert!((3.0..8.0).contains(&a1k), "1 kHz: {a1k} dB/km");
        assert!((15.0..45.0).contains(&a4k), "4 kHz: {a4k} dB/km");
    }

    #[test]
    fn magnitude_grid_is_bounded_and_decreasing() {
        let atm = Atmosphere::default();
        let grid = atm.absorption_magnitude_grid(100.0, 16_000.0, 64);
        assert_eq!(grid.len(), 64);
        assert!(grid.iter().all(|&g| (0.0..=1.0).contains(&g)));
        assert!(grid[0] > grid[63]);
    }

    #[test]
    fn absorption_filter_attenuates_high_frequencies_more() {
        let atm = Atmosphere::default();
        let fs = 16_000.0;
        let filt = atm.absorption_filter(200.0, fs, 101).unwrap();
        let (g_low, _) = filt.frequency_response(250.0, fs);
        let (g_high, _) = filt.frequency_response(7000.0, fs);
        assert!(g_low > g_high, "low {g_low} vs high {g_high}");
    }

    #[test]
    fn invalid_conditions_are_rejected() {
        assert!(Atmosphere::new(-80.0, 50.0, 101.0).is_err());
        assert!(Atmosphere::new(20.0, 150.0, 101.0).is_err());
        assert!(Atmosphere::new(20.0, 50.0, 0.0).is_err());
    }

    #[test]
    fn zero_distance_filter_is_nearly_transparent() {
        let atm = Atmosphere::default();
        let grid = atm.absorption_magnitude_grid(0.0, 16_000.0, 32);
        assert!(grid.iter().all(|&g| (g - 1.0).abs() < 1e-9));
    }
}
