//! Environmental masker synthesis: wind, rain and road noise.
//!
//! These are the weather and traffic backgrounds the scenario matrix mixes
//! under its event sources. Each synthesizer is fully seeded — the same
//! `(kind, fs, seed)` triple always produces the bit-identical waveform — so
//! generated scenes can be pinned by determinism tests. The spectral shapes
//! are first-order approximations of the measured spectra:
//!
//! * **wind** — low-passed pink noise with slow gust amplitude modulation
//!   (energy concentrated below ~250 Hz, 0.2–0.6 Hz gust rate);
//! * **rain** — high-passed white noise (broadband drop impacts, rising
//!   spectrum above ~1 kHz) with a light fast shimmer;
//! * **road noise** — brown-noise rumble low-passed at 300 Hz plus a pink
//!   tyre-hiss band, the distant-traffic bed.

use crate::error::RoadSimError;
use ispot_dsp::biquad::{Biquad, BiquadDesign};
use ispot_dsp::generator::{NoiseKind, NoiseSource};
use serde::{Deserialize, Serialize};

/// Which environmental masker to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmbienceKind {
    /// Gusting wind: low-frequency pink noise with slow amplitude modulation.
    Wind,
    /// Rain: broadband high-frequency noise from drop impacts.
    Rain,
    /// Distant traffic: rumble plus tyre hiss.
    RoadNoise,
}

impl AmbienceKind {
    /// Stable lowercase label, used in scene names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AmbienceKind::Wind => "wind",
            AmbienceKind::Rain => "rain",
            AmbienceKind::RoadNoise => "road-noise",
        }
    }
}

/// Seeded synthesizer for one environmental masker.
///
/// # Example
///
/// ```
/// use ispot_roadsim::ambience::{AmbienceKind, AmbienceSynthesizer};
///
/// let synth = AmbienceSynthesizer::new(AmbienceKind::Rain, 16_000.0, 42);
/// let a = synth.synthesize(0.5).unwrap();
/// let b = synth.synthesize(0.5).unwrap();
/// assert_eq!(a.len(), 8000);
/// assert_eq!(a, b); // same seed -> bit-identical
/// assert!(a.iter().all(|x| x.abs() <= 0.9 + 1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct AmbienceSynthesizer {
    kind: AmbienceKind,
    fs: f64,
    seed: u64,
}

impl AmbienceSynthesizer {
    /// Creates a synthesizer of `kind` at sampling rate `fs` with random `seed`.
    pub fn new(kind: AmbienceKind, fs: f64, seed: u64) -> Self {
        AmbienceSynthesizer { kind, fs, seed }
    }

    /// The masker kind.
    pub fn kind(&self) -> AmbienceKind {
        self.kind
    }

    /// Synthesizes `duration_s` seconds of the masker, peak-normalized to 0.9.
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidParameter`] if the sampling rate cannot
    /// support the synthesis filters (non-positive or non-finite `fs`).
    pub fn synthesize(&self, duration_s: f64) -> Result<Vec<f64>, RoadSimError> {
        let n = (duration_s * self.fs).max(0.0) as usize;
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut out = match self.kind {
            AmbienceKind::Wind => self.wind(n)?,
            AmbienceKind::Rain => self.rain(n)?,
            AmbienceKind::RoadNoise => self.road_noise(n)?,
        };
        let peak = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        if peak > 0.0 {
            let g = 0.9 / peak;
            for x in out.iter_mut() {
                *x *= g;
            }
        }
        Ok(out)
    }

    fn lowpass(&self, freq_hz: f64) -> Result<Biquad, RoadSimError> {
        Biquad::design(BiquadDesign::Lowpass { freq_hz, q: 0.707 }, self.fs).map_err(Into::into)
    }

    fn highpass(&self, freq_hz: f64) -> Result<Biquad, RoadSimError> {
        Biquad::design(BiquadDesign::Highpass { freq_hz, q: 0.707 }, self.fs).map_err(Into::into)
    }

    fn wind(&self, n: usize) -> Result<Vec<f64>, RoadSimError> {
        // Body: pink noise low-passed twice at 250 Hz (~24 dB/oct rolloff).
        let mut lp1 = self.lowpass(250.0)?;
        let mut lp2 = self.lowpass(250.0)?;
        let body = NoiseSource::new(NoiseKind::Pink, self.seed).take(n);
        // Gust envelope: a slow sine whose rate and phase derive from the seed.
        let mut lfo = NoiseSource::new(NoiseKind::White, self.seed ^ 0x57AB_11F0);
        let gust_rate = 0.2 + 0.2 * (lfo.next().unwrap_or(0.0) + 1.0); // 0.2-0.6 Hz
        let mut phase = (lfo.next().unwrap_or(0.0) + 1.0) * std::f64::consts::PI;
        let step = 2.0 * std::f64::consts::PI * gust_rate / self.fs;
        let out = body
            .map(|x| {
                let gust = 0.55 + 0.45 * phase.sin();
                phase += step;
                gust * lp2.process(lp1.process(x))
            })
            .collect();
        Ok(out)
    }

    fn rain(&self, n: usize) -> Result<Vec<f64>, RoadSimError> {
        // Drop impacts: white noise high-passed at 1 kHz.
        let mut hp = self.highpass(1000.0)?;
        let body = NoiseSource::new(NoiseKind::White, self.seed).take(n);
        // Light fast shimmer (4-7 Hz) mimicking uneven drop density.
        let mut lfo = NoiseSource::new(NoiseKind::White, self.seed ^ 0x4A1D_BEEF);
        let rate = 4.0 + 3.0 * (lfo.next().unwrap_or(0.0) + 1.0) * 0.5;
        let mut phase = (lfo.next().unwrap_or(0.0) + 1.0) * std::f64::consts::PI;
        let step = 2.0 * std::f64::consts::PI * rate / self.fs;
        let out = body
            .map(|x| {
                let shimmer = 0.85 + 0.15 * phase.sin();
                phase += step;
                shimmer * hp.process(x)
            })
            .collect();
        Ok(out)
    }

    fn road_noise(&self, n: usize) -> Result<Vec<f64>, RoadSimError> {
        // Rumble: brown noise low-passed at 300 Hz, plus a pink tyre-hiss band
        // (top clamped below Nyquist for low sampling rates).
        let mut rumble_lp = self.lowpass(300.0)?;
        let mut hiss_hp = self.highpass(500.0)?;
        let mut hiss_lp = self.lowpass(4000.0_f64.min(0.4 * self.fs))?;
        let mut rumble = NoiseSource::new(NoiseKind::Brown, self.seed);
        let mut hiss = NoiseSource::new(NoiseKind::Pink, self.seed ^ 0x7EA7_0AD5);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let r = rumble_lp.process(rumble.next().unwrap_or(0.0));
            let h = hiss_lp.process(hiss_hp.process(hiss.next().unwrap_or(0.0)));
            out.push(r + 0.3 * h);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispot_dsp::fft::Fft;

    const FS: f64 = 16_000.0;

    fn centroid_hz(x: &[f64]) -> f64 {
        let n = 4096;
        let spec = Fft::new(n).forward_real(&x[..n]).unwrap();
        let mut num = 0.0;
        let mut den = 0.0;
        for (k, c) in spec.iter().take(n / 2).enumerate() {
            num += k as f64 * c.norm_sqr();
            den += c.norm_sqr();
        }
        num / den * FS / n as f64
    }

    #[test]
    fn all_kinds_are_deterministic_per_seed() {
        for kind in [
            AmbienceKind::Wind,
            AmbienceKind::Rain,
            AmbienceKind::RoadNoise,
        ] {
            let a = AmbienceSynthesizer::new(kind, FS, 5)
                .synthesize(0.3)
                .unwrap();
            let b = AmbienceSynthesizer::new(kind, FS, 5)
                .synthesize(0.3)
                .unwrap();
            let c = AmbienceSynthesizer::new(kind, FS, 6)
                .synthesize(0.3)
                .unwrap();
            assert_eq!(a, b, "{} not deterministic", kind.label());
            assert_ne!(a, c, "{} ignores seed", kind.label());
            assert!(a.iter().all(|v| v.is_finite() && v.abs() <= 0.9 + 1e-12));
        }
    }

    #[test]
    fn spectral_shapes_match_the_models() {
        let synth = |k| AmbienceSynthesizer::new(k, FS, 11).synthesize(0.5).unwrap();
        let wind = centroid_hz(&synth(AmbienceKind::Wind));
        let road = centroid_hz(&synth(AmbienceKind::RoadNoise));
        let rain = centroid_hz(&synth(AmbienceKind::Rain));
        // Road noise is rumble-dominated (lowest), wind is low-passed pink,
        // rain is broadband high-frequency drop noise (highest by far).
        assert!(road < wind, "road centroid {road} >= wind {wind}");
        assert!(wind < 400.0, "wind centroid {wind} too high");
        assert!(rain > 1000.0, "rain centroid {rain} too low");
        assert!(rain > 4.0 * wind, "rain {rain} not well above wind {wind}");
    }

    #[test]
    fn zero_duration_is_empty_and_labels_are_stable() {
        let s = AmbienceSynthesizer::new(AmbienceKind::Wind, FS, 1);
        assert!(s.synthesize(0.0).unwrap().is_empty());
        assert_eq!(s.kind(), AmbienceKind::Wind);
        assert_eq!(AmbienceKind::Wind.label(), "wind");
        assert_eq!(AmbienceKind::Rain.label(), "rain");
        assert_eq!(AmbienceKind::RoadNoise.label(), "road-noise");
    }
}
