//! Analytic Doppler-shift helpers, used to validate the delay-line implementation.

use crate::geometry::Position;
use crate::trajectory::Trajectory;

/// Radial velocity (m/s) of the source towards the microphone at time `t`; positive
/// when the source approaches.
pub fn radial_velocity(trajectory: &Trajectory, microphone: Position, t: f64) -> f64 {
    let pos = trajectory.position_at(t);
    let vel = trajectory.velocity_at(t);
    let towards = (microphone - pos).normalized();
    vel.dot(towards)
}

/// Expected instantaneous Doppler frequency ratio `f_observed / f_emitted` for a moving
/// source and a static receiver: `c / (c - v_radial)`.
///
/// # Example
///
/// ```
/// use ispot_roadsim::{doppler::doppler_ratio, geometry::Position, trajectory::Trajectory};
///
/// let t = Trajectory::linear(Position::new(-100.0, 0.0, 0.0), Position::new(100.0, 0.0, 0.0), 30.0);
/// let mic = Position::new(0.0, 5.0, 0.0);
/// // While approaching, the observed frequency is higher than emitted.
/// assert!(doppler_ratio(&t, mic, 0.5, 343.0) > 1.0);
/// ```
pub fn doppler_ratio(
    trajectory: &Trajectory,
    microphone: Position,
    t: f64,
    speed_of_sound: f64,
) -> f64 {
    let v_r = radial_velocity(trajectory, microphone, t);
    speed_of_sound / (speed_of_sound - v_r)
}

/// Expected observed frequency in Hz for an emitted tone of `f_emitted` Hz.
pub fn observed_frequency(
    trajectory: &Trajectory,
    microphone: Position,
    t: f64,
    speed_of_sound: f64,
    f_emitted: f64,
) -> f64 {
    f_emitted * doppler_ratio(trajectory, microphone, t, speed_of_sound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approaching_source_raises_frequency_receding_lowers_it() {
        let traj = Trajectory::linear(
            Position::new(-100.0, 0.0, 0.0),
            Position::new(100.0, 0.0, 0.0),
            30.0,
        );
        let mic = Position::new(0.0, 2.0, 0.0);
        let c = 343.0;
        let early = doppler_ratio(&traj, mic, 0.5, c);
        let late = doppler_ratio(&traj, mic, 6.0, c);
        assert!(early > 1.0, "approaching ratio {early}");
        assert!(late < 1.0, "receding ratio {late}");
    }

    #[test]
    fn head_on_approach_matches_textbook_formula() {
        // Source moving straight at the microphone at 30 m/s.
        let traj = Trajectory::linear(
            Position::new(-1000.0, 0.0, 0.0),
            Position::new(0.0, 0.0, 0.0),
            30.0,
        );
        let mic = Position::new(0.0, 0.0, 0.0);
        let c = 343.0;
        let ratio = doppler_ratio(&traj, mic, 1.0, c);
        assert!((ratio - c / (c - 30.0)).abs() < 1e-3);
    }

    #[test]
    fn static_source_has_no_shift() {
        let traj = Trajectory::fixed(Position::new(10.0, 0.0, 1.0));
        let mic = Position::new(0.0, 0.0, 1.0);
        assert!((doppler_ratio(&traj, mic, 3.0, 343.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn observed_frequency_scales_emitted_tone() {
        let traj = Trajectory::linear(
            Position::new(-500.0, 0.0, 0.0),
            Position::new(0.0, 0.0, 0.0),
            20.0,
        );
        let mic = Position::new(0.0, 0.0, 0.0);
        let f = observed_frequency(&traj, mic, 1.0, 343.0, 440.0);
        assert!(f > 440.0 && f < 480.0);
    }

    #[test]
    fn transverse_motion_has_small_shift_at_closest_point() {
        // Source passing by: at the closest point the radial velocity is ~0.
        let traj = Trajectory::linear(
            Position::new(-50.0, 5.0, 0.0),
            Position::new(50.0, 5.0, 0.0),
            25.0,
        );
        let mic = Position::new(0.0, 0.0, 0.0);
        // Closest approach at t = 2 s.
        let ratio = doppler_ratio(&traj, mic, 2.0, 343.0);
        assert!((ratio - 1.0).abs() < 0.01);
    }
}
