//! Microphone array geometries.
//!
//! The assessment of microphone-array topology and placement on the car body is one of
//! the open system-level challenges identified by the paper (Sec. II and V); this module
//! provides the standard candidate geometries used in experiment E8.

use crate::error::RoadSimError;
use crate::geometry::Position;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// An array of static omnidirectional microphones.
///
/// # Example
///
/// ```
/// use ispot_roadsim::{geometry::Position, microphone::MicrophoneArray};
///
/// let array = MicrophoneArray::circular(8, 0.15, Position::new(0.0, 0.0, 1.2));
/// assert_eq!(array.len(), 8);
/// assert!((array.aperture() - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrophoneArray {
    positions: Vec<Position>,
}

impl MicrophoneArray {
    /// Creates an array from explicit microphone positions.
    ///
    /// # Errors
    ///
    /// Returns an error if `positions` is empty.
    pub fn custom(positions: Vec<Position>) -> Result<Self, RoadSimError> {
        if positions.is_empty() {
            return Err(RoadSimError::invalid_parameter(
                "positions",
                "array must contain at least one microphone",
            ));
        }
        Ok(MicrophoneArray { positions })
    }

    /// A uniform linear array of `count` microphones spaced `spacing` metres apart
    /// along the x axis, centred on `center`.
    pub fn linear(count: usize, spacing: f64, center: Position) -> Self {
        let count = count.max(1);
        let offset = (count as f64 - 1.0) / 2.0;
        let positions = (0..count)
            .map(|i| Position::new(center.x + (i as f64 - offset) * spacing, center.y, center.z))
            .collect();
        MicrophoneArray { positions }
    }

    /// A uniform circular array of `count` microphones with the given `radius`, in the
    /// horizontal plane through `center`.
    pub fn circular(count: usize, radius: f64, center: Position) -> Self {
        let count = count.max(1);
        let positions = (0..count)
            .map(|i| {
                let theta = 2.0 * PI * i as f64 / count as f64;
                Position::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                    center.z,
                )
            })
            .collect();
        MicrophoneArray { positions }
    }

    /// Six microphones on an **irregular** hexagon (jittered angles and radii,
    /// ~0.2 m aperture) in the horizontal plane through `center` — the
    /// reference roof-array layout of the scenario harness and examples.
    ///
    /// A regular polygon array is invariant under reflection about its
    /// symmetry axes, so its SRP maps answer a source at `+θ` with a
    /// persistent mirror lobe near `−θ` that multi-target tracking would
    /// confirm as a phantom source; jittering the geometry breaks the symmetry
    /// and removes those lobes while costing nothing in single-source accuracy
    /// (see the tracking-subsystem notes in `ARCHITECTURE.md`).
    pub fn irregular_hexagon(center: Position) -> Self {
        const ANGLES_DEG: [f64; 6] = [0.0, 47.0, 113.0, 166.0, 218.0, 285.0];
        const RADII_M: [f64; 6] = [0.22, 0.17, 0.21, 0.16, 0.23, 0.18];
        let positions = ANGLES_DEG
            .iter()
            .zip(&RADII_M)
            .map(|(a, r)| {
                let theta = a.to_radians();
                Position::new(
                    center.x + r * theta.cos(),
                    center.y + r * theta.sin(),
                    center.z,
                )
            })
            .collect();
        MicrophoneArray { positions }
    }

    /// A rectangular grid of `nx * ny` microphones with spacings `dx`, `dy`, centred on
    /// `center`.
    pub fn rectangular(nx: usize, ny: usize, dx: f64, dy: f64, center: Position) -> Self {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let ox = (nx as f64 - 1.0) / 2.0;
        let oy = (ny as f64 - 1.0) / 2.0;
        let mut positions = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                positions.push(Position::new(
                    center.x + (i as f64 - ox) * dx,
                    center.y + (j as f64 - oy) * dy,
                    center.z,
                ));
            }
        }
        MicrophoneArray { positions }
    }

    /// Number of microphones.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns true if the array has no microphones (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Microphone positions, in metres.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Geometric centroid of the array.
    pub fn centroid(&self) -> Position {
        let n = self.positions.len() as f64;
        self.positions
            .iter()
            .fold(Position::ORIGIN, |acc, &p| acc + p)
            * (1.0 / n)
    }

    /// Maximum distance between any two microphones (the array aperture).
    pub fn aperture(&self) -> f64 {
        let mut max = 0.0f64;
        for (i, a) in self.positions.iter().enumerate() {
            for b in &self.positions[i + 1..] {
                max = max.max(a.distance_to(*b));
            }
        }
        max
    }

    /// Iterates over all unordered microphone pairs `(i, j)` with `i < j`.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let n = self.positions.len();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in i + 1..n {
                out.push((i, j));
            }
        }
        out
    }

    /// The maximum inter-microphone propagation delay in samples at sampling rate `fs`
    /// and speed of sound `c`, used to size correlation windows.
    pub fn max_delay_samples(&self, fs: f64, c: f64) -> f64 {
        self.aperture() / c * fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_array_spacing_and_centering() {
        let a = MicrophoneArray::linear(4, 0.2, Position::new(1.0, 2.0, 3.0));
        assert_eq!(a.len(), 4);
        let c = a.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
        assert!((a.aperture() - 0.6).abs() < 1e-12);
        let d = a.positions()[1].distance_to(a.positions()[0]);
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn circular_array_points_lie_on_circle() {
        let center = Position::new(0.0, 0.0, 1.0);
        let a = MicrophoneArray::circular(6, 0.5, center);
        for p in a.positions() {
            assert!((p.distance_to(center) - 0.5).abs() < 1e-12);
        }
        assert!((a.aperture() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rectangular_array_count() {
        let a = MicrophoneArray::rectangular(3, 2, 0.1, 0.2, Position::ORIGIN);
        assert_eq!(a.len(), 6);
        assert!((a.centroid().length()) < 1e-12);
    }

    #[test]
    fn pair_count_is_n_choose_2() {
        let a = MicrophoneArray::circular(8, 0.2, Position::ORIGIN);
        assert_eq!(a.pairs().len(), 28);
    }

    #[test]
    fn custom_array_rejects_empty() {
        assert!(MicrophoneArray::custom(vec![]).is_err());
        assert!(MicrophoneArray::custom(vec![Position::ORIGIN]).is_ok());
    }

    #[test]
    fn max_delay_samples_follows_aperture() {
        let a = MicrophoneArray::linear(2, 0.343, Position::ORIGIN);
        let d = a.max_delay_samples(16_000.0, 343.0);
        assert!((d - 16.0).abs() < 1e-9);
    }

    #[test]
    fn single_microphone_has_zero_aperture() {
        let a = MicrophoneArray::linear(1, 0.1, Position::ORIGIN);
        assert_eq!(a.aperture(), 0.0);
        assert!(a.pairs().is_empty());
    }
}
