//! Three-dimensional geometry primitives.
//!
//! The coordinate convention follows pyroadacoustics: `x` and `y` span the road plane,
//! `z` is the height above the asphalt surface (`z = 0`).

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in 3-D space, in metres.
///
/// # Example
///
/// ```
/// use ispot_roadsim::geometry::Position;
///
/// let a = Position::new(0.0, 0.0, 1.0);
/// let b = Position::new(3.0, 4.0, 1.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// Coordinate along the road direction, metres.
    pub x: f64,
    /// Coordinate across the road, metres.
    pub y: f64,
    /// Height above the asphalt plane, metres.
    pub z: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a position from its coordinates in metres.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> f64 {
        (self - other).length()
    }

    /// Vector length.
    pub fn length(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    pub fn dot(self, other: Position) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Returns the unit vector in the same direction; the zero vector is returned
    /// unchanged.
    pub fn normalized(self) -> Position {
        let l = self.length();
        if l <= f64::EPSILON {
            self
        } else {
            self * (1.0 / l)
        }
    }

    /// Mirror image of this position across the road plane `z = 0`, used to build the
    /// image source for the asphalt reflection (Fig. 3 of the paper).
    pub fn reflected_across_road(self) -> Position {
        Position::new(self.x, self.y, -self.z)
    }

    /// Linear interpolation between `self` and `other` with parameter `t` in `[0, 1]`.
    pub fn lerp(self, other: Position, t: f64) -> Position {
        self + (other - self) * t
    }

    /// Azimuth angle (radians) of this position as seen from `origin`, measured in the
    /// road plane from the +x axis towards +y, in `(-pi, pi]`.
    pub fn azimuth_from(self, origin: Position) -> f64 {
        let d = self - origin;
        d.y.atan2(d.x)
    }

    /// Elevation angle (radians) above the road plane as seen from `origin`.
    pub fn elevation_from(self, origin: Position) -> f64 {
        let d = self - origin;
        let horiz = (d.x * d.x + d.y * d.y).sqrt();
        d.z.atan2(horiz)
    }
}

impl Add for Position {
    type Output = Position;
    fn add(self, rhs: Position) -> Position {
        Position::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Position {
    type Output = Position;
    fn sub(self, rhs: Position) -> Position {
        Position::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Position {
    type Output = Position;
    fn mul(self, rhs: f64) -> Position {
        Position::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

/// Total path length of the road-reflected ray from `source` to `microphone`,
/// i.e. `d2 + d3` in Fig. 3 of the paper, computed via the image-source construction.
pub fn reflected_path_length(source: Position, microphone: Position) -> f64 {
    source.reflected_across_road().distance_to(microphone)
}

/// Coordinates of the specular reflection point on the road surface for the ray from
/// `source` to `microphone`.
///
/// Both endpoints are assumed to be above the road (`z >= 0`); if both lie exactly on
/// the road the midpoint is returned.
pub fn reflection_point(source: Position, microphone: Position) -> Position {
    let zs = source.z.max(0.0);
    let zm = microphone.z.max(0.0);
    let denom = zs + zm;
    let t = if denom <= f64::EPSILON {
        0.5
    } else {
        zs / denom
    };
    Position::new(
        source.x + (microphone.x - source.x) * t,
        source.y + (microphone.y - source.y) * t,
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_triangle_inequality_holds() {
        let a = Position::new(1.0, 2.0, 3.0);
        let b = Position::new(-2.0, 0.5, 1.0);
        let c = Position::new(4.0, -1.0, 0.0);
        assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-12);
        assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-12);
    }

    #[test]
    fn reflection_across_road_flips_z_only() {
        let p = Position::new(1.0, 2.0, 3.0);
        assert_eq!(p.reflected_across_road(), Position::new(1.0, 2.0, -3.0));
    }

    #[test]
    fn reflected_path_is_longer_than_direct_path() {
        let s = Position::new(-10.0, 3.0, 1.2);
        let m = Position::new(0.0, 0.0, 1.0);
        assert!(reflected_path_length(s, m) > s.distance_to(m));
    }

    #[test]
    fn reflected_path_length_equals_sum_of_segments() {
        let s = Position::new(-5.0, 2.0, 1.5);
        let m = Position::new(3.0, -1.0, 0.8);
        let r = reflection_point(s, m);
        assert!(r.z.abs() < 1e-12);
        let via_point = s.distance_to(r) + r.distance_to(m);
        assert!((via_point - reflected_path_length(s, m)).abs() < 1e-9);
    }

    #[test]
    fn specular_reflection_has_equal_angles() {
        let s = Position::new(-4.0, 0.0, 2.0);
        let m = Position::new(6.0, 0.0, 3.0);
        let r = reflection_point(s, m);
        let incidence = (s.z / s.distance_to(r)).asin();
        let departure = (m.z / m.distance_to(r)).asin();
        assert!((incidence - departure).abs() < 1e-9);
    }

    #[test]
    fn azimuth_and_elevation() {
        let origin = Position::ORIGIN;
        let p = Position::new(0.0, 5.0, 0.0);
        assert!((p.azimuth_from(origin) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let q = Position::new(1.0, 0.0, 1.0);
        assert!((q.elevation_from(origin) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Position::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Position::new(3.0, 4.0, 12.0);
        assert!((v.normalized().length() - 1.0).abs() < 1e-12);
        assert_eq!(Position::ORIGIN.normalized(), Position::ORIGIN);
    }
}
