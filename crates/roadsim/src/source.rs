//! Sound sources: an emitted signal attached to a trajectory.

use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// One omnidirectional sound source emitting a user-defined signal while moving
/// along a [`Trajectory`].
///
/// A scene may contain any number of sources (see
/// [`SceneBuilder::source`](crate::scene::SceneBuilder::source)); each one carries its
/// own signal, trajectory, emission gain and optional onset time, and the engine sums
/// their direct and road-reflected contributions at every microphone.
///
/// # Example
///
/// ```
/// use ispot_roadsim::{geometry::Position, source::SoundSource, trajectory::Trajectory};
///
/// let signal = vec![0.0_f64; 16_000];
/// let source = SoundSource::new(signal, Trajectory::fixed(Position::new(5.0, 0.0, 1.0)))
///     .with_start(0.5);
/// assert_eq!(source.len(), 16_000);
/// assert_eq!(source.start_delay_samples(16_000.0), 8000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundSource {
    signal: Vec<f64>,
    trajectory: Trajectory,
    gain: f64,
    start_s: f64,
}

impl SoundSource {
    /// Creates a source emitting `signal` while following `trajectory`.
    pub fn new(signal: Vec<f64>, trajectory: Trajectory) -> Self {
        SoundSource {
            signal,
            trajectory,
            gain: 1.0,
            start_s: 0.0,
        }
    }

    /// Sets an overall emission gain (default 1.0).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// Delays the signal onset to `start_s` seconds of scene time (default 0.0).
    ///
    /// The trajectory remains parameterized by absolute scene time — only the emitted
    /// signal is shifted, so a door slam can fire mid-scene from wherever its (static
    /// or moving) source happens to be at that moment.
    pub fn with_start(mut self, start_s: f64) -> Self {
        self.start_s = start_s;
        self
    }

    /// The emitted signal samples.
    pub fn signal(&self) -> &[f64] {
        &self.signal
    }

    /// The source trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The emission gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Scene time (seconds) at which the signal starts playing.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// The signal onset expressed in whole samples at sampling rate `fs`.
    pub fn start_delay_samples(&self, fs: f64) -> usize {
        (self.start_s * fs).round().max(0.0) as usize
    }

    /// Number of scene samples this source spans at sampling rate `fs`: onset delay
    /// plus signal length.
    pub fn end_sample(&self, fs: f64) -> usize {
        self.start_delay_samples(fs) + self.signal.len()
    }

    /// Number of samples in the emitted signal.
    pub fn len(&self) -> usize {
        self.signal.len()
    }

    /// Returns true if the source signal is empty.
    pub fn is_empty(&self) -> bool {
        self.signal.is_empty()
    }

    /// Returns the emitted sample at index `n` scaled by the gain, or 0 beyond the end
    /// of the signal.
    pub fn sample(&self, n: usize) -> f64 {
        self.signal.get(n).copied().unwrap_or(0.0) * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;

    #[test]
    fn sample_applies_gain_and_pads_with_silence() {
        let s =
            SoundSource::new(vec![1.0, -0.5], Trajectory::fixed(Position::ORIGIN)).with_gain(2.0);
        assert_eq!(s.sample(0), 2.0);
        assert_eq!(s.sample(1), -1.0);
        assert_eq!(s.sample(5), 0.0);
    }

    #[test]
    fn accessors_round_trip() {
        let traj = Trajectory::fixed(Position::new(1.0, 2.0, 3.0));
        let s = SoundSource::new(vec![0.25; 10], traj.clone());
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.trajectory(), &traj);
        assert_eq!(s.gain(), 1.0);
        assert_eq!(s.start_s(), 0.0);
        assert_eq!(s.end_sample(8000.0), 10);
    }

    #[test]
    fn start_delay_rounds_to_whole_samples() {
        let s =
            SoundSource::new(vec![0.1; 100], Trajectory::fixed(Position::ORIGIN)).with_start(0.25);
        assert_eq!(s.start_delay_samples(16_000.0), 4000);
        assert_eq!(s.end_sample(16_000.0), 4100);
        // Negative onsets clamp to the scene start.
        let early =
            SoundSource::new(vec![0.1; 4], Trajectory::fixed(Position::ORIGIN)).with_start(-1.0);
        assert_eq!(early.start_delay_samples(16_000.0), 0);
    }
}
