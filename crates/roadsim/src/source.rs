//! Sound sources: an emitted signal attached to a trajectory.

use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// A single omnidirectional sound source emitting a user-defined signal while moving
/// along a [`Trajectory`].
///
/// # Example
///
/// ```
/// use ispot_roadsim::{geometry::Position, source::SoundSource, trajectory::Trajectory};
///
/// let signal = vec![0.0_f64; 16_000];
/// let source = SoundSource::new(signal, Trajectory::fixed(Position::new(5.0, 0.0, 1.0)));
/// assert_eq!(source.len(), 16_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundSource {
    signal: Vec<f64>,
    trajectory: Trajectory,
    gain: f64,
}

impl SoundSource {
    /// Creates a source emitting `signal` while following `trajectory`.
    pub fn new(signal: Vec<f64>, trajectory: Trajectory) -> Self {
        SoundSource {
            signal,
            trajectory,
            gain: 1.0,
        }
    }

    /// Sets an overall emission gain (default 1.0).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// The emitted signal samples.
    pub fn signal(&self) -> &[f64] {
        &self.signal
    }

    /// The source trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// The emission gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Number of samples in the emitted signal.
    pub fn len(&self) -> usize {
        self.signal.len()
    }

    /// Returns true if the source signal is empty.
    pub fn is_empty(&self) -> bool {
        self.signal.is_empty()
    }

    /// Returns the emitted sample at index `n` scaled by the gain, or 0 beyond the end
    /// of the signal.
    pub fn sample(&self, n: usize) -> f64 {
        self.signal.get(n).copied().unwrap_or(0.0) * self.gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;

    #[test]
    fn sample_applies_gain_and_pads_with_silence() {
        let s =
            SoundSource::new(vec![1.0, -0.5], Trajectory::fixed(Position::ORIGIN)).with_gain(2.0);
        assert_eq!(s.sample(0), 2.0);
        assert_eq!(s.sample(1), -1.0);
        assert_eq!(s.sample(5), 0.0);
    }

    #[test]
    fn accessors_round_trip() {
        let traj = Trajectory::fixed(Position::new(1.0, 2.0, 3.0));
        let s = SoundSource::new(vec![0.25; 10], traj.clone());
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.trajectory(), &traj);
        assert_eq!(s.gain(), 1.0);
    }
}
