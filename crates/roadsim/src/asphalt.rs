//! Asphalt reflection model.
//!
//! The road surface reflection in pyroadacoustics is modelled with an FIR filter whose
//! magnitude follows the (frequency-dependent) reflection coefficient of the asphalt
//! mixture (Fig. 2, the `H_refl` block). Dense asphalt reflects most energy with a mild
//! high-frequency roll-off; porous ("open-graded") asphalt absorbs considerably more
//! around its characteristic absorption peak.

use crate::error::RoadSimError;
use ispot_dsp::fir::{FirDesign, FirFilter};
use serde::{Deserialize, Serialize};

/// A parametric model of the asphalt surface's acoustic reflection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsphaltModel {
    /// Reflection coefficient magnitude at low frequency (0–1).
    pub low_freq_reflection: f64,
    /// Reflection coefficient magnitude at `reference_freq_hz` (0–1).
    pub high_freq_reflection: f64,
    /// Frequency (Hz) at which `high_freq_reflection` is reached.
    pub reference_freq_hz: f64,
    /// Centre frequency (Hz) of the absorption dip typical of porous asphalt; `None`
    /// for dense mixtures.
    pub absorption_peak_hz: Option<f64>,
    /// Depth of the absorption dip (0 = none, 1 = total absorption at the peak).
    pub absorption_peak_depth: f64,
}

impl Default for AsphaltModel {
    fn default() -> Self {
        Self::dense()
    }
}

impl AsphaltModel {
    /// Dense-graded asphalt: strongly reflective with a mild high-frequency roll-off.
    pub fn dense() -> Self {
        AsphaltModel {
            low_freq_reflection: 0.95,
            high_freq_reflection: 0.85,
            reference_freq_hz: 8000.0,
            absorption_peak_hz: None,
            absorption_peak_depth: 0.0,
        }
    }

    /// Porous (open-graded) asphalt: a pronounced absorption dip around 800 Hz.
    pub fn porous() -> Self {
        AsphaltModel {
            low_freq_reflection: 0.9,
            high_freq_reflection: 0.7,
            reference_freq_hz: 8000.0,
            absorption_peak_hz: Some(800.0),
            absorption_peak_depth: 0.6,
        }
    }

    /// Creates a custom asphalt model.
    ///
    /// # Errors
    ///
    /// Returns an error if any reflection magnitude is outside `[0, 1]` or the
    /// reference frequency is not positive.
    pub fn custom(
        low_freq_reflection: f64,
        high_freq_reflection: f64,
        reference_freq_hz: f64,
    ) -> Result<Self, RoadSimError> {
        for (name, v) in [
            ("low_freq_reflection", low_freq_reflection),
            ("high_freq_reflection", high_freq_reflection),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(RoadSimError::invalid_parameter(
                    name,
                    format!("must be within [0, 1], got {v}"),
                ));
            }
        }
        if reference_freq_hz <= 0.0 {
            return Err(RoadSimError::invalid_parameter(
                "reference_freq_hz",
                "must be positive",
            ));
        }
        Ok(AsphaltModel {
            low_freq_reflection,
            high_freq_reflection,
            reference_freq_hz,
            absorption_peak_hz: None,
            absorption_peak_depth: 0.0,
        })
    }

    /// Reflection coefficient magnitude at `freq_hz` (linear, 0–1).
    pub fn reflection_at(&self, freq_hz: f64) -> f64 {
        let f = freq_hz.max(0.0);
        let t = (f / self.reference_freq_hz).clamp(0.0, 1.0);
        let mut r =
            self.low_freq_reflection + (self.high_freq_reflection - self.low_freq_reflection) * t;
        if let Some(fc) = self.absorption_peak_hz {
            // Gaussian absorption dip one octave wide around fc.
            let bw = fc * 0.7;
            let dip = self.absorption_peak_depth * (-(f - fc) * (f - fc) / (2.0 * bw * bw)).exp();
            r *= 1.0 - dip;
        }
        r.clamp(0.0, 1.0)
    }

    /// Linear magnitude response sampled on `grid_points` frequencies from DC to
    /// `fs/2`, suitable for FIR design.
    pub fn magnitude_grid(&self, fs: f64, grid_points: usize) -> Vec<f64> {
        (0..grid_points)
            .map(|k| {
                let f = k as f64 / (grid_points.max(2) - 1) as f64 * fs / 2.0;
                self.reflection_at(f)
            })
            .collect()
    }

    /// Designs the asphalt reflection FIR filter at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `taps` is invalid (must be odd and non-zero).
    pub fn reflection_filter(&self, fs: f64, taps: usize) -> Result<FirFilter, RoadSimError> {
        let grid = self.magnitude_grid(fs, 128);
        let coeffs = FirDesign::from_magnitude_response(taps, &grid)?;
        Ok(FirFilter::new(coeffs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_asphalt_reflects_most_energy() {
        let a = AsphaltModel::dense();
        for f in [100.0, 1000.0, 4000.0, 8000.0] {
            assert!(a.reflection_at(f) > 0.8);
        }
    }

    #[test]
    fn porous_asphalt_has_absorption_dip() {
        let p = AsphaltModel::porous();
        let at_peak = p.reflection_at(800.0);
        let away = p.reflection_at(4000.0);
        assert!(at_peak < 0.5, "reflection at dip {at_peak}");
        assert!(away > at_peak);
    }

    #[test]
    fn reflection_is_bounded() {
        for model in [AsphaltModel::dense(), AsphaltModel::porous()] {
            for f in (0..100).map(|k| k as f64 * 100.0) {
                let r = model.reflection_at(f);
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn filter_matches_model_magnitude() {
        let fs = 16_000.0;
        let model = AsphaltModel::dense();
        let filt = model.reflection_filter(fs, 101).unwrap();
        for f in [500.0, 2000.0, 6000.0] {
            let (g, _) = filt.frequency_response(f, fs);
            assert!(
                (g - model.reflection_at(f)).abs() < 0.08,
                "at {f} Hz: filter {g} vs model {}",
                model.reflection_at(f)
            );
        }
    }

    #[test]
    fn custom_model_validation() {
        assert!(AsphaltModel::custom(1.5, 0.5, 8000.0).is_err());
        assert!(AsphaltModel::custom(0.9, -0.1, 8000.0).is_err());
        assert!(AsphaltModel::custom(0.9, 0.8, 0.0).is_err());
        assert!(AsphaltModel::custom(0.9, 0.8, 8000.0).is_ok());
    }
}
