//! Source trajectories.
//!
//! pyroadacoustics supports "arbitrary trajectories with arbitrary speed" (Sec. IV-A);
//! this module provides static positions, straight-line passes, piecewise-linear
//! waypoint paths and cubic Bézier curves, all parameterized by time.

use crate::error::RoadSimError;
use crate::geometry::Position;
use serde::{Deserialize, Serialize};

/// A time-parameterized source trajectory.
///
/// # Example
///
/// ```
/// use ispot_roadsim::{geometry::Position, trajectory::Trajectory};
///
/// // Drive-by at 10 m/s along the x axis.
/// let t = Trajectory::linear(Position::new(-50.0, 3.0, 0.7), Position::new(50.0, 3.0, 0.7), 10.0);
/// assert_eq!(t.position_at(0.0).x, -50.0);
/// assert_eq!(t.position_at(5.0).x, 0.0);
/// assert_eq!(t.duration(), Some(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trajectory {
    /// A source that does not move.
    Static {
        /// Fixed source position.
        position: Position,
    },
    /// Constant-speed motion along a straight segment; the source stops at the end.
    Linear {
        /// Start position.
        start: Position,
        /// End position.
        end: Position,
        /// Speed in m/s.
        speed: f64,
    },
    /// Constant-speed motion along a piecewise-linear path through waypoints.
    Waypoints {
        /// Path vertices (at least two).
        points: Vec<Position>,
        /// Speed in m/s.
        speed: f64,
    },
    /// Constant-parameter-rate motion along a cubic Bézier curve traversed in
    /// `duration` seconds (used to emulate curved manoeuvres and varying relative
    /// speed).
    Bezier {
        /// First control point (start).
        p0: Position,
        /// Second control point.
        p1: Position,
        /// Third control point.
        p2: Position,
        /// Fourth control point (end).
        p3: Position,
        /// Traversal time in seconds.
        duration: f64,
    },
}

impl Trajectory {
    /// Creates a static trajectory.
    pub fn fixed(position: Position) -> Self {
        Trajectory::Static { position }
    }

    /// Creates a straight-line trajectory from `start` to `end` at `speed` m/s.
    pub fn linear(start: Position, end: Position, speed: f64) -> Self {
        Trajectory::Linear { start, end, speed }
    }

    /// Creates a waypoint trajectory visiting `points` in order at `speed` m/s.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given or the speed is not
    /// positive.
    pub fn waypoints(points: Vec<Position>, speed: f64) -> Result<Self, RoadSimError> {
        if points.len() < 2 {
            return Err(RoadSimError::invalid_parameter(
                "points",
                "waypoint trajectory needs at least two points",
            ));
        }
        if speed <= 0.0 {
            return Err(RoadSimError::invalid_parameter("speed", "must be positive"));
        }
        Ok(Trajectory::Waypoints { points, speed })
    }

    /// Creates a cubic Bézier trajectory traversed in `duration` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error if `duration` is not positive.
    pub fn bezier(
        p0: Position,
        p1: Position,
        p2: Position,
        p3: Position,
        duration: f64,
    ) -> Result<Self, RoadSimError> {
        if duration <= 0.0 {
            return Err(RoadSimError::invalid_parameter(
                "duration",
                "must be positive",
            ));
        }
        Ok(Trajectory::Bezier {
            p0,
            p1,
            p2,
            p3,
            duration,
        })
    }

    /// Returns the source position at time `t` seconds (clamped to the trajectory's
    /// start/end).
    pub fn position_at(&self, t: f64) -> Position {
        let t = t.max(0.0);
        match self {
            Trajectory::Static { position } => *position,
            Trajectory::Linear { start, end, speed } => {
                let total = start.distance_to(*end);
                if total <= f64::EPSILON || *speed <= 0.0 {
                    return *start;
                }
                let travelled = (speed * t).min(total);
                start.lerp(*end, travelled / total)
            }
            Trajectory::Waypoints { points, speed } => {
                let mut remaining = speed * t;
                for w in points.windows(2) {
                    let seg = w[0].distance_to(w[1]);
                    if remaining <= seg {
                        if seg <= f64::EPSILON {
                            return w[0];
                        }
                        return w[0].lerp(w[1], remaining / seg);
                    }
                    remaining -= seg;
                }
                *points
                    .last()
                    .expect("validated to have at least two points")
            }
            Trajectory::Bezier {
                p0,
                p1,
                p2,
                p3,
                duration,
            } => {
                let u = (t / duration).clamp(0.0, 1.0);
                let v = 1.0 - u;
                // Cubic Bézier: v^3 p0 + 3 v^2 u p1 + 3 v u^2 p2 + u^3 p3.
                *p0 * (v * v * v)
                    + *p1 * (3.0 * v * v * u)
                    + *p2 * (3.0 * v * u * u)
                    + *p3 * (u * u * u)
            }
        }
    }

    /// Returns the source velocity vector (m/s) at time `t`, estimated by central
    /// differences.
    pub fn velocity_at(&self, t: f64) -> Position {
        let h = 1e-4;
        let a = self.position_at((t - h).max(0.0));
        let b = self.position_at(t + h);
        let dt = (t + h) - (t - h).max(0.0);
        (b - a) * (1.0 / dt)
    }

    /// Returns the time (seconds) after which the source stops moving, or `None` for a
    /// static trajectory.
    pub fn duration(&self) -> Option<f64> {
        match self {
            Trajectory::Static { .. } => None,
            Trajectory::Linear { start, end, speed } => {
                if *speed <= 0.0 {
                    None
                } else {
                    Some(start.distance_to(*end) / speed)
                }
            }
            Trajectory::Waypoints { points, speed } => {
                let total: f64 = points.windows(2).map(|w| w[0].distance_to(w[1])).sum();
                Some(total / speed)
            }
            Trajectory::Bezier { duration, .. } => Some(*duration),
        }
    }

    /// Samples the trajectory at `fs` Hz for `num_samples` samples, returning one
    /// position per audio sample. This is the form consumed by the simulation engine.
    pub fn sample(&self, fs: f64, num_samples: usize) -> Vec<Position> {
        (0..num_samples)
            .map(|n| self.position_at(n as f64 / fs))
            .collect()
    }

    /// Checks the trajectory invariants that the convenience constructors enforce,
    /// for values built directly from the (public) enum variants.
    ///
    /// The scene builder calls this for every source, so a degenerate trajectory — a
    /// zero-duration linear pass (`speed <= 0` over a non-zero segment), a
    /// single-waypoint path, a non-positive Bézier traversal time — is rejected with a
    /// typed error before the engine ever samples it.
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), RoadSimError> {
        match self {
            Trajectory::Static { .. } => Ok(()),
            Trajectory::Linear { start, end, speed } => {
                if !speed.is_finite() {
                    return Err(RoadSimError::invalid_parameter("speed", "must be finite"));
                }
                if start.distance_to(*end) > f64::EPSILON && *speed <= 0.0 {
                    return Err(RoadSimError::invalid_parameter(
                        "speed",
                        "zero-duration trajectory: speed must be positive over a non-zero segment",
                    ));
                }
                Ok(())
            }
            Trajectory::Waypoints { points, speed } => {
                if points.len() < 2 {
                    return Err(RoadSimError::invalid_parameter(
                        "points",
                        "waypoint trajectory needs at least two points",
                    ));
                }
                if !(speed.is_finite() && *speed > 0.0) {
                    return Err(RoadSimError::invalid_parameter("speed", "must be positive"));
                }
                Ok(())
            }
            Trajectory::Bezier { duration, .. } => {
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err(RoadSimError::invalid_parameter(
                        "duration",
                        "must be positive",
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_trajectory_never_moves() {
        let p = Position::new(1.0, 2.0, 3.0);
        let t = Trajectory::fixed(p);
        assert_eq!(t.position_at(0.0), p);
        assert_eq!(t.position_at(100.0), p);
        assert_eq!(t.duration(), None);
        assert!(t.velocity_at(5.0).length() < 1e-9);
    }

    #[test]
    fn linear_trajectory_moves_at_requested_speed() {
        let t = Trajectory::linear(
            Position::new(0.0, 0.0, 0.0),
            Position::new(100.0, 0.0, 0.0),
            20.0,
        );
        let p = t.position_at(2.5);
        assert!((p.x - 50.0).abs() < 1e-9);
        let v = t.velocity_at(1.0);
        assert!((v.x - 20.0).abs() < 1e-3);
        assert_eq!(t.duration(), Some(5.0));
    }

    #[test]
    fn linear_trajectory_clamps_at_end() {
        let t = Trajectory::linear(
            Position::new(0.0, 0.0, 0.0),
            Position::new(10.0, 0.0, 0.0),
            1.0,
        );
        assert_eq!(t.position_at(100.0), Position::new(10.0, 0.0, 0.0));
    }

    #[test]
    fn waypoints_follow_segments_in_order() {
        let t = Trajectory::waypoints(
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(10.0, 10.0, 0.0),
            ],
            10.0,
        )
        .unwrap();
        assert_eq!(t.position_at(0.5), Position::new(5.0, 0.0, 0.0));
        assert_eq!(t.position_at(1.5), Position::new(10.0, 5.0, 0.0));
        assert_eq!(t.position_at(10.0), Position::new(10.0, 10.0, 0.0));
        assert_eq!(t.duration(), Some(2.0));
    }

    #[test]
    fn bezier_interpolates_endpoints() {
        let t = Trajectory::bezier(
            Position::new(0.0, 0.0, 0.0),
            Position::new(0.0, 10.0, 0.0),
            Position::new(10.0, 10.0, 0.0),
            Position::new(10.0, 0.0, 0.0),
            4.0,
        )
        .unwrap();
        assert_eq!(t.position_at(0.0), Position::new(0.0, 0.0, 0.0));
        assert_eq!(t.position_at(4.0), Position::new(10.0, 0.0, 0.0));
        // Midpoint of this symmetric curve lies at x = 5.
        assert!((t.position_at(2.0).x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_trajectories_are_rejected() {
        assert!(Trajectory::waypoints(vec![Position::ORIGIN], 1.0).is_err());
        assert!(Trajectory::waypoints(vec![Position::ORIGIN, Position::ORIGIN], 0.0).is_err());
        assert!(Trajectory::bezier(
            Position::ORIGIN,
            Position::ORIGIN,
            Position::ORIGIN,
            Position::ORIGIN,
            0.0
        )
        .is_err());
    }

    #[test]
    fn validate_accepts_constructor_built_and_rejects_degenerate_values() {
        assert!(Trajectory::fixed(Position::ORIGIN).validate().is_ok());
        assert!(
            Trajectory::linear(Position::ORIGIN, Position::new(10.0, 0.0, 0.0), 5.0)
                .validate()
                .is_ok()
        );
        // A linear pass over a non-zero segment at zero speed never arrives: the
        // constructors allow it (the enum is public) but validation names it.
        let stuck = Trajectory::linear(Position::ORIGIN, Position::new(10.0, 0.0, 0.0), 0.0);
        assert!(stuck.validate().is_err());
        // Zero-length segments degenerate to a static source; that is fine.
        assert!(Trajectory::linear(Position::ORIGIN, Position::ORIGIN, 0.0)
            .validate()
            .is_ok());
        let one_point = Trajectory::Waypoints {
            points: vec![Position::ORIGIN],
            speed: 1.0,
        };
        assert!(one_point.validate().is_err());
        let frozen_bezier = Trajectory::Bezier {
            p0: Position::ORIGIN,
            p1: Position::ORIGIN,
            p2: Position::ORIGIN,
            p3: Position::ORIGIN,
            duration: 0.0,
        };
        assert!(frozen_bezier.validate().is_err());
    }

    #[test]
    fn sample_produces_one_position_per_audio_sample() {
        let t = Trajectory::linear(
            Position::new(0.0, 0.0, 0.0),
            Position::new(16.0, 0.0, 0.0),
            16.0,
        );
        let samples = t.sample(16.0, 17);
        assert_eq!(samples.len(), 17);
        assert!((samples[8].x - 8.0).abs() < 1e-9);
    }
}
