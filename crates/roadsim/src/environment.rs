//! Environmental geometry: street-canyon walls and occluding screens.
//!
//! Real streets are not free fields. This module adds the two geometry features
//! that dominate urban siren propagation:
//!
//! * [`StreetCanyon`] — two vertical building façades parallel to the road.
//!   Each façade contributes a **first-order image-source reflection** per
//!   source–microphone pair (mirror the source across the wall plane, render a
//!   delayed, attenuated copy), so a canyon scene carries the characteristic
//!   early multipath that stresses localization.
//! * [`Occluder`] — a vertical screen (a building corner, a parked truck)
//!   between source and array. A blocked ray is attenuated to a residual
//!   **diffraction leakage** gain, with a smooth shadow-boundary transition so
//!   a moving source never produces a gain step — the "hearing what you cannot
//!   see" around-the-corner regime.
//!
//! Both features compose with the engine's parallel, bit-exact, linear
//! renderer: each wall reflection is just another per-source propagation path,
//! and occlusion is a pure per-sample gain factor, so an N-source render stays
//! exactly equal to the sum of the N single-source renders.

use crate::error::RoadSimError;
use crate::geometry::Position;
use serde::{Deserialize, Serialize};

/// A street canyon: two vertical building façades at `y = ±width/2`, parallel
/// to the road (x) axis and extending from the ground up.
///
/// Each façade reflects with a flat (frequency-independent) amplitude gain —
/// a first-order approximation of the mostly specular, mildly lossy reflection
/// off masonry and glass. Higher-order (wall-to-wall) reflections are not
/// rendered; the first-order images already carry the early multipath that
/// matters for localization stress.
///
/// # Example
///
/// ```
/// use ispot_roadsim::environment::StreetCanyon;
///
/// let canyon = StreetCanyon::new(20.0, 0.5).unwrap();
/// assert_eq!(canyon.wall_ys(), [-10.0, 10.0]);
/// assert!(canyon.contains_y(9.0));
/// assert!(!canyon.contains_y(10.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreetCanyon {
    half_width_m: f64,
    reflection_gain: f64,
}

impl StreetCanyon {
    /// Creates a canyon of the given total `width_m` (façade-to-façade) whose
    /// walls reflect with amplitude `reflection_gain`.
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidParameter`] unless `width_m` is finite
    /// and positive and `reflection_gain` lies in `[0, 1]`.
    pub fn new(width_m: f64, reflection_gain: f64) -> Result<Self, RoadSimError> {
        if !(width_m.is_finite() && width_m > 0.0) {
            return Err(RoadSimError::invalid_parameter(
                "width_m",
                "canyon width must be finite and positive",
            ));
        }
        if !(0.0..=1.0).contains(&reflection_gain) {
            return Err(RoadSimError::invalid_parameter(
                "reflection_gain",
                "wall reflection gain must lie in [0, 1]",
            ));
        }
        Ok(StreetCanyon {
            half_width_m: width_m / 2.0,
            reflection_gain,
        })
    }

    /// Façade-to-façade width in metres.
    pub fn width_m(&self) -> f64 {
        self.half_width_m * 2.0
    }

    /// Flat amplitude gain of one wall reflection.
    pub fn reflection_gain(&self) -> f64 {
        self.reflection_gain
    }

    /// The y coordinates of the two façades.
    pub fn wall_ys(&self) -> [f64; 2] {
        [-self.half_width_m, self.half_width_m]
    }

    /// Whether a lateral coordinate lies strictly inside the canyon.
    pub fn contains_y(&self, y: f64) -> bool {
        y.abs() < self.half_width_m
    }

    /// Mirror image of `pos` across the vertical wall plane at `wall_y`,
    /// i.e. the first-order image source for that façade.
    pub fn image_across_wall(pos: Position, wall_y: f64) -> Position {
        Position::new(pos.x, 2.0 * wall_y - pos.y, pos.z)
    }
}

/// A vertical occluding screen standing on the road surface: the segment from
/// `a` to `b` in the road plane, extruded from `z = 0` up to `height_m`.
///
/// Occlusion is modelled as a per-ray amplitude factor: a ray that passes the
/// screen keeps gain 1.0; a ray deep in the geometric shadow is attenuated to
/// the residual `transmission` gain (the energy that still arrives by
/// diffraction around the edges); near the shadow boundary the factor blends
/// smoothly over `edge_softness_m` of clearance, so a source sweeping across
/// the boundary never steps the gain (which would click).
///
/// # Example
///
/// ```
/// use ispot_roadsim::environment::Occluder;
/// use ispot_roadsim::geometry::Position;
///
/// // A building corner: a 6 m tall wall along x = 4 for y in [2, 30].
/// let wall = Occluder::screen(
///     Position::new(4.0, 2.0, 0.0),
///     Position::new(4.0, 30.0, 0.0),
///     6.0,
/// );
/// let mic = Position::new(0.0, 0.0, 1.0);
/// // A source behind the wall is strongly attenuated...
/// assert!(wall.gain(Position::new(20.0, 12.0, 1.0), mic) < 0.3);
/// // ...while one on the open side of the corner is untouched.
/// assert_eq!(wall.gain(Position::new(20.0, -12.0, 1.0), mic), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occluder {
    a: Position,
    b: Position,
    height_m: f64,
    transmission: f64,
    edge_softness_m: f64,
}

/// Default residual amplitude gain of a fully occluded ray (~ −17 dB, in the
/// range measured for single-edge diffraction around building corners).
pub const DEFAULT_TRANSMISSION: f64 = 0.14;

/// Default shadow-boundary softness in metres of edge clearance.
pub const DEFAULT_EDGE_SOFTNESS_M: f64 = 0.75;

impl Occluder {
    /// Creates a screen over the ground segment `a`–`b` (z components are
    /// ignored; the screen spans `z` in `[0, height_m]`) with the default
    /// diffraction transmission and edge softness.
    pub fn screen(a: Position, b: Position, height_m: f64) -> Self {
        Occluder {
            a: Position::new(a.x, a.y, 0.0),
            b: Position::new(b.x, b.y, 0.0),
            height_m,
            transmission: DEFAULT_TRANSMISSION,
            edge_softness_m: DEFAULT_EDGE_SOFTNESS_M,
        }
    }

    /// Overrides the residual amplitude gain of a fully occluded ray.
    pub fn with_transmission(mut self, transmission: f64) -> Self {
        self.transmission = transmission;
        self
    }

    /// Overrides the shadow-boundary softness (metres of clearance over which
    /// the gain blends from occluded to clear).
    pub fn with_edge_softness(mut self, softness_m: f64) -> Self {
        self.edge_softness_m = softness_m;
        self
    }

    /// Screen endpoints (on the road surface) and height.
    pub fn endpoints(&self) -> (Position, Position) {
        (self.a, self.b)
    }

    /// Screen height in metres.
    pub fn height_m(&self) -> f64 {
        self.height_m
    }

    /// Residual amplitude gain of a fully occluded ray.
    pub fn transmission(&self) -> f64 {
        self.transmission
    }

    /// Checks the screen invariants.
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidParameter`] if the endpoints coincide or
    /// are non-finite, the height is not positive, the transmission lies
    /// outside `[0, 1]` or the edge softness is not positive.
    pub fn validate(&self) -> Result<(), RoadSimError> {
        let finite = |p: Position| p.x.is_finite() && p.y.is_finite();
        if !finite(self.a) || !finite(self.b) {
            return Err(RoadSimError::invalid_parameter(
                "endpoints",
                "occluder endpoints must be finite",
            ));
        }
        if self.a.distance_to(self.b) <= f64::EPSILON {
            return Err(RoadSimError::invalid_parameter(
                "endpoints",
                "occluder endpoints must be distinct",
            ));
        }
        if !(self.height_m.is_finite() && self.height_m > 0.0) {
            return Err(RoadSimError::invalid_parameter(
                "height_m",
                "occluder height must be finite and positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.transmission) {
            return Err(RoadSimError::invalid_parameter(
                "transmission",
                "occluder transmission must lie in [0, 1]",
            ));
        }
        if !(self.edge_softness_m.is_finite() && self.edge_softness_m > 0.0) {
            return Err(RoadSimError::invalid_parameter(
                "edge_softness_m",
                "edge softness must be finite and positive",
            ));
        }
        Ok(())
    }

    /// Amplitude factor for the straight ray from `source` to `mic`: 1.0 when
    /// the ray clears the screen, [`Self::transmission`] deep in the shadow,
    /// blended smoothly near the boundary.
    ///
    /// For reflected paths the caller passes the **image source** position;
    /// the unfolded ray's height is mirrored below the road before the bounce,
    /// so the crossing height is compared by absolute value.
    pub fn gain(&self, source: Position, mic: Position) -> f64 {
        let rx = mic.x - source.x;
        let ry = mic.y - source.y;
        let wx = self.b.x - self.a.x;
        let wy = self.b.y - self.a.y;
        let denom = rx * wy - ry * wx;
        if denom.abs() <= f64::EPSILON {
            // Ray parallel to the screen: treat as clear.
            return 1.0;
        }
        let dx = self.a.x - source.x;
        let dy = self.a.y - source.y;
        // Ray parameter t in [0, 1] between source and mic; wall parameter s
        // along the segment a -> b.
        let t = (dx * wy - dy * wx) / denom;
        let s = (dx * ry - dy * rx) / denom;
        if !(0.0..=1.0).contains(&t) {
            // The wall's infinite line is not between the endpoints.
            return 1.0;
        }
        // Vertical clearance: how far above the top edge the ray crosses the
        // wall plane (negative below the edge). Image sources sit mirrored
        // below the road, so the physical ray height is |z|.
        let z_cross = source.z + t * (mic.z - source.z);
        let v_clear = z_cross.abs() - self.height_m;
        // Lateral clearance: distance from the crossing point to the nearer
        // screen end, positive outside the segment, negative inside.
        let wall_len = (wx * wx + wy * wy).sqrt();
        let s_m = s * wall_len;
        let l_clear = if (0.0..=1.0).contains(&s) {
            -(s_m.min(wall_len - s_m))
        } else if s < 0.0 {
            -s_m
        } else {
            s_m - wall_len
        };
        // The ray escapes over the top OR around either side: the largest
        // clearance decides.
        let clearance = v_clear.max(l_clear);
        let u = (clearance / self.edge_softness_m).clamp(-1.0, 1.0);
        let shade = smoothstep01((u + 1.0) * 0.5);
        self.transmission + (1.0 - self.transmission) * shade
    }
}

/// Cubic smoothstep on `[0, 1]` (assumes the input is already clamped).
fn smoothstep01(u: f64) -> f64 {
    u * u * (3.0 - 2.0 * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canyon_validates_and_mirrors() {
        assert!(StreetCanyon::new(0.0, 0.5).is_err());
        assert!(StreetCanyon::new(-3.0, 0.5).is_err());
        assert!(StreetCanyon::new(f64::NAN, 0.5).is_err());
        assert!(StreetCanyon::new(20.0, 1.5).is_err());
        assert!(StreetCanyon::new(20.0, -0.1).is_err());
        let c = StreetCanyon::new(16.0, 0.4).unwrap();
        assert_eq!(c.width_m(), 16.0);
        assert_eq!(c.reflection_gain(), 0.4);
        let img = StreetCanyon::image_across_wall(Position::new(3.0, 2.0, 1.0), 8.0);
        assert_eq!(img, Position::new(3.0, 14.0, 1.0));
        let img = StreetCanyon::image_across_wall(Position::new(3.0, 2.0, 1.0), -8.0);
        assert_eq!(img, Position::new(3.0, -18.0, 1.0));
    }

    #[test]
    fn occluder_validation_rejects_degenerate_screens() {
        let good = Occluder::screen(Position::ORIGIN, Position::new(1.0, 0.0, 0.0), 2.0);
        assert!(good.validate().is_ok());
        let same = Occluder::screen(Position::ORIGIN, Position::ORIGIN, 2.0);
        assert!(same.validate().is_err());
        let flat = Occluder::screen(Position::ORIGIN, Position::new(1.0, 0.0, 0.0), 0.0);
        assert!(flat.validate().is_err());
        assert!(good.with_transmission(1.5).validate().is_err());
        assert!(good.with_transmission(-0.1).validate().is_err());
        assert!(good.with_edge_softness(0.0).validate().is_err());
        let nan = Occluder::screen(
            Position::new(f64::NAN, 0.0, 0.0),
            Position::new(1.0, 0.0, 0.0),
            2.0,
        );
        assert!(nan.validate().is_err());
    }

    #[test]
    fn blocked_ray_is_attenuated_and_clear_ray_is_not() {
        // Wall along y in [-5, 5] at x = 5, 4 m tall.
        let wall = Occluder::screen(
            Position::new(5.0, -5.0, 0.0),
            Position::new(5.0, 5.0, 0.0),
            4.0,
        );
        let mic = Position::new(0.0, 0.0, 1.0);
        // Straight through the middle of the wall: deep shadow.
        let deep = wall.gain(Position::new(10.0, 0.0, 1.0), mic);
        assert!((deep - DEFAULT_TRANSMISSION).abs() < 1e-9, "deep {deep}");
        // Source on the same side as the mic: wall not between them.
        assert_eq!(wall.gain(Position::new(2.0, 0.0, 1.0), mic), 1.0);
        // Way around the side: clear.
        assert_eq!(wall.gain(Position::new(10.0, 40.0, 1.0), mic), 1.0);
        // Far over the top: a high source clears the 4 m edge.
        assert_eq!(wall.gain(Position::new(10.0, 0.0, 40.0), mic), 1.0);
        // Ray parallel to the wall plane never crosses it.
        assert_eq!(
            wall.gain(
                Position::new(10.0, 8.0, 1.0),
                Position::new(-10.0, 8.0, 1.0)
            ),
            1.0
        );
    }

    #[test]
    fn shadow_boundary_is_smooth_and_monotonic() {
        let wall = Occluder::screen(
            Position::new(5.0, -5.0, 0.0),
            Position::new(5.0, 5.0, 0.0),
            4.0,
        );
        let mic = Position::new(0.0, 0.0, 1.0);
        // Sweep a source laterally across the y = +5 corner: the gain must
        // rise monotonically from shadow to clear with no step larger than
        // what the 0.1 m sweep resolution explains.
        let mut last = 0.0;
        let mut max_step = 0.0f64;
        for k in 0..200 {
            let y = -2.0 + 0.1 * k as f64;
            let g = wall.gain(Position::new(10.0, y, 1.0), mic);
            if k > 0 {
                assert!(g >= last - 1e-12, "gain dipped at y = {y}");
                max_step = max_step.max(g - last);
            }
            last = g;
        }
        assert_eq!(last, 1.0, "sweep ends in the clear");
        assert!(max_step < 0.2, "shadow boundary steps too hard: {max_step}");
    }

    #[test]
    fn image_source_rays_use_absolute_height() {
        let wall = Occluder::screen(
            Position::new(5.0, -5.0, 0.0),
            Position::new(5.0, 5.0, 0.0),
            4.0,
        );
        let mic = Position::new(0.0, 0.0, 1.0);
        // A road-reflection image source at z = -40: the unfolded ray crosses
        // the wall plane far below -4 m, i.e. |z| far above the wall height,
        // which the physical bounced ray would clear only if the crossing were
        // near the bounce point -- by |z| it is treated like the +40 case.
        let below = wall.gain(Position::new(10.0, 0.0, -40.0), mic);
        let above = wall.gain(Position::new(10.0, 0.0, 40.0), mic);
        assert_eq!(below, above);
    }
}
