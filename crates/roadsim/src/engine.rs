//! The simulation engine: renders a [`Scene`] into multichannel
//! audio.
//!
//! The engine reproduces the pyroadacoustics block scheme (Fig. 2 of the paper): per
//! source–microphone pair, the emitted signal is pushed into two variable-length delay
//! lines (direct path and road-reflected path), read at the fractional delay dictated
//! by the instantaneous propagation distance, scaled by the spherical-spreading gains
//! and shaped by FIR filters modelling air absorption and the asphalt reflection.

use crate::error::RoadSimError;
use crate::geometry::{reflected_path_length, Position};
use crate::scene::Scene;
use ispot_dsp::delay::DelayLine;
use ispot_dsp::fir::FirFilter;

/// Multichannel audio produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MultichannelAudio {
    channels: Vec<Vec<f64>>,
    sample_rate: f64,
}

impl MultichannelAudio {
    /// Creates a multichannel buffer from per-channel sample vectors.
    pub fn new(channels: Vec<Vec<f64>>, sample_rate: f64) -> Self {
        MultichannelAudio {
            channels,
            sample_rate,
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of samples per channel (0 if there are no channels).
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// Returns true if the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Returns channel `index` as a sample slice.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn channel(&self, index: usize) -> &[f64] {
        &self.channels[index]
    }

    /// Returns all channels.
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// Consumes the buffer, returning the per-channel vectors.
    pub fn into_channels(self) -> Vec<Vec<f64>> {
        self.channels
    }

    /// Averages all channels into a mono signal.
    pub fn to_mono(&self) -> Vec<f64> {
        if self.channels.is_empty() {
            return Vec::new();
        }
        let n = self.len();
        let scale = 1.0 / self.channels.len() as f64;
        (0..n)
            .map(|i| self.channels.iter().map(|c| c[i]).sum::<f64>() * scale)
            .collect()
    }
}

/// One propagation path (direct or reflected) from the source to one microphone.
#[derive(Debug)]
struct PropagationPath {
    delay_line: DelayLine,
    /// Per-sample delay in samples.
    delays: Vec<f64>,
    /// Per-sample spreading gain.
    gains: Vec<f64>,
    /// Optional cascade of FIR filters applied after the delay/gain stage.
    filters: Vec<FirFilter>,
}

impl PropagationPath {
    fn process(&mut self, input: f64, n: usize) -> Result<f64, RoadSimError> {
        let out = self.delay_line.process(input, self.delays[n])?;
        let mut y = out * self.gains[n];
        for f in &mut self.filters {
            y = f.process(y);
        }
        Ok(y)
    }
}

/// Renders a [`Scene`] into multichannel audio.
///
/// # Example
///
/// ```
/// use ispot_roadsim::prelude::*;
///
/// # fn main() -> Result<(), RoadSimError> {
/// let fs = 8000.0;
/// let tone: Vec<f64> = ispot_dsp::generator::Sine::new(440.0, fs).take(4000).collect();
/// let scene = SceneBuilder::new(fs)
///     .source(SoundSource::new(tone, Trajectory::fixed(Position::new(10.0, 0.0, 1.0))))
///     .array(MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0)))
///     .build()?;
/// let audio = Simulator::new(scene)?.run()?;
/// assert_eq!(audio.num_channels(), 2);
/// assert_eq!(audio.len(), 4000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    scene: Scene,
    /// Source position sampled once per audio sample.
    source_positions: Vec<Position>,
}

impl Simulator {
    /// Creates a simulator for the given scene, sampling the source trajectory once
    /// per output sample.
    ///
    /// # Errors
    ///
    /// Returns an error if any sampled source position lies below the road surface.
    pub fn new(scene: Scene) -> Result<Self, RoadSimError> {
        let n = scene.source.len();
        let source_positions = scene.source.trajectory().sample(scene.sample_rate, n);
        if let Some(bad) = source_positions.iter().find(|p| p.z < 0.0) {
            return Err(RoadSimError::invalid_scene(format!(
                "source trajectory dips below the road surface (z = {})",
                bad.z
            )));
        }
        Ok(Simulator {
            scene,
            source_positions,
        })
    }

    /// Returns the scene being simulated.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Renders the scene and returns one audio channel per microphone.
    ///
    /// # Errors
    ///
    /// Propagates DSP errors (which indicate an internal inconsistency such as a delay
    /// exceeding the preallocated line length).
    pub fn run(&self) -> Result<MultichannelAudio, RoadSimError> {
        let scene = &self.scene;
        let fs = scene.sample_rate;
        let c = scene.speed_of_sound();
        let n = scene.source.len();
        let mut channels = Vec::with_capacity(scene.array.len());
        // Build all per-microphone paths up front.
        let mut mic_paths: Vec<Vec<PropagationPath>> = Vec::with_capacity(scene.array.len());
        for &mic in scene.array.positions() {
            let mut paths = Vec::new();
            paths.push(self.build_path(mic, false, fs, c)?);
            if scene.include_reflection {
                paths.push(self.build_path(mic, true, fs, c)?);
            }
            mic_paths.push(paths);
        }
        for paths in &mut mic_paths {
            let mut channel = vec![0.0; n];
            for (i, sample) in channel.iter_mut().enumerate() {
                let s = scene.source.sample(i);
                let mut acc = 0.0;
                for path in paths.iter_mut() {
                    acc += path.process(s, i)?;
                }
                *sample = acc;
            }
            channels.push(channel);
        }
        Ok(MultichannelAudio::new(channels, fs))
    }

    fn build_path(
        &self,
        mic: Position,
        reflected: bool,
        fs: f64,
        c: f64,
    ) -> Result<PropagationPath, RoadSimError> {
        let scene = &self.scene;
        let n = self.source_positions.len();
        let mut delays = Vec::with_capacity(n);
        let mut gains = Vec::with_capacity(n);
        let mut max_delay = 0.0f64;
        let mut sum_dist = 0.0f64;
        for &pos in &self.source_positions {
            let dist = if reflected {
                reflected_path_length(pos, mic)
            } else {
                pos.distance_to(mic)
            };
            let delay = dist / c * fs;
            max_delay = max_delay.max(delay);
            sum_dist += dist;
            delays.push(delay);
            gains.push(scene.spreading.gain_at(dist));
        }
        let mean_dist = sum_dist / n as f64;
        let delay_line = DelayLine::new(max_delay.ceil() as usize + 4, scene.interpolation)?;
        let mut filters = Vec::new();
        if reflected {
            filters.push(scene.asphalt.reflection_filter(fs, scene.filter_taps)?);
        }
        if scene.include_air_absorption {
            filters.push(
                scene
                    .atmosphere
                    .absorption_filter(mean_dist, fs, scene.filter_taps)?,
            );
        }
        Ok(PropagationPath {
            delay_line,
            delays,
            gains,
            filters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microphone::MicrophoneArray;
    use crate::scene::SceneBuilder;
    use crate::source::SoundSource;
    use crate::trajectory::Trajectory;
    use ispot_dsp::generator::Sine;
    use ispot_dsp::level::rms;

    fn static_scene(distance: f64, reflection: bool, air: bool) -> Scene {
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(8000).collect();
        SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::fixed(Position::new(distance, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(reflection)
            .air_absorption(air)
            .build()
            .unwrap()
    }

    #[test]
    fn static_source_arrives_after_propagation_delay() {
        let fs = 8000.0;
        let c = 343.0_f64;
        let distance = 34.3; // 0.1 s of propagation = 800 samples.
        let scene = static_scene(distance, false, false);
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let ch = audio.channel(0);
        let delay_samples = (distance / c * fs) as usize;
        let early_rms = rms(&ch[..delay_samples.saturating_sub(10)]);
        let late_rms = rms(&ch[delay_samples + 10..delay_samples + 2000]);
        assert!(early_rms < 1e-9, "early energy {early_rms}");
        assert!(late_rms > 1e-3, "late energy {late_rms}");
    }

    #[test]
    fn amplitude_follows_inverse_distance_law() {
        let near = Simulator::new(static_scene(10.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let far = Simulator::new(static_scene(20.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let near_rms = rms(&near.channel(0)[4000..]);
        let far_rms = rms(&far.channel(0)[4000..]);
        assert!(
            (near_rms / far_rms - 2.0).abs() < 0.1,
            "ratio {}",
            near_rms / far_rms
        );
    }

    #[test]
    fn reflection_adds_energy_for_elevated_geometry() {
        let without = Simulator::new(static_scene(15.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let with = Simulator::new(static_scene(15.0, true, false))
            .unwrap()
            .run()
            .unwrap();
        let rms_without = rms(&without.channel(0)[4000..]);
        let rms_with = rms(&with.channel(0)[4000..]);
        // The reflected path adds (incoherently) to the direct one.
        assert!(rms_with > rms_without * 1.01);
    }

    #[test]
    fn closer_microphone_receives_signal_earlier_and_louder() {
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(6000).collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::fixed(Position::new(20.0, 0.0, 1.0)),
            ))
            .array(
                MicrophoneArray::custom(vec![
                    Position::new(5.0, 0.0, 1.0),
                    Position::new(-5.0, 0.0, 1.0),
                ])
                .unwrap(),
            )
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let first_nonzero = |ch: &[f64]| ch.iter().position(|&x| x.abs() > 1e-6).unwrap();
        assert!(first_nonzero(audio.channel(0)) < first_nonzero(audio.channel(1)));
        assert!(rms(&audio.channel(0)[4000..]) > rms(&audio.channel(1)[4000..]));
    }

    #[test]
    fn moving_source_shifts_the_observed_frequency() {
        // Head-on approach at 30 m/s: observed frequency = f0 * c / (c - 30).
        let fs = 8000.0;
        let f0 = 500.0;
        let c = 343.0;
        let tone: Vec<f64> = Sine::new(f0, fs).take(16_000).collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::linear(
                    Position::new(-200.0, 0.0, 1.0),
                    Position::new(0.0, 0.0, 1.0),
                    30.0,
                ),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let ch = audio.channel(0);
        // Estimate the received frequency by zero-crossing counting over the second
        // second of audio (propagation delay has flushed by then).
        let seg = &ch[8000..16_000];
        let mut crossings = 0;
        for w in seg.windows(2) {
            if w[0] <= 0.0 && w[1] > 0.0 {
                crossings += 1;
            }
        }
        let est = crossings as f64 * fs / seg.len() as f64;
        let expected = f0 * c / (c - 30.0);
        assert!(
            (est - expected).abs() < 6.0,
            "estimated {est}, expected {expected}"
        );
    }

    #[test]
    fn source_below_road_is_rejected() {
        let fs = 8000.0;
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                vec![0.1; 16],
                Trajectory::fixed(Position::new(5.0, 0.0, -1.0)),
            ))
            .array(MicrophoneArray::linear(
                1,
                0.1,
                Position::new(0.0, 0.0, 1.0),
            ))
            .build()
            .unwrap();
        assert!(Simulator::new(scene).is_err());
    }

    #[test]
    fn mono_mixdown_averages_channels() {
        let audio = MultichannelAudio::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 8000.0);
        assert_eq!(audio.to_mono(), vec![2.0, 3.0]);
        assert_eq!(audio.num_channels(), 2);
        assert_eq!(audio.len(), 2);
    }
}
