//! The simulation engine: renders a [`Scene`] into multichannel
//! audio.
//!
//! The engine reproduces the pyroadacoustics block scheme (Fig. 2 of the paper): per
//! source–microphone pair, the emitted signal is pushed into variable-length delay
//! lines (the direct path, the road-reflected path, and — inside a street canyon —
//! one first-order image path per façade), read at the fractional delay dictated
//! by the instantaneous propagation distance, scaled by the spherical-spreading gains
//! (shaded further by any occluding screens) and shaped by FIR filters modelling air
//! absorption and the asphalt reflection.
//!
//! Multi-source scenes are rendered **one source per unit of work, in parallel across
//! threads**: every source owns its delay lines, FIR filters and output scratch, so
//! wall-clock render time scales with the available cores rather than with the source
//! count. The per-source contributions are then summed into the array output in source
//! order, which keeps the render bit-for-bit deterministic regardless of thread
//! scheduling — a 2-source render equals the sample-wise sum of the two single-source
//! renders exactly (see the `linearity` integration test).

use crate::environment::StreetCanyon;
use crate::error::RoadSimError;
use crate::geometry::Position;
use crate::scene::Scene;
use ispot_dsp::delay::DelayLine;
use ispot_dsp::fir::FirFilter;

/// Multichannel audio produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MultichannelAudio {
    channels: Vec<Vec<f64>>,
    sample_rate: f64,
}

impl MultichannelAudio {
    /// Creates a multichannel buffer from per-channel sample vectors.
    pub fn new(channels: Vec<Vec<f64>>, sample_rate: f64) -> Self {
        MultichannelAudio {
            channels,
            sample_rate,
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of samples per channel (0 if there are no channels).
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// Returns true if the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Returns channel `index` as a sample slice.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn channel(&self, index: usize) -> &[f64] {
        &self.channels[index]
    }

    /// Returns all channels.
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// Consumes the buffer, returning the per-channel vectors.
    pub fn into_channels(self) -> Vec<Vec<f64>> {
        self.channels
    }

    /// Averages all channels into a mono signal.
    pub fn to_mono(&self) -> Vec<f64> {
        if self.channels.is_empty() {
            return Vec::new();
        }
        let n = self.len();
        let scale = 1.0 / self.channels.len() as f64;
        (0..n)
            .map(|i| self.channels.iter().map(|c| c[i]).sum::<f64>() * scale)
            .collect()
    }
}

/// Which geometric route a propagation path takes from source to microphone.
///
/// Every kind reduces to the same machinery — mirror the source into an
/// *effective* position, then delay/attenuate/filter the ray to the mic — so
/// adding environment geometry composes freely with Doppler, spreading and
/// absorption, and keeps the render exactly linear in the sources.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PathKind {
    /// Line-of-sight ray.
    Direct,
    /// Asphalt bounce: image source below the road plane (`z -> -z`).
    Road,
    /// Street-canyon façade bounce: image source across the wall at `wall_y`.
    Wall {
        /// The reflecting façade's y coordinate.
        wall_y: f64,
    },
}

impl PathKind {
    /// The image ("effective") source position seen by the microphone.
    fn effective_position(self, pos: Position) -> Position {
        match self {
            PathKind::Direct => pos,
            PathKind::Road => pos.reflected_across_road(),
            PathKind::Wall { wall_y } => StreetCanyon::image_across_wall(pos, wall_y),
        }
    }
}

/// One propagation path (direct or reflected) from one source to one microphone.
#[derive(Debug)]
struct PropagationPath {
    delay_line: DelayLine,
    /// Per-sample delay in samples.
    delays: Vec<f64>,
    /// Per-sample spreading gain.
    gains: Vec<f64>,
    /// Optional cascade of FIR filters applied after the delay/gain stage.
    filters: Vec<FirFilter>,
}

impl PropagationPath {
    fn process(&mut self, input: f64, n: usize) -> Result<f64, RoadSimError> {
        let out = self.delay_line.process(input, self.delays[n])?;
        let mut y = out * self.gains[n];
        for f in &mut self.filters {
            y = f.process(y);
        }
        Ok(y)
    }
}

/// Renders a [`Scene`] into multichannel audio.
///
/// # Example
///
/// ```
/// use ispot_roadsim::prelude::*;
///
/// # fn main() -> Result<(), RoadSimError> {
/// let fs = 8000.0;
/// let tone: Vec<f64> = ispot_dsp::generator::Sine::new(440.0, fs).take(4000).collect();
/// let hum: Vec<f64> = ispot_dsp::generator::Sine::new(90.0, fs).take(4000).collect();
/// let scene = SceneBuilder::new(fs)
///     .source(SoundSource::new(tone, Trajectory::fixed(Position::new(10.0, 0.0, 1.0))))
///     .source(SoundSource::new(hum, Trajectory::fixed(Position::new(-6.0, 2.0, 0.6))))
///     .array(MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0)))
///     .build()?;
/// let audio = Simulator::new(scene)?.run()?;
/// assert_eq!(audio.num_channels(), 2);
/// assert_eq!(audio.len(), 4000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    scene: Scene,
    /// Per-source positions, each sampled once per output sample.
    source_positions: Vec<Vec<Position>>,
    /// Output length in samples (the latest source end).
    num_samples: usize,
}

impl Simulator {
    /// Creates a simulator for the given scene, sampling every source trajectory once
    /// per output sample. The output length is the latest source end (onset delay plus
    /// signal length over all sources).
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidSource`] if any sampled source position lies
    /// below the road surface, or outside the street canyon when one is
    /// configured (the image-source construction needs the source between the
    /// façades).
    pub fn new(scene: Scene) -> Result<Self, RoadSimError> {
        let num_samples = scene.duration_samples();
        let mut source_positions = Vec::with_capacity(scene.sources.len());
        for (s, source) in scene.sources.iter().enumerate() {
            let positions = source.trajectory().sample(scene.sample_rate, num_samples);
            if let Some(bad) = positions.iter().find(|p| p.z < 0.0) {
                return Err(RoadSimError::invalid_source(
                    s,
                    format!("trajectory dips below the road surface (z = {})", bad.z),
                ));
            }
            if let Some(canyon) = &scene.canyon {
                if let Some(bad) = positions.iter().find(|p| !canyon.contains_y(p.y)) {
                    return Err(RoadSimError::invalid_source(
                        s,
                        format!(
                            "trajectory leaves the street canyon (y = {}, width = {})",
                            bad.y,
                            canyon.width_m()
                        ),
                    ));
                }
            }
            source_positions.push(positions);
        }
        Ok(Simulator {
            scene,
            source_positions,
            num_samples,
        })
    }

    /// Returns the scene being simulated.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Renders the scene and returns one audio channel per microphone.
    ///
    /// Sources are rendered in parallel (one per thread, up to the machine's
    /// parallelism), each into its own scratch channels; the per-source results are
    /// summed in source order, so the output is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates DSP errors (which indicate an internal inconsistency such as a delay
    /// exceeding the preallocated line length).
    pub fn run(&self) -> Result<MultichannelAudio, RoadSimError> {
        self.run_with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Renders the scene like [`run`](Self::run) with an explicit worker-thread
    /// count (clamped to `1..=num_sources`). The output is identical for every
    /// worker count — work distribution never affects summation order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_with_threads(&self, workers: usize) -> Result<MultichannelAudio, RoadSimError> {
        let num_sources = self.scene.sources.len();
        let rendered = if num_sources <= 1 || workers <= 1 {
            (0..num_sources)
                .map(|s| self.render_source(s))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            self.render_sources_parallel(workers.min(num_sources))?
        };
        let mut channels = vec![vec![0.0; self.num_samples]; self.scene.array.len()];
        for source_channels in rendered {
            for (acc, ch) in channels.iter_mut().zip(source_channels) {
                for (a, x) in acc.iter_mut().zip(ch) {
                    *a += x;
                }
            }
        }
        Ok(MultichannelAudio::new(channels, self.scene.sample_rate))
    }

    /// Renders every source on its own scratch, spreading contiguous chunks of the
    /// source list over `workers` scoped threads.
    fn render_sources_parallel(&self, workers: usize) -> Result<Vec<Vec<Vec<f64>>>, RoadSimError> {
        let num_sources = self.scene.sources.len();
        let chunk = num_sources.div_ceil(workers);
        let mut slots: Vec<Option<Result<Vec<Vec<f64>>, RoadSimError>>> =
            (0..num_sources).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let first = w * chunk;
                scope.spawn(move || {
                    for (j, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(self.render_source(first + j));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every source index was assigned to a worker"))
            .collect()
    }

    /// Renders the contribution of source `s` alone to every microphone.
    fn render_source(&self, s: usize) -> Result<Vec<Vec<f64>>, RoadSimError> {
        let scene = &self.scene;
        let fs = scene.sample_rate;
        let c = scene.speed_of_sound();
        let source = &scene.sources[s];
        let onset = source.start_delay_samples(fs);
        let mut channels = Vec::with_capacity(scene.array.len());
        for &mic in scene.array.positions() {
            let mut paths = Vec::with_capacity(4);
            paths.push(self.build_path(s, mic, PathKind::Direct, fs, c)?);
            if scene.include_reflection {
                paths.push(self.build_path(s, mic, PathKind::Road, fs, c)?);
            }
            if let Some(canyon) = &scene.canyon {
                for wall_y in canyon.wall_ys() {
                    paths.push(self.build_path(s, mic, PathKind::Wall { wall_y }, fs, c)?);
                }
            }
            let mut channel = vec![0.0; self.num_samples];
            // Fast-forward over the pre-onset region: the delay lines and FIR
            // filters are zero-state and would only push zeros around, so every
            // output sample before the onset is exactly 0.0 (the channel's
            // initial value) and the states at the onset are identical.
            for (i, sample) in channel
                .iter_mut()
                .enumerate()
                .skip(onset.min(self.num_samples))
            {
                let x = source.sample(i - onset);
                let mut acc = 0.0;
                for path in paths.iter_mut() {
                    acc += path.process(x, i)?;
                }
                *sample = acc;
            }
            channels.push(channel);
        }
        Ok(channels)
    }

    fn build_path(
        &self,
        s: usize,
        mic: Position,
        kind: PathKind,
        fs: f64,
        c: f64,
    ) -> Result<PropagationPath, RoadSimError> {
        let scene = &self.scene;
        let positions = &self.source_positions[s];
        let n = positions.len();
        // A façade bounce is attenuated by the wall's flat reflection gain.
        let kind_gain = match kind {
            PathKind::Wall { .. } => scene
                .canyon
                .as_ref()
                .map_or(1.0, StreetCanyon::reflection_gain),
            _ => 1.0,
        };
        let mut delays = Vec::with_capacity(n);
        let mut gains = Vec::with_capacity(n);
        let mut max_delay = 0.0f64;
        let mut sum_dist = 0.0f64;
        for &pos in positions {
            let effective = kind.effective_position(pos);
            let dist = effective.distance_to(mic);
            let delay = dist / c * fs;
            max_delay = max_delay.max(delay);
            sum_dist += dist;
            delays.push(delay);
            // Occluders shade the unfolded ray from the image source to the
            // mic; overlapping screens multiply. Evaluated per sample so a
            // moving source sweeps smoothly through shadow boundaries.
            let mut g = scene.spreading.gain_at(dist) * kind_gain;
            for occluder in &scene.occluders {
                g *= occluder.gain(effective, mic);
            }
            gains.push(g);
        }
        let mean_dist = sum_dist / n as f64;
        let delay_line = DelayLine::new(max_delay.ceil() as usize + 4, scene.interpolation)?;
        let mut filters = Vec::new();
        if kind == PathKind::Road {
            filters.push(scene.asphalt.reflection_filter(fs, scene.filter_taps)?);
        }
        if scene.include_air_absorption {
            filters.push(
                scene
                    .atmosphere
                    .absorption_filter(mean_dist, fs, scene.filter_taps)?,
            );
        }
        Ok(PropagationPath {
            delay_line,
            delays,
            gains,
            filters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microphone::MicrophoneArray;
    use crate::scene::SceneBuilder;
    use crate::source::SoundSource;
    use crate::trajectory::Trajectory;
    use ispot_dsp::generator::Sine;
    use ispot_dsp::level::rms;

    fn static_scene(distance: f64, reflection: bool, air: bool) -> Scene {
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(8000).collect();
        SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::fixed(Position::new(distance, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(reflection)
            .air_absorption(air)
            .build()
            .unwrap()
    }

    #[test]
    fn static_source_arrives_after_propagation_delay() {
        let fs = 8000.0;
        let c = 343.0_f64;
        let distance = 34.3; // 0.1 s of propagation = 800 samples.
        let scene = static_scene(distance, false, false);
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let ch = audio.channel(0);
        let delay_samples = (distance / c * fs) as usize;
        let early_rms = rms(&ch[..delay_samples.saturating_sub(10)]);
        let late_rms = rms(&ch[delay_samples + 10..delay_samples + 2000]);
        assert!(early_rms < 1e-9, "early energy {early_rms}");
        assert!(late_rms > 1e-3, "late energy {late_rms}");
    }

    #[test]
    fn amplitude_follows_inverse_distance_law() {
        let near = Simulator::new(static_scene(10.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let far = Simulator::new(static_scene(20.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let near_rms = rms(&near.channel(0)[4000..]);
        let far_rms = rms(&far.channel(0)[4000..]);
        assert!(
            (near_rms / far_rms - 2.0).abs() < 0.1,
            "ratio {}",
            near_rms / far_rms
        );
    }

    #[test]
    fn reflection_adds_energy_for_elevated_geometry() {
        let without = Simulator::new(static_scene(15.0, false, false))
            .unwrap()
            .run()
            .unwrap();
        let with = Simulator::new(static_scene(15.0, true, false))
            .unwrap()
            .run()
            .unwrap();
        let rms_without = rms(&without.channel(0)[4000..]);
        let rms_with = rms(&with.channel(0)[4000..]);
        // The reflected path adds (incoherently) to the direct one.
        assert!(rms_with > rms_without * 1.01);
    }

    #[test]
    fn closer_microphone_receives_signal_earlier_and_louder() {
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(6000).collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::fixed(Position::new(20.0, 0.0, 1.0)),
            ))
            .array(
                MicrophoneArray::custom(vec![
                    Position::new(5.0, 0.0, 1.0),
                    Position::new(-5.0, 0.0, 1.0),
                ])
                .unwrap(),
            )
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let first_nonzero = |ch: &[f64]| ch.iter().position(|&x| x.abs() > 1e-6).unwrap();
        assert!(first_nonzero(audio.channel(0)) < first_nonzero(audio.channel(1)));
        assert!(rms(&audio.channel(0)[4000..]) > rms(&audio.channel(1)[4000..]));
    }

    #[test]
    fn moving_source_shifts_the_observed_frequency() {
        // Head-on approach at 30 m/s: observed frequency = f0 * c / (c - 30).
        let fs = 8000.0;
        let f0 = 500.0;
        let c = 343.0;
        let tone: Vec<f64> = Sine::new(f0, fs).take(16_000).collect();
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::linear(
                    Position::new(-200.0, 0.0, 1.0),
                    Position::new(0.0, 0.0, 1.0),
                    30.0,
                ),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let ch = audio.channel(0);
        // Estimate the received frequency by zero-crossing counting over the second
        // second of audio (propagation delay has flushed by then).
        let seg = &ch[8000..16_000];
        let mut crossings = 0;
        for w in seg.windows(2) {
            if w[0] <= 0.0 && w[1] > 0.0 {
                crossings += 1;
            }
        }
        let est = crossings as f64 * fs / seg.len() as f64;
        let expected = f0 * c / (c - 30.0);
        assert!(
            (est - expected).abs() < 6.0,
            "estimated {est}, expected {expected}"
        );
    }

    #[test]
    fn source_below_road_is_rejected() {
        let fs = 8000.0;
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                vec![0.1; 16],
                Trajectory::fixed(Position::new(5.0, 0.0, -1.0)),
            ))
            .array(MicrophoneArray::linear(
                1,
                0.1,
                Position::new(0.0, 0.0, 1.0),
            ))
            .build()
            .unwrap();
        let err = Simulator::new(scene).unwrap_err();
        assert!(matches!(err, RoadSimError::InvalidSource { index: 0, .. }));
    }

    #[test]
    fn two_source_render_is_the_sum_of_single_source_renders() {
        let fs = 8000.0;
        let tone_a: Vec<f64> = Sine::new(500.0, fs).take(4000).collect();
        let tone_b: Vec<f64> = Sine::new(730.0, fs).take(4000).collect();
        let src_a = SoundSource::new(
            tone_a,
            Trajectory::linear(
                Position::new(-20.0, 4.0, 1.0),
                Position::new(20.0, 4.0, 1.0),
                15.0,
            ),
        );
        let src_b = SoundSource::new(tone_b, Trajectory::fixed(Position::new(8.0, -3.0, 0.8)))
            .with_gain(0.5);
        let array = MicrophoneArray::linear(3, 0.15, Position::new(0.0, 0.0, 1.0));
        let render = |sources: Vec<SoundSource>| {
            let scene = SceneBuilder::new(fs)
                .sources(sources)
                .array(array.clone())
                .reflection(true)
                .air_absorption(true)
                .filter_taps(33)
                .build()
                .unwrap();
            Simulator::new(scene).unwrap().run().unwrap()
        };
        let both = render(vec![src_a.clone(), src_b.clone()]);
        let only_a = render(vec![src_a]);
        let only_b = render(vec![src_b]);
        assert_eq!(both.num_channels(), 3);
        for m in 0..3 {
            for i in 0..both.len() {
                let expected = only_a.channel(m)[i] + only_b.channel(m)[i];
                assert!(
                    (both.channel(m)[i] - expected).abs() == 0.0,
                    "channel {m} sample {i} diverged"
                );
            }
        }
    }

    #[test]
    fn delayed_source_is_silent_until_its_onset() {
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(600.0, fs).take(2000).collect();
        // Static source 17.15 m away (~0.05 s = 400 samples of propagation) whose
        // signal only starts at t = 0.25 s (2000 samples).
        let scene = SceneBuilder::new(fs)
            .source(
                SoundSource::new(tone, Trajectory::fixed(Position::new(17.15, 0.0, 1.0)))
                    .with_start(0.25),
            )
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        assert_eq!(audio.len(), 4000);
        let ch = audio.channel(0);
        assert!(rms(&ch[..2300]) < 1e-9, "energy before onset + propagation");
        assert!(rms(&ch[2500..]) > 1e-3, "no energy after onset");
    }

    #[test]
    fn onset_fast_forward_matches_explicit_zero_padding() {
        // `with_start` skips the pre-onset region entirely; rendering the same
        // signal with the onset baked in as literal leading zeros must produce a
        // bit-identical result (the skipped machinery only shuffles zeros).
        let fs = 8000.0;
        let onset = 0.17; // 1360 samples
        let tone: Vec<f64> = Sine::new(640.0, fs).take(2000).collect();
        let traj = Trajectory::linear(
            Position::new(-12.0, 3.0, 1.0),
            Position::new(12.0, 3.0, 1.0),
            16.0,
        );
        let array = MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0));
        let render = |source: SoundSource| {
            let scene = SceneBuilder::new(fs)
                .source(source)
                .array(array.clone())
                .reflection(true)
                .air_absorption(true)
                .filter_taps(33)
                .build()
                .unwrap();
            Simulator::new(scene).unwrap().run().unwrap()
        };
        let delayed = render(SoundSource::new(tone.clone(), traj.clone()).with_start(onset));
        let mut padded_signal = vec![0.0; (onset * fs).round() as usize];
        padded_signal.extend_from_slice(&tone);
        let padded = render(SoundSource::new(padded_signal, traj));
        assert_eq!(delayed, padded);
    }

    #[test]
    fn many_source_render_matches_sequential_sum() {
        // More sources than a typical core count exercises the chunked worker split.
        let fs = 8000.0;
        let array = MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0));
        let sources: Vec<SoundSource> = (0..9)
            .map(|k| {
                let tone: Vec<f64> = Sine::new(300.0 + 70.0 * k as f64, fs).take(1600).collect();
                SoundSource::new(
                    tone,
                    Trajectory::fixed(Position::new(5.0 + k as f64, -4.0 + k as f64, 1.0)),
                )
            })
            .collect();
        let scene = SceneBuilder::new(fs)
            .sources(sources.clone())
            .array(array.clone())
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        // Force several workers so the chunked split is exercised even on
        // single-core CI machines, and check every worker count agrees.
        let sim = Simulator::new(scene).unwrap();
        let parallel = sim.run_with_threads(3).unwrap();
        assert_eq!(sim.run_with_threads(1).unwrap(), parallel);
        assert_eq!(sim.run_with_threads(4).unwrap(), parallel);
        assert_eq!(sim.run_with_threads(64).unwrap(), parallel);
        assert_eq!(sim.run().unwrap(), parallel);
        let mut expected = vec![vec![0.0; 1600]; 2];
        for source in sources {
            let scene = SceneBuilder::new(fs)
                .source(source)
                .array(array.clone())
                .reflection(false)
                .air_absorption(false)
                .build()
                .unwrap();
            let solo = Simulator::new(scene).unwrap().run().unwrap();
            for (acc, ch) in expected.iter_mut().zip(solo.channels()) {
                for (a, x) in acc.iter_mut().zip(ch) {
                    *a += x;
                }
            }
        }
        for (m, exp_ch) in expected.iter().enumerate() {
            for (i, (&got, &want)) in parallel.channel(m).iter().zip(exp_ch).enumerate() {
                assert!((got - want).abs() < 1e-12, "channel {m} sample {i}");
            }
        }
    }

    #[test]
    fn canyon_adds_delayed_wall_energy() {
        use crate::environment::StreetCanyon;
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(8000).collect();
        let build = |canyon: Option<StreetCanyon>| {
            let mut b = SceneBuilder::new(fs)
                .source(SoundSource::new(
                    tone.clone(),
                    Trajectory::fixed(Position::new(15.0, 2.0, 1.0)),
                ))
                .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
                .reflection(false)
                .air_absorption(false);
            if let Some(c) = canyon {
                b = b.canyon(c);
            }
            Simulator::new(b.build().unwrap()).unwrap().run().unwrap()
        };
        let free_field = build(None);
        let canyon = build(Some(StreetCanyon::new(12.0, 0.6).unwrap()));
        // The wall images add (incoherently) to the direct path...
        let rms_free = rms(&free_field.channel(0)[4000..]);
        let rms_canyon = rms(&canyon.channel(0)[4000..]);
        assert!(rms_canyon > rms_free * 1.02, "{rms_canyon} vs {rms_free}");
        // ...and arrive strictly after it: the first-arrival sample is identical.
        let first = |ch: &[f64]| ch.iter().position(|&x| x.abs() > 1e-9).unwrap();
        assert_eq!(first(free_field.channel(0)), first(canyon.channel(0)));
        // A perfectly absorbing canyon is bit-identical to the free field.
        let absorbing = build(Some(StreetCanyon::new(12.0, 0.0).unwrap()));
        assert_eq!(absorbing, free_field);
    }

    #[test]
    fn canyon_rejects_sources_outside_the_walls() {
        use crate::environment::StreetCanyon;
        let fs = 8000.0;
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                vec![0.1; 64],
                Trajectory::fixed(Position::new(10.0, 9.0, 1.0)),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .canyon(StreetCanyon::new(12.0, 0.5).unwrap())
            .build()
            .unwrap();
        let err = Simulator::new(scene).unwrap_err();
        assert!(matches!(err, RoadSimError::InvalidSource { index: 0, .. }));
    }

    #[test]
    fn occluder_attenuates_the_shadowed_source() {
        use crate::environment::Occluder;
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(8000).collect();
        let build = |occluder: Option<Occluder>| {
            let mut b = SceneBuilder::new(fs)
                .source(SoundSource::new(
                    tone.clone(),
                    Trajectory::fixed(Position::new(20.0, 0.0, 1.0)),
                ))
                .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
                .reflection(false)
                .air_absorption(false);
            if let Some(o) = occluder {
                b = b.occluder(o);
            }
            Simulator::new(b.build().unwrap()).unwrap().run().unwrap()
        };
        let clear = build(None);
        let wall = Occluder::screen(
            Position::new(8.0, -10.0, 0.0),
            Position::new(8.0, 10.0, 0.0),
            6.0,
        );
        let shadowed = build(Some(wall));
        let rms_clear = rms(&clear.channel(0)[4000..]);
        let rms_shadow = rms(&shadowed.channel(0)[4000..]);
        let ratio = rms_shadow / rms_clear;
        // Deep shadow: the residual is the diffraction transmission exactly.
        assert!(
            (ratio - crate::environment::DEFAULT_TRANSMISSION).abs() < 0.01,
            "shadow ratio {ratio}"
        );
    }

    #[test]
    fn around_the_corner_approach_emerges_gradually() {
        use crate::environment::Occluder;
        let fs = 8000.0;
        let tone: Vec<f64> = Sine::new(500.0, fs).take(24_000).collect();
        // A source driving down a side street (x = 15, y from 30 to -10 over
        // 3 s) behind a building wall along x = 6, y in [3, 40]: occluded at
        // first, emerging as it passes the corner at y = 3.
        let scene = SceneBuilder::new(fs)
            .source(SoundSource::new(
                tone,
                Trajectory::linear(
                    Position::new(15.0, 30.0, 1.0),
                    Position::new(15.0, -10.0, 1.0),
                    40.0 / 3.0,
                ),
            ))
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, 1.0)]).unwrap())
            .occluder(Occluder::screen(
                Position::new(6.0, 3.0, 0.0),
                Position::new(6.0, 40.0, 0.0),
                8.0,
            ))
            .reflection(false)
            .air_absorption(false)
            .build()
            .unwrap();
        let audio = Simulator::new(scene).unwrap().run().unwrap();
        let ch = audio.channel(0);
        // Early (deep shadow) vs late (clear) energy, after propagation flush.
        let early = rms(&ch[4000..8000]);
        let late = rms(&ch[18_000..22_000]);
        assert!(early > 1e-6, "diffraction leakage should be audible");
        assert!(late > 3.0 * early, "emergence: early {early}, late {late}");
        // No clicks at the shadow boundary: adjacent-sample jumps stay small.
        let max_jump = ch
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        let peak = ch.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        // A 500 Hz tone at 8 kHz moves at most ~2*pi*500/8000 * peak ~ 0.39*peak
        // per sample; a gain step would approach 2*peak.
        assert!(max_jump < 0.6 * peak, "jump {max_jump} vs peak {peak}");
    }

    #[test]
    fn mono_mixdown_averages_channels() {
        let audio = MultichannelAudio::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 8000.0);
        assert_eq!(audio.to_mono(), vec![2.0, 3.0]);
        assert_eq!(audio.num_channels(), 2);
        assert_eq!(audio.len(), 2);
    }
}
