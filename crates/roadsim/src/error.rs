//! Error type for the road acoustics simulator.

use ispot_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a road-acoustics simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadSimError {
    /// A scene parameter is missing or invalid.
    InvalidScene {
        /// Description of the problem.
        reason: String,
    },
    /// A physical parameter is outside its plausible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// One of the scene's sound sources is invalid.
    InvalidSource {
        /// Index of the offending source in the scene's source list.
        index: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An underlying DSP operation failed.
    Dsp(DspError),
}

impl fmt::Display for RoadSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadSimError::InvalidScene { reason } => write!(f, "invalid scene: {reason}"),
            RoadSimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            RoadSimError::InvalidSource { index, reason } => {
                write!(f, "invalid source {index}: {reason}")
            }
            RoadSimError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl Error for RoadSimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RoadSimError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for RoadSimError {
    fn from(e: DspError) -> Self {
        RoadSimError::Dsp(e)
    }
}

impl RoadSimError {
    /// Convenience constructor for [`RoadSimError::InvalidScene`].
    pub fn invalid_scene(reason: impl Into<String>) -> Self {
        RoadSimError::InvalidScene {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`RoadSimError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, reason: impl Into<String>) -> Self {
        RoadSimError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`RoadSimError::InvalidSource`].
    pub fn invalid_source(index: usize, reason: impl Into<String>) -> Self {
        RoadSimError::InvalidSource {
            index,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RoadSimError::invalid_scene("no source configured");
        assert!(e.to_string().contains("no source"));
        let e = RoadSimError::invalid_parameter("temperature_c", "out of range");
        assert!(e.to_string().contains("temperature_c"));
        let e = RoadSimError::invalid_source(2, "signal is empty");
        assert!(e.to_string().contains("source 2"));
    }

    #[test]
    fn dsp_errors_are_wrapped_with_source() {
        let inner = DspError::invalid_parameter("delay", "negative");
        let e: RoadSimError = inner.clone().into();
        assert_eq!(e, RoadSimError::Dsp(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RoadSimError>();
    }
}
