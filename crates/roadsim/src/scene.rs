//! Scene description: everything the simulation engine needs to render audio.

use crate::asphalt::AsphaltModel;
use crate::atmosphere::Atmosphere;
use crate::attenuation::SphericalSpreading;
use crate::error::RoadSimError;
use crate::microphone::MicrophoneArray;
use crate::source::SoundSource;
use ispot_dsp::interp::Interpolator;

/// A complete road-acoustics scene: one moving source, one static microphone array and
/// the physical environment.
///
/// Build it with [`SceneBuilder`].
#[derive(Debug, Clone)]
pub struct Scene {
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// The emitting source.
    pub source: SoundSource,
    /// The receiving microphone array.
    pub array: MicrophoneArray,
    /// Atmospheric conditions.
    pub atmosphere: Atmosphere,
    /// Asphalt reflection model.
    pub asphalt: AsphaltModel,
    /// Spherical spreading model.
    pub spreading: SphericalSpreading,
    /// Whether the road-reflected path is rendered.
    pub include_reflection: bool,
    /// Whether air absorption filtering is applied.
    pub include_air_absorption: bool,
    /// Interpolation method used by the propagation delay lines.
    pub interpolation: Interpolator,
    /// Number of taps of the air-absorption and asphalt FIR filters.
    pub filter_taps: usize,
}

impl Scene {
    /// Speed of sound for the scene's atmosphere, m/s.
    pub fn speed_of_sound(&self) -> f64 {
        self.atmosphere.speed_of_sound()
    }
}

/// Builder for [`Scene`].
///
/// # Example
///
/// ```
/// use ispot_roadsim::prelude::*;
///
/// # fn main() -> Result<(), RoadSimError> {
/// let scene = SceneBuilder::new(16_000.0)
///     .source(SoundSource::new(vec![0.0; 100], Trajectory::fixed(Position::new(10.0, 0.0, 1.0))))
///     .array(MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0)))
///     .reflection(true)
///     .air_absorption(true)
///     .build()?;
/// assert!(scene.speed_of_sound() > 330.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    sample_rate: f64,
    source: Option<SoundSource>,
    array: Option<MicrophoneArray>,
    atmosphere: Atmosphere,
    asphalt: AsphaltModel,
    spreading: SphericalSpreading,
    include_reflection: bool,
    include_air_absorption: bool,
    interpolation: Interpolator,
    filter_taps: usize,
}

impl SceneBuilder {
    /// Starts a scene at the given sampling rate (Hz).
    pub fn new(sample_rate: f64) -> Self {
        SceneBuilder {
            sample_rate,
            source: None,
            array: None,
            atmosphere: Atmosphere::default(),
            asphalt: AsphaltModel::default(),
            spreading: SphericalSpreading::default(),
            include_reflection: true,
            include_air_absorption: true,
            interpolation: Interpolator::Lagrange3,
            filter_taps: 65,
        }
    }

    /// Sets the sound source.
    pub fn source(mut self, source: SoundSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Sets the microphone array.
    pub fn array(mut self, array: MicrophoneArray) -> Self {
        self.array = Some(array);
        self
    }

    /// Sets the atmospheric conditions (default: 20 °C, 50 % RH, 1 atm).
    pub fn atmosphere(mut self, atmosphere: Atmosphere) -> Self {
        self.atmosphere = atmosphere;
        self
    }

    /// Sets the asphalt model (default: dense asphalt).
    pub fn asphalt(mut self, asphalt: AsphaltModel) -> Self {
        self.asphalt = asphalt;
        self
    }

    /// Sets the spherical-spreading model.
    pub fn spreading(mut self, spreading: SphericalSpreading) -> Self {
        self.spreading = spreading;
        self
    }

    /// Enables or disables the road-reflected path (default: enabled).
    pub fn reflection(mut self, enabled: bool) -> Self {
        self.include_reflection = enabled;
        self
    }

    /// Enables or disables air-absorption filtering (default: enabled).
    pub fn air_absorption(mut self, enabled: bool) -> Self {
        self.include_air_absorption = enabled;
        self
    }

    /// Sets the delay-line interpolation method (default: third-order Lagrange).
    pub fn interpolation(mut self, interpolation: Interpolator) -> Self {
        self.interpolation = interpolation;
        self
    }

    /// Sets the number of FIR taps used for air-absorption and asphalt filters
    /// (default: 65; must be odd).
    pub fn filter_taps(mut self, taps: usize) -> Self {
        self.filter_taps = taps;
        self
    }

    /// Validates the configuration and produces a [`Scene`].
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidScene`] if the source or array is missing, the
    /// sampling rate is not positive, the source signal is empty, or any microphone or
    /// the source trajectory lies below the road surface.
    pub fn build(self) -> Result<Scene, RoadSimError> {
        if self.sample_rate <= 0.0 {
            return Err(RoadSimError::invalid_scene(
                "sampling rate must be positive",
            ));
        }
        let source = self
            .source
            .ok_or_else(|| RoadSimError::invalid_scene("no sound source configured"))?;
        if source.is_empty() {
            return Err(RoadSimError::invalid_scene("source signal is empty"));
        }
        let array = self
            .array
            .ok_or_else(|| RoadSimError::invalid_scene("no microphone array configured"))?;
        for (i, p) in array.positions().iter().enumerate() {
            if p.z < 0.0 {
                return Err(RoadSimError::invalid_scene(format!(
                    "microphone {i} lies below the road surface (z = {})",
                    p.z
                )));
            }
        }
        if self.filter_taps == 0 || self.filter_taps.is_multiple_of(2) {
            return Err(RoadSimError::invalid_scene(
                "filter_taps must be odd and non-zero",
            ));
        }
        Ok(Scene {
            sample_rate: self.sample_rate,
            source,
            array,
            atmosphere: self.atmosphere,
            asphalt: self.asphalt,
            spreading: self.spreading,
            include_reflection: self.include_reflection,
            include_air_absorption: self.include_air_absorption,
            interpolation: self.interpolation,
            filter_taps: self.filter_taps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;
    use crate::trajectory::Trajectory;

    fn valid_builder() -> SceneBuilder {
        SceneBuilder::new(16_000.0)
            .source(SoundSource::new(
                vec![0.1; 64],
                Trajectory::fixed(Position::new(10.0, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::linear(
                2,
                0.2,
                Position::new(0.0, 0.0, 1.0),
            ))
    }

    #[test]
    fn valid_scene_builds() {
        let scene = valid_builder().build().unwrap();
        assert_eq!(scene.array.len(), 2);
        assert!(scene.include_reflection);
    }

    #[test]
    fn missing_source_or_array_is_rejected() {
        assert!(SceneBuilder::new(16_000.0).build().is_err());
        let no_array = SceneBuilder::new(16_000.0).source(SoundSource::new(
            vec![0.1; 4],
            Trajectory::fixed(Position::ORIGIN),
        ));
        assert!(no_array.build().is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(valid_builder().filter_taps(64).build().is_err());
        let below_road = valid_builder()
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, -0.5)]).unwrap());
        assert!(below_road.build().is_err());
        assert!(SceneBuilder::new(0.0).build().is_err());
        let empty_signal = SceneBuilder::new(16_000.0)
            .source(SoundSource::new(
                vec![],
                Trajectory::fixed(Position::new(1.0, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::linear(
                1,
                0.1,
                Position::new(0.0, 0.0, 1.0),
            ));
        assert!(empty_signal.build().is_err());
    }

    #[test]
    fn builder_flags_are_applied() {
        let scene = valid_builder()
            .reflection(false)
            .air_absorption(false)
            .filter_taps(33)
            .build()
            .unwrap();
        assert!(!scene.include_reflection);
        assert!(!scene.include_air_absorption);
        assert_eq!(scene.filter_taps, 33);
    }
}
