//! Scene description: everything the simulation engine needs to render audio.

use crate::asphalt::AsphaltModel;
use crate::atmosphere::Atmosphere;
use crate::attenuation::SphericalSpreading;
use crate::environment::{Occluder, StreetCanyon};
use crate::error::RoadSimError;
use crate::microphone::MicrophoneArray;
use crate::source::SoundSource;
use ispot_dsp::interp::Interpolator;

/// A complete road-acoustics scene: any number of moving sources, one static
/// microphone array and the physical environment.
///
/// Each source is rendered independently (direct path plus road reflection per
/// microphone) and the contributions are summed at every microphone — the acoustic
/// superposition a real array would record. Build it with [`SceneBuilder`].
#[derive(Debug, Clone)]
pub struct Scene {
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// The emitting sources, in the order they were added.
    pub sources: Vec<SoundSource>,
    /// The receiving microphone array.
    pub array: MicrophoneArray,
    /// Atmospheric conditions.
    pub atmosphere: Atmosphere,
    /// Asphalt reflection model.
    pub asphalt: AsphaltModel,
    /// Spherical spreading model.
    pub spreading: SphericalSpreading,
    /// Whether the road-reflected path is rendered.
    pub include_reflection: bool,
    /// Whether air absorption filtering is applied.
    pub include_air_absorption: bool,
    /// Interpolation method used by the propagation delay lines.
    pub interpolation: Interpolator,
    /// Number of taps of the air-absorption and asphalt FIR filters.
    pub filter_taps: usize,
    /// Optional street canyon adding first-order wall reflections.
    pub canyon: Option<StreetCanyon>,
    /// Occluding screens attenuating blocked propagation paths.
    pub occluders: Vec<Occluder>,
}

impl Scene {
    /// Speed of sound for the scene's atmosphere, m/s.
    pub fn speed_of_sound(&self) -> f64 {
        self.atmosphere.speed_of_sound()
    }

    /// Length of the rendered scene in samples: the latest end (onset delay plus
    /// signal length) over all sources.
    pub fn duration_samples(&self) -> usize {
        self.sources
            .iter()
            .map(|s| s.end_sample(self.sample_rate))
            .max()
            .unwrap_or(0)
    }
}

/// Builder for [`Scene`].
///
/// Call [`source`](SceneBuilder::source) once per emitter — a scene may mix a siren,
/// several traffic maskers and transient events, each on its own trajectory.
///
/// # Example
///
/// ```
/// use ispot_roadsim::prelude::*;
///
/// # fn main() -> Result<(), RoadSimError> {
/// let scene = SceneBuilder::new(16_000.0)
///     // A parked emitter...
///     .source(SoundSource::new(vec![0.1; 100], Trajectory::fixed(Position::new(10.0, 0.0, 1.0))))
///     // ...and a second vehicle driving past on the other lane.
///     .source(SoundSource::new(
///         vec![0.1; 100],
///         Trajectory::linear(Position::new(-20.0, -3.0, 0.8), Position::new(20.0, -3.0, 0.8), 15.0),
///     ))
///     .array(MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0)))
///     .reflection(true)
///     .air_absorption(true)
///     .build()?;
/// assert_eq!(scene.sources.len(), 2);
/// assert!(scene.speed_of_sound() > 330.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    sample_rate: f64,
    sources: Vec<SoundSource>,
    array: Option<MicrophoneArray>,
    atmosphere: Atmosphere,
    asphalt: AsphaltModel,
    spreading: SphericalSpreading,
    include_reflection: bool,
    include_air_absorption: bool,
    interpolation: Interpolator,
    filter_taps: usize,
    canyon: Option<StreetCanyon>,
    occluders: Vec<Occluder>,
}

impl SceneBuilder {
    /// Starts a scene at the given sampling rate (Hz).
    pub fn new(sample_rate: f64) -> Self {
        SceneBuilder {
            sample_rate,
            sources: Vec::new(),
            array: None,
            atmosphere: Atmosphere::default(),
            asphalt: AsphaltModel::default(),
            spreading: SphericalSpreading::default(),
            include_reflection: true,
            include_air_absorption: true,
            interpolation: Interpolator::Lagrange3,
            filter_taps: 65,
            canyon: None,
            occluders: Vec::new(),
        }
    }

    /// Adds one sound source; call repeatedly to build a multi-source scene.
    pub fn source(mut self, source: SoundSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Adds every source from an iterator (convenience for programmatic scenes).
    pub fn sources(mut self, sources: impl IntoIterator<Item = SoundSource>) -> Self {
        self.sources.extend(sources);
        self
    }

    /// Sets the microphone array.
    pub fn array(mut self, array: MicrophoneArray) -> Self {
        self.array = Some(array);
        self
    }

    /// Sets the atmospheric conditions (default: 20 °C, 50 % RH, 1 atm).
    pub fn atmosphere(mut self, atmosphere: Atmosphere) -> Self {
        self.atmosphere = atmosphere;
        self
    }

    /// Sets the asphalt model (default: dense asphalt).
    pub fn asphalt(mut self, asphalt: AsphaltModel) -> Self {
        self.asphalt = asphalt;
        self
    }

    /// Sets the spherical-spreading model.
    pub fn spreading(mut self, spreading: SphericalSpreading) -> Self {
        self.spreading = spreading;
        self
    }

    /// Enables or disables the road-reflected path (default: enabled).
    pub fn reflection(mut self, enabled: bool) -> Self {
        self.include_reflection = enabled;
        self
    }

    /// Enables or disables air-absorption filtering (default: enabled).
    pub fn air_absorption(mut self, enabled: bool) -> Self {
        self.include_air_absorption = enabled;
        self
    }

    /// Sets the delay-line interpolation method (default: third-order Lagrange).
    pub fn interpolation(mut self, interpolation: Interpolator) -> Self {
        self.interpolation = interpolation;
        self
    }

    /// Sets the number of FIR taps used for air-absorption and asphalt filters
    /// (default: 65; must be odd).
    pub fn filter_taps(mut self, taps: usize) -> Self {
        self.filter_taps = taps;
        self
    }

    /// Encloses the scene in a street canyon: each façade contributes a
    /// first-order image-source reflection per source–microphone pair
    /// (default: free field, no canyon).
    pub fn canyon(mut self, canyon: StreetCanyon) -> Self {
        self.canyon = Some(canyon);
        self
    }

    /// Adds an occluding screen; call repeatedly for multiple obstacles. The
    /// gains of overlapping occluders multiply per propagation path.
    pub fn occluder(mut self, occluder: Occluder) -> Self {
        self.occluders.push(occluder);
        self
    }

    /// Validates the configuration and produces a [`Scene`].
    ///
    /// # Errors
    ///
    /// Returns [`RoadSimError::InvalidScene`] if the source list or array is missing
    /// or the sampling rate is not positive; [`RoadSimError::InvalidSource`] (naming
    /// the source index) if any source has an empty signal, a non-finite or negative
    /// onset time, or a degenerate trajectory (see [`Trajectory::validate`]); and
    /// [`RoadSimError::InvalidScene`] if any microphone lies below the road surface.
    ///
    /// [`Trajectory::validate`]: crate::trajectory::Trajectory::validate
    pub fn build(self) -> Result<Scene, RoadSimError> {
        if self.sample_rate <= 0.0 {
            return Err(RoadSimError::invalid_scene(
                "sampling rate must be positive",
            ));
        }
        if self.sources.is_empty() {
            return Err(RoadSimError::invalid_scene("no sound source configured"));
        }
        for (i, source) in self.sources.iter().enumerate() {
            if source.is_empty() {
                return Err(RoadSimError::invalid_source(i, "signal is empty"));
            }
            if !source.start_s().is_finite() || source.start_s() < 0.0 {
                return Err(RoadSimError::invalid_source(
                    i,
                    format!(
                        "onset time must be finite and non-negative, got {}",
                        source.start_s()
                    ),
                ));
            }
            if let Err(e) = source.trajectory().validate() {
                return Err(RoadSimError::invalid_source(i, e.to_string()));
            }
        }
        let array = self
            .array
            .ok_or_else(|| RoadSimError::invalid_scene("no microphone array configured"))?;
        for (i, p) in array.positions().iter().enumerate() {
            if p.z < 0.0 {
                return Err(RoadSimError::invalid_scene(format!(
                    "microphone {i} lies below the road surface (z = {})",
                    p.z
                )));
            }
        }
        if self.filter_taps == 0 || self.filter_taps.is_multiple_of(2) {
            return Err(RoadSimError::invalid_scene(
                "filter_taps must be odd and non-zero",
            ));
        }
        if let Some(canyon) = &self.canyon {
            for (i, p) in array.positions().iter().enumerate() {
                if !canyon.contains_y(p.y) {
                    return Err(RoadSimError::invalid_scene(format!(
                        "microphone {i} lies outside the street canyon (y = {}, width = {})",
                        p.y,
                        canyon.width_m()
                    )));
                }
            }
        }
        for occluder in &self.occluders {
            occluder.validate()?;
        }
        Ok(Scene {
            sample_rate: self.sample_rate,
            sources: self.sources,
            array,
            atmosphere: self.atmosphere,
            asphalt: self.asphalt,
            spreading: self.spreading,
            include_reflection: self.include_reflection,
            include_air_absorption: self.include_air_absorption,
            interpolation: self.interpolation,
            filter_taps: self.filter_taps,
            canyon: self.canyon,
            occluders: self.occluders,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;
    use crate::trajectory::Trajectory;

    fn valid_builder() -> SceneBuilder {
        SceneBuilder::new(16_000.0)
            .source(SoundSource::new(
                vec![0.1; 64],
                Trajectory::fixed(Position::new(10.0, 0.0, 1.0)),
            ))
            .array(MicrophoneArray::linear(
                2,
                0.2,
                Position::new(0.0, 0.0, 1.0),
            ))
    }

    #[test]
    fn valid_scene_builds() {
        let scene = valid_builder().build().unwrap();
        assert_eq!(scene.array.len(), 2);
        assert!(scene.include_reflection);
        assert_eq!(scene.sources.len(), 1);
        assert_eq!(scene.duration_samples(), 64);
    }

    #[test]
    fn multiple_sources_accumulate_in_order() {
        let masker = SoundSource::new(
            vec![0.2; 32],
            Trajectory::linear(
                Position::new(-10.0, 2.0, 1.0),
                Position::new(10.0, 2.0, 1.0),
                5.0,
            ),
        );
        let late = SoundSource::new(
            vec![0.3; 16],
            Trajectory::fixed(Position::new(3.0, 0.0, 1.0)),
        )
        .with_start(0.01);
        let scene = valid_builder()
            .source(masker.clone())
            .sources([late.clone()])
            .build()
            .unwrap();
        assert_eq!(scene.sources.len(), 3);
        assert_eq!(scene.sources[1], masker);
        assert_eq!(scene.sources[2], late);
        // 0.01 s at 16 kHz = 160 samples of onset delay + 16 samples of signal.
        assert_eq!(scene.duration_samples(), 176);
    }

    #[test]
    fn missing_source_or_array_is_rejected() {
        assert!(matches!(
            SceneBuilder::new(16_000.0).build(),
            Err(RoadSimError::InvalidScene { .. })
        ));
        let no_array = SceneBuilder::new(16_000.0).source(SoundSource::new(
            vec![0.1; 4],
            Trajectory::fixed(Position::ORIGIN),
        ));
        assert!(no_array.build().is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(valid_builder().filter_taps(64).build().is_err());
        let below_road = valid_builder()
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 0.0, -0.5)]).unwrap());
        assert!(below_road.build().is_err());
        assert!(SceneBuilder::new(0.0).build().is_err());
    }

    #[test]
    fn degenerate_sources_are_rejected_with_their_index() {
        // Empty signal on the second source.
        let err = valid_builder()
            .source(SoundSource::new(
                vec![],
                Trajectory::fixed(Position::new(1.0, 0.0, 1.0)),
            ))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, RoadSimError::InvalidSource { index: 1, .. }),
            "{err}"
        );

        // Zero-duration trajectory: a linear pass that never moves.
        let err = valid_builder()
            .source(SoundSource::new(
                vec![0.1; 8],
                Trajectory::linear(Position::ORIGIN, Position::new(10.0, 0.0, 0.0), 0.0),
            ))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, RoadSimError::InvalidSource { index: 1, .. }),
            "{err}"
        );

        // Non-finite onset time.
        let err = valid_builder()
            .source(
                SoundSource::new(
                    vec![0.1; 8],
                    Trajectory::fixed(Position::new(1.0, 0.0, 1.0)),
                )
                .with_start(f64::NAN),
            )
            .build()
            .unwrap_err();
        assert!(
            matches!(err, RoadSimError::InvalidSource { index: 1, .. }),
            "{err}"
        );

        // An empty source list is an InvalidScene, not a panic or silent silence.
        let empty = SceneBuilder::new(16_000.0)
            .array(MicrophoneArray::linear(
                1,
                0.1,
                Position::new(0.0, 0.0, 1.0),
            ))
            .build();
        assert!(matches!(empty, Err(RoadSimError::InvalidScene { .. })));
    }

    #[test]
    fn canyon_and_occluders_are_validated() {
        use crate::environment::{Occluder, StreetCanyon};
        // Mics at y = ±0.1 fit a 10 m canyon...
        let ok = valid_builder()
            .canyon(StreetCanyon::new(10.0, 0.5).unwrap())
            .occluder(Occluder::screen(
                Position::new(4.0, 2.0, 0.0),
                Position::new(4.0, 20.0, 0.0),
                6.0,
            ))
            .build()
            .unwrap();
        assert!(ok.canyon.is_some());
        assert_eq!(ok.occluders.len(), 1);
        // ...but a mic parked outside the walls is rejected.
        let err = valid_builder()
            .array(MicrophoneArray::custom(vec![Position::new(0.0, 6.0, 1.0)]).unwrap())
            .canyon(StreetCanyon::new(10.0, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, RoadSimError::InvalidScene { .. }), "{err}");
        // A degenerate occluder is rejected at build time.
        let err = valid_builder()
            .occluder(Occluder::screen(Position::ORIGIN, Position::ORIGIN, 2.0))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, RoadSimError::InvalidParameter { .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_flags_are_applied() {
        let scene = valid_builder()
            .reflection(false)
            .air_absorption(false)
            .filter_taps(33)
            .build()
            .unwrap();
        assert!(!scene.include_reflection);
        assert!(!scene.include_air_absorption);
        assert_eq!(scene.filter_taps, 33);
    }
}
