//! # ispot-roadsim
//!
//! A road-acoustics simulator for automotive acoustic perception, reproducing (and
//! extending) the architecture of *pyroadacoustics* (Damiano & van Waterschoot, DAFx
//! 2022) described in Sec. IV-A and Figs. 2–3 of the I-SPOT paper.
//!
//! The simulator renders the sound emitted by **any number of omnidirectional
//! sources**, each moving along its own arbitrary trajectory, as received by an
//! arbitrary array of static omnidirectional microphones — a moving siren amid
//! traffic maskers, two crossing vehicles, a door slam between idling engines. Every
//! source–microphone pair is modelled by two propagation paths:
//!
//! * the **direct path**, implemented as a variable-length fractional delay line
//!   (producing the Doppler effect), a spherical-spreading gain and an air-absorption
//!   FIR filter;
//! * the **road-reflected path**, using the image source below the asphalt plane, an
//!   additional asphalt-reflection FIR filter, its own delay line, gain and air
//!   absorption.
//!
//! Sources render in parallel across threads (each with private delay lines, filters
//! and scratch) and are summed per microphone in source order, so the output is
//! deterministic and exactly linear in the sources: rendering two sources together
//! equals the sample-wise sum of rendering each alone.
//!
//! # Walkthrough: a siren pass-by with a traffic masker
//!
//! Build each emitter as a [`source::SoundSource`] (signal + trajectory + gain +
//! optional onset time), add them all to one [`scene::SceneBuilder`], then render:
//!
//! ```
//! use ispot_roadsim::prelude::*;
//!
//! # fn main() -> Result<(), ispot_roadsim::RoadSimError> {
//! let fs = 16_000.0;
//! // Source 1: a 440 Hz "siren" driving past the array at 20 m/s.
//! let siren: Vec<f64> = ispot_dsp::generator::Sine::new(440.0, fs).take(8000).collect();
//! let pass_by = Trajectory::linear(
//!     Position::new(-25.0, 5.0, 0.8),
//!     Position::new(25.0, 5.0, 0.8),
//!     20.0,
//! );
//! // Source 2: a quieter broadband masker idling on the opposite lane, starting
//! // a quarter second into the scene.
//! let masker: Vec<f64> =
//!     ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::Pink, 7)
//!         .take(8000)
//!         .collect();
//! let scene = SceneBuilder::new(fs)
//!     .source(SoundSource::new(siren, pass_by))
//!     .source(
//!         SoundSource::new(masker, Trajectory::fixed(Position::new(8.0, -4.0, 0.7)))
//!             .with_gain(0.3)
//!             .with_start(0.25),
//!     )
//!     .array(MicrophoneArray::linear(4, 0.1, Position::new(0.0, 0.0, 1.0)))
//!     .build()?;
//! let output = Simulator::new(scene)?.run()?;
//! assert_eq!(output.num_channels(), 4);
//! // The masker starts 0.25 s in, so the scene lasts 0.5 s + 0.25 s.
//! assert_eq!(output.len(), 8000 + 4000);
//! # Ok(())
//! # }
//! ```
//!
//! The rendered [`engine::MultichannelAudio`] feeds straight into the perception
//! pipeline (`ispot-core`'s `Session::process_recording_with`), and
//! `ispot-bench`'s `scenarios` module wraps this crate in a gallery of named,
//! scored road scenes.

#![forbid(unsafe_code)]

pub mod ambience;
pub mod asphalt;
pub mod atmosphere;
pub mod attenuation;
pub mod doppler;
pub mod engine;
pub mod environment;
pub mod error;
pub mod geometry;
pub mod microphone;
pub mod scene;
pub mod source;
pub mod trajectory;

pub use error::RoadSimError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::ambience::{AmbienceKind, AmbienceSynthesizer};
    pub use crate::asphalt::AsphaltModel;
    pub use crate::atmosphere::Atmosphere;
    pub use crate::engine::{MultichannelAudio, Simulator};
    pub use crate::environment::{Occluder, StreetCanyon};
    pub use crate::error::RoadSimError;
    pub use crate::geometry::Position;
    pub use crate::microphone::MicrophoneArray;
    pub use crate::scene::{Scene, SceneBuilder};
    pub use crate::source::SoundSource;
    pub use crate::trajectory::Trajectory;
}
