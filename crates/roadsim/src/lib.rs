//! # ispot-roadsim
//!
//! A road-acoustics simulator for automotive acoustic perception, reproducing the
//! architecture of *pyroadacoustics* (Damiano & van Waterschoot, DAFx 2022) described
//! in Sec. IV-A and Figs. 2–3 of the I-SPOT paper.
//!
//! The simulator renders the sound emitted by a single omnidirectional source moving
//! along an arbitrary trajectory, as received by an arbitrary array of static
//! omnidirectional microphones. Each source–microphone pair is modelled by two
//! propagation paths:
//!
//! * the **direct path**, implemented as a variable-length fractional delay line
//!   (producing the Doppler effect), a spherical-spreading gain and an air-absorption
//!   FIR filter;
//! * the **road-reflected path**, using the image source below the asphalt plane, an
//!   additional asphalt-reflection FIR filter, its own delay line, gain and air
//!   absorption.
//!
//! # Example
//!
//! ```
//! use ispot_roadsim::prelude::*;
//!
//! # fn main() -> Result<(), ispot_roadsim::RoadSimError> {
//! let fs = 16_000.0;
//! // A source driving past the array at 20 m/s while emitting a 440 Hz tone.
//! let signal: Vec<f64> = ispot_dsp::generator::Sine::new(440.0, fs).take(8000).collect();
//! let trajectory = Trajectory::linear(
//!     Position::new(-25.0, 5.0, 0.8),
//!     Position::new(25.0, 5.0, 0.8),
//!     20.0,
//! );
//! let source = SoundSource::new(signal, trajectory);
//! let array = MicrophoneArray::linear(4, 0.1, Position::new(0.0, 0.0, 1.0));
//! let scene = SceneBuilder::new(fs)
//!     .source(source)
//!     .array(array)
//!     .build()?;
//! let output = Simulator::new(scene)?.run()?;
//! assert_eq!(output.num_channels(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asphalt;
pub mod atmosphere;
pub mod attenuation;
pub mod doppler;
pub mod engine;
pub mod error;
pub mod geometry;
pub mod microphone;
pub mod scene;
pub mod source;
pub mod trajectory;

pub use error::RoadSimError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::asphalt::AsphaltModel;
    pub use crate::atmosphere::Atmosphere;
    pub use crate::engine::{MultichannelAudio, Simulator};
    pub use crate::error::RoadSimError;
    pub use crate::geometry::Position;
    pub use crate::microphone::MicrophoneArray;
    pub use crate::scene::{Scene, SceneBuilder};
    pub use crate::source::SoundSource;
    pub use crate::trajectory::Trajectory;
}
