//! Property test: the engine is exactly linear in its sources.
//!
//! A multi-source render is, by construction, the sum of independent single-source
//! renders (each source owns its delay lines, filters and scratch; the
//! contributions are summed in source order). This file pins that property over
//! randomized signals, trajectories, gains and render options: rendering a
//! 2-source scene must equal the sample-wise sum of the two single-source renders
//! **bit for bit**, regardless of how the parallel workers were scheduled.

use ispot_roadsim::ambience::{AmbienceKind, AmbienceSynthesizer};
use ispot_roadsim::engine::Simulator;
use ispot_roadsim::environment::{Occluder, StreetCanyon};
use ispot_roadsim::geometry::Position;
use ispot_roadsim::microphone::MicrophoneArray;
use ispot_roadsim::scene::SceneBuilder;
use ispot_roadsim::source::SoundSource;
use ispot_roadsim::trajectory::Trajectory;
use proptest::prelude::*;

fn signal(len: usize, seed: u64) -> Vec<f64> {
    ispot_dsp::generator::NoiseSource::new(ispot_dsp::generator::NoiseKind::Pink, seed)
        .take(len)
        .collect()
}

/// A small pool of qualitatively different trajectories, selected by index so the
/// strategy stays shrinkable.
fn trajectory(idx: usize, lane: f64) -> Trajectory {
    match idx % 3 {
        0 => Trajectory::fixed(Position::new(9.0, lane, 1.0)),
        1 => Trajectory::linear(
            Position::new(-15.0, lane, 1.0),
            Position::new(15.0, lane, 1.0),
            18.0,
        ),
        _ => Trajectory::Bezier {
            p0: Position::new(-12.0, lane, 1.0),
            p1: Position::new(-4.0, lane + 3.0, 1.2),
            p2: Position::new(4.0, lane - 2.0, 0.8),
            p3: Position::new(12.0, lane, 1.0),
            duration: 0.5,
        },
    }
}

proptest! {
    // Each case renders three scenes; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_source_render_equals_sum_of_single_source_renders(
        seed_a in 1u64..1000,
        seed_b in 1u64..1000,
        traj_a in 0usize..3,
        traj_b in 0usize..3,
        gain_b in 0.1f64..2.0,
        options in 0usize..16,
    ) {
        let (reflection, air) = (options & 1 != 0, options & 2 != 0);
        let (canyon, occluder) = (options & 4 != 0, options & 8 != 0);
        let fs = 8000.0;
        let len = 2400; // 0.3 s keeps the per-case render cheap
        let array = MicrophoneArray::linear(3, 0.15, Position::new(0.0, 0.0, 1.0));
        let src_a = SoundSource::new(signal(len, seed_a), trajectory(traj_a, 5.0));
        let src_b = SoundSource::new(signal(len, seed_b), trajectory(traj_b, -4.0))
            .with_gain(gain_b);

        let render = |sources: Vec<SoundSource>| {
            let mut builder = SceneBuilder::new(fs)
                .sources(sources)
                .array(array.clone())
                .reflection(reflection)
                .air_absorption(air)
                .filter_taps(33);
            if canyon {
                // Wide enough to contain every pooled trajectory (|y| <= 8).
                builder = builder.canyon(StreetCanyon::new(24.0, 0.6).expect("valid canyon"));
            }
            if occluder {
                // A screen crossing the source-mic rays of the +y lane.
                builder = builder.occluder(Occluder::screen(
                    Position::new(2.0, 1.5, 0.0),
                    Position::new(-6.0, 9.0, 0.0),
                    4.0,
                ));
            }
            let scene = builder.build().expect("valid scene");
            Simulator::new(scene)
                .expect("valid simulator")
                .run()
                .expect("render succeeds")
        };

        let both = render(vec![src_a.clone(), src_b.clone()]);
        let only_a = render(vec![src_a]);
        let only_b = render(vec![src_b]);

        prop_assert_eq!(both.num_channels(), 3);
        prop_assert_eq!(both.len(), len);
        for m in 0..both.num_channels() {
            for i in 0..both.len() {
                let expected = only_a.channel(m)[i] + only_b.channel(m)[i];
                // Bit-exact: summation order is fixed (source order) and each
                // source's render is independent of its neighbours.
                prop_assert!(
                    (both.channel(m)[i] - expected).abs() == 0.0,
                    "channel {} sample {}: {} vs {}",
                    m, i, both.channel(m)[i], expected
                );
            }
        }
    }

    #[test]
    fn event_plus_ambience_masker_render_is_linear(
        event_seed in 1u64..1000,
        masker_seed in 1u64..1000,
        masker_kind in 0usize..3,
        masker_gain in 0.05f64..0.8,
    ) {
        // The scenario matrix mixes event sources over ambience maskers; the
        // mix must stay a bit-exact superposition so per-scene SNR is exactly
        // the configured gain ratio.
        let fs = 8000.0;
        let len = 2400;
        let kind = [AmbienceKind::Wind, AmbienceKind::Rain, AmbienceKind::RoadNoise][masker_kind];
        let array = MicrophoneArray::linear(2, 0.2, Position::new(0.0, 0.0, 1.0));
        let event = SoundSource::new(signal(len, event_seed), trajectory(1, 4.0));
        let bed = AmbienceSynthesizer::new(kind, fs, masker_seed)
            .synthesize(len as f64 / fs)
            .expect("masker synthesizes");
        let masker = SoundSource::new(bed, Trajectory::fixed(Position::new(-6.0, -7.0, 0.5)))
            .with_gain(masker_gain);

        let render = |sources: Vec<SoundSource>| {
            let scene = SceneBuilder::new(fs)
                .sources(sources)
                .array(array.clone())
                .filter_taps(33)
                .build()
                .expect("valid scene");
            Simulator::new(scene)
                .expect("valid simulator")
                .run()
                .expect("render succeeds")
        };

        let both = render(vec![event.clone(), masker.clone()]);
        let only_event = render(vec![event]);
        let only_masker = render(vec![masker]);
        for m in 0..both.num_channels() {
            for i in 0..both.len() {
                let expected = only_event.channel(m)[i] + only_masker.channel(m)[i];
                prop_assert!(
                    (both.channel(m)[i] - expected).abs() == 0.0,
                    "channel {} sample {}: {} vs {}",
                    m, i, both.channel(m)[i], expected
                );
            }
        }
    }
}
