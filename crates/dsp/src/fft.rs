//! Fast Fourier transforms.
//!
//! The I-SPOT pipeline relies on FFTs for spectrogram extraction, GCC-PHAT computation
//! and fast convolution. [`Fft`] implements an iterative radix-2 Cooley–Tukey transform
//! for power-of-two sizes and falls back to the Bluestein (chirp-z) algorithm for
//! arbitrary sizes, so callers never need to care about the length.

use crate::complex::Complex;
use crate::error::DspError;
use std::f64::consts::PI;

/// A fast Fourier transform plan for a fixed size.
///
/// The plan precomputes twiddle factors; reuse it across calls for best performance.
///
/// # Example
///
/// ```
/// use ispot_dsp::{fft::Fft, Complex};
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let fft = Fft::new(8);
/// let x: Vec<Complex> = (0..8).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let spec = fft.forward(&x)?;
/// let back = fft.inverse(&spec)?;
/// for (a, b) in x.iter().zip(back.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    /// Twiddle factors for the radix-2 path (only populated for power-of-two sizes).
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation table (radix-2 path).
    bitrev: Vec<usize>,
    /// Inner power-of-two FFT used by the Bluestein path.
    bluestein: Option<Box<BluesteinPlan>>,
}

#[derive(Debug, Clone)]
struct BluesteinPlan {
    inner: Fft,
    /// Chirp sequence a_n = exp(-i*pi*n^2/N).
    chirp: Vec<Complex>,
    /// FFT of the zero-padded conjugate chirp.
    chirp_spectrum: Vec<Complex>,
}

impl Fft {
    /// Creates a transform plan for `size` points.
    ///
    /// Any `size >= 1` is supported. Power-of-two sizes use the radix-2 algorithm;
    /// other sizes use Bluestein's algorithm on top of a padded power-of-two plan.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "fft size must be at least 1");
        if size.is_power_of_two() {
            let mut twiddles = Vec::with_capacity(size / 2);
            for k in 0..size / 2 {
                twiddles.push(Complex::cis(-2.0 * PI * k as f64 / size as f64));
            }
            let bits = size.trailing_zeros();
            let bitrev = if bits == 0 {
                vec![0]
            } else {
                (0..size)
                    .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (size - 1))
                    .collect()
            };
            Fft {
                size,
                twiddles,
                bitrev,
                bluestein: None,
            }
        } else {
            let padded = (2 * size - 1).next_power_of_two();
            let inner = Fft::new(padded);
            let mut chirp = Vec::with_capacity(size);
            for n in 0..size {
                // Use modular arithmetic on n^2 to keep the angle numerically small.
                let sq = (n * n) % (2 * size);
                chirp.push(Complex::cis(-PI * sq as f64 / size as f64));
            }
            let mut b = vec![Complex::ZERO; padded];
            b[0] = chirp[0].conj();
            for n in 1..size {
                b[n] = chirp[n].conj();
                b[padded - n] = chirp[n].conj();
            }
            let chirp_spectrum = inner.forward(&b).expect("padded length matches plan");
            Fft {
                size,
                twiddles: Vec::new(),
                bitrev: Vec::new(),
                bluestein: Some(Box::new(BluesteinPlan {
                    inner,
                    chirp,
                    chirp_spectrum,
                })),
            }
        }
    }

    /// Returns the transform size this plan was created for.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns true if the plan size is zero (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Computes the forward DFT of `input`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Complex]) -> Result<Vec<Complex>, DspError> {
        self.check_len(input.len())?;
        let mut buf = input.to_vec();
        self.transform_in_place(&mut buf, false);
        Ok(buf)
    }

    /// Computes the inverse DFT of `input`, including the `1/N` normalization.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Complex]) -> Result<Vec<Complex>, DspError> {
        self.check_len(input.len())?;
        let mut buf = input.to_vec();
        self.transform_in_place(&mut buf, true);
        let scale = 1.0 / self.size as f64;
        for v in &mut buf {
            *v = v.scale(scale);
        }
        Ok(buf)
    }

    /// Computes the forward DFT of a real-valued signal.
    ///
    /// Returns the full `N`-point complex spectrum (callers interested only in the
    /// non-redundant half can take the first `N/2 + 1` bins).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn forward_real(&self, input: &[f64]) -> Result<Vec<Complex>, DspError> {
        self.check_len(input.len())?;
        let mut buf = vec![Complex::ZERO; self.size];
        self.forward_real_into(input, &mut buf)?;
        Ok(buf)
    }

    /// Computes the forward DFT of a real-valued signal into a caller-provided
    /// buffer, avoiding the output allocation of [`Fft::forward_real`].
    ///
    /// For power-of-two sizes this performs no heap allocation at all; the Bluestein
    /// fallback for other sizes still allocates internal convolution workspace.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input.len()` or `out.len()` differs
    /// from `self.len()`.
    pub fn forward_real_into(&self, input: &[f64], out: &mut [Complex]) -> Result<(), DspError> {
        self.check_len(input.len())?;
        self.check_len(out.len())?;
        for (slot, &x) in out.iter_mut().zip(input) {
            *slot = Complex::new(x, 0.0);
        }
        self.transform_in_place(out, false);
        Ok(())
    }

    /// Computes the forward DFTs of **two** real-valued signals with a single
    /// complex transform, writing the combined spectrum of `a + i·b` into `out`.
    ///
    /// This is the classic two-for-one trick for real inputs: pack the second
    /// signal into the imaginary lane, transform once, and recover the
    /// individual spectra from the (anti-)Hermitian parts of the result:
    ///
    /// ```text
    /// A(k) = (Z(k) + conj(Z(N-k))) / 2
    /// B(k) = (Z(k) - conj(Z(N-k))) / (2i)
    /// ```
    ///
    /// (with `Z(N) ≡ Z(0)`). [`Fft::split_pair_bin`] evaluates that separation
    /// for one bin. Callers that only need a band of bins — like the SRP-PHAT
    /// front-end — separate just those bins and skip the rest, which is why this
    /// method returns the combined spectrum instead of materializing both.
    ///
    /// For power-of-two sizes this performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `a.len()`, `b.len()` or
    /// `out.len()` differs from `self.len()`.
    pub fn forward_real_pair_into(
        &self,
        a: &[f64],
        b: &[f64],
        out: &mut [Complex],
    ) -> Result<(), DspError> {
        self.check_len(a.len())?;
        self.check_len(b.len())?;
        self.check_len(out.len())?;
        for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *slot = Complex::new(x, y);
        }
        self.transform_in_place(out, false);
        Ok(())
    }

    /// Separates bin `k` of a combined two-real-signal spectrum (as produced by
    /// [`Fft::forward_real_pair_into`]) into the two individual spectra,
    /// returning `(A(k), B(k))`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()` or `z.len() != self.len()`.
    #[inline]
    pub fn split_pair_bin(&self, z: &[Complex], k: usize) -> (Complex, Complex) {
        assert_eq!(z.len(), self.size, "spectrum length mismatch");
        let zk = z[k];
        let zn = z[(self.size - k) % self.size];
        (
            Complex::new(0.5 * (zk.re + zn.re), 0.5 * (zk.im - zn.im)),
            Complex::new(0.5 * (zk.im + zn.im), 0.5 * (zn.re - zk.re)),
        )
    }

    /// Computes the inverse DFT and returns only the real part.
    ///
    /// This is the natural companion of [`Fft::forward_real`] for signals known to be
    /// real valued (e.g. cross-correlation via the frequency domain).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn inverse_real(&self, input: &[Complex]) -> Result<Vec<f64>, DspError> {
        let mut spectrum = input.to_vec();
        let mut out = vec![0.0; self.size];
        self.inverse_real_into(&mut spectrum, &mut out)?;
        Ok(out)
    }

    /// Computes the inverse DFT of `spectrum` **in place** and writes the real part
    /// (with the `1/N` normalization) into `out`.
    ///
    /// `spectrum` is consumed as the transform workspace and holds the unnormalized
    /// inverse transform afterwards; callers that need it again must rebuild it. For
    /// power-of-two sizes this performs no heap allocation; the Bluestein fallback
    /// for other sizes still allocates internal convolution workspace.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `spectrum.len()` or `out.len()`
    /// differs from `self.len()`.
    pub fn inverse_real_into(
        &self,
        spectrum: &mut [Complex],
        out: &mut [f64],
    ) -> Result<(), DspError> {
        self.check_len(spectrum.len())?;
        self.check_len(out.len())?;
        self.transform_in_place(spectrum, true);
        let scale = 1.0 / self.size as f64;
        for (o, c) in out.iter_mut().zip(spectrum.iter()) {
            *o = c.re * scale;
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), DspError> {
        if len != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: len,
            });
        }
        Ok(())
    }

    fn transform_in_place(&self, buf: &mut [Complex], inverse: bool) {
        if let Some(plan) = &self.bluestein {
            self.bluestein_transform(plan, buf, inverse);
            return;
        }
        let n = self.size;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i];
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative radix-2 butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if inverse {
                        w = w.conj();
                    }
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * w;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            len <<= 1;
        }
    }

    fn bluestein_transform(&self, plan: &BluesteinPlan, buf: &mut [Complex], inverse: bool) {
        let n = self.size;
        let padded = plan.inner.len();
        // a_n = x_n * chirp_n (conjugate chirp for the inverse transform).
        let mut a = vec![Complex::ZERO; padded];
        for i in 0..n {
            let c = if inverse {
                plan.chirp[i].conj()
            } else {
                plan.chirp[i]
            };
            a[i] = buf[i] * c;
        }
        let mut fa = plan.inner.forward(&a).expect("length matches inner plan");
        if inverse {
            // The precomputed spectrum corresponds to conj(chirp); for the inverse
            // transform we need the spectrum of the chirp itself, which is the
            // conjugate-symmetric counterpart. Recompute cheaply via conjugation trick:
            // FFT(conj(b)) = conj(reverse(FFT(b))) — instead just convolve with
            // conj(chirp) by conjugating in time domain below.
            let mut b = vec![Complex::ZERO; padded];
            b[0] = plan.chirp[0];
            for i in 1..n {
                b[i] = plan.chirp[i];
                b[padded - i] = plan.chirp[i];
            }
            let fb = plan.inner.forward(&b).expect("length matches inner plan");
            for (a, b) in fa.iter_mut().zip(&fb) {
                *a *= *b;
            }
        } else {
            for (a, c) in fa.iter_mut().zip(&plan.chirp_spectrum) {
                *a *= *c;
            }
        }
        let conv = plan.inner.inverse(&fa).expect("length matches inner plan");
        for i in 0..n {
            let c = if inverse {
                plan.chirp[i].conj()
            } else {
                plan.chirp[i]
            };
            buf[i] = conv[i] * c;
        }
    }
}

/// Returns the frequency (in Hz) of FFT bin `k` for a transform of `n` points at
/// sampling rate `fs`, mapping bins above `n/2` to negative frequencies.
///
/// # Example
///
/// ```
/// use ispot_dsp::fft::bin_frequency;
/// assert_eq!(bin_frequency(0, 8, 8000.0), 0.0);
/// assert_eq!(bin_frequency(1, 8, 8000.0), 1000.0);
/// assert_eq!(bin_frequency(7, 8, 8000.0), -1000.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 {
        k as f64 * fs / n as f64
    } else {
        (k as f64 - n as f64) * fs / n as f64
    }
}

/// Naive O(N^2) DFT, used as a reference in tests and for very small transforms.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            acc += x * Complex::cis(-2.0 * PI * (k * t) as f64 / n as f64);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let fft = Fft::new(n);
        assert_close(&fft.forward(&x).unwrap(), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn matches_naive_dft_non_power_of_two() {
        for n in [3usize, 5, 6, 7, 12, 15, 31] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let fft = Fft::new(n);
            assert_close(&fft.forward(&x).unwrap(), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn roundtrip_preserves_signal() {
        for n in [8usize, 10, 64, 100] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            let fft = Fft::new(n);
            let back = fft.inverse(&fft.forward(&x).unwrap()).unwrap();
            assert_close(&back, &x, 1e-7);
        }
    }

    #[test]
    fn single_tone_has_single_peak() {
        let n = 256;
        let fs = 16_000.0;
        let f0 = 1000.0;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect();
        let spec = Fft::new(n).forward_real(&x).unwrap();
        let peak = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        assert_eq!(peak, (f0 / fs * n as f64).round() as usize);
    }

    #[test]
    fn paired_real_transform_separates_into_individual_spectra() {
        for n in [16usize, 64, 15] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() - 0.3).collect();
            let fft = Fft::new(n);
            let mut sa = vec![Complex::ZERO; n];
            let mut sb = vec![Complex::ZERO; n];
            fft.forward_real_into(&a, &mut sa).unwrap();
            fft.forward_real_into(&b, &mut sb).unwrap();
            let mut z = vec![Complex::ZERO; n];
            fft.forward_real_pair_into(&a, &b, &mut z).unwrap();
            for k in 0..n {
                let (ak, bk) = fft.split_pair_bin(&z, k);
                assert!(
                    (ak.re - sa[k].re).abs() < 1e-9 && (ak.im - sa[k].im).abs() < 1e-9,
                    "A({k}) mismatch for n={n}: {ak:?} vs {:?}",
                    sa[k]
                );
                assert!(
                    (bk.re - sb[k].re).abs() < 1e-9 && (bk.im - sb[k].im).abs() < 1e-9,
                    "B({k}) mismatch for n={n}: {bk:?} vs {:?}",
                    sb[k]
                );
            }
        }
    }

    #[test]
    fn paired_real_transform_rejects_wrong_lengths() {
        let fft = Fft::new(8);
        let a = [0.0; 8];
        let short = [0.0; 7];
        let mut out = vec![Complex::ZERO; 8];
        assert!(fft.forward_real_pair_into(&short, &a, &mut out).is_err());
        assert!(fft.forward_real_pair_into(&a, &short, &mut out).is_err());
        let mut short_out = vec![Complex::ZERO; 7];
        assert!(fft.forward_real_pair_into(&a, &a, &mut short_out).is_err());
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), 0.0))
            .collect();
        let spec = Fft::new(n).forward(&x).unwrap();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let fft = Fft::new(8);
        let err = fft.forward(&[Complex::ZERO; 4]).unwrap_err();
        assert_eq!(
            err,
            DspError::LengthMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn size_one_is_identity() {
        let fft = Fft::new(1);
        let x = [Complex::new(3.25, -1.5)];
        assert_eq!(fft.forward(&x).unwrap(), x.to_vec());
    }

    #[test]
    fn bin_frequency_maps_negative_half() {
        assert_eq!(bin_frequency(4, 8, 800.0), 400.0);
        assert_eq!(bin_frequency(5, 8, 800.0), -300.0);
    }

    #[test]
    fn forward_real_into_matches_allocating_variant() {
        for n in [16usize, 12] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let fft = Fft::new(n);
            let expected = fft.forward_real(&x).unwrap();
            let mut out = vec![Complex::ZERO; n];
            fft.forward_real_into(&x, &mut out).unwrap();
            assert_close(&out, &expected, 1e-12);
        }
    }

    #[test]
    fn inverse_real_into_round_trips_through_scratch() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let fft = Fft::new(n);
        let mut spectrum = vec![Complex::ZERO; n];
        let mut back = vec![0.0; n];
        fft.forward_real_into(&x, &mut spectrum).unwrap();
        fft.inverse_real_into(&mut spectrum, &mut back).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn into_variants_reject_wrong_lengths() {
        let fft = Fft::new(8);
        let x = [0.0; 8];
        let mut short = vec![Complex::ZERO; 4];
        assert!(fft.forward_real_into(&x, &mut short).is_err());
        assert!(fft
            .forward_real_into(&x[..4], &mut [Complex::ZERO; 8])
            .is_err());
        let mut spec = vec![Complex::ZERO; 8];
        assert!(fft.inverse_real_into(&mut spec, &mut [0.0; 4]).is_err());
        assert!(fft.inverse_real_into(&mut short, &mut [0.0; 8]).is_err());
    }
}
