//! # ispot-dsp
//!
//! Digital signal processing substrate for the I-SPOT acoustic-perception stack.
//!
//! This crate provides every low-level building block used by the road-acoustics
//! simulator (`ispot-roadsim`), the feature extractors (`ispot-features`) and the
//! localization front-ends (`ispot-ssl`):
//!
//! * complex arithmetic ([`Complex`]) and fast Fourier transforms ([`fft`])
//! * short-time Fourier transform ([`stft`]) and analysis [`window`]s
//! * FIR ([`fir`]), biquad ([`biquad`]) and general IIR ([`iir`]) filters
//! * fractional, variable-length [`delay`] lines (the core of the Doppler model)
//! * [`interp`]olation, [`resample`]rs, [`convolution`]
//! * signal [`generator`]s (tones, sweeps, noise) and [`level`] / SNR utilities
//! * a simple [`ring`] buffer and a chunk-to-frame [`framing`] assembler for
//!   streaming use
//!
//! # Example
//!
//! ```
//! use ispot_dsp::{fft::Fft, window::Window, generator::Sine};
//!
//! # fn main() -> Result<(), ispot_dsp::DspError> {
//! // Generate a 440 Hz tone, window it and look at its spectrum.
//! let fs = 16_000.0;
//! let tone: Vec<f64> = Sine::new(440.0, fs).take(1024).collect();
//! let win = Window::hann(1024);
//! let frame = win.apply(&tone);
//! let spectrum = Fft::new(1024).forward_real(&frame)?;
//! let peak_bin = spectrum
//!     .iter()
//!     .take(512) // non-redundant half of the real-signal spectrum
//!     .enumerate()
//!     .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak_bin, (440.0 / fs * 1024.0).round() as usize);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod biquad;
pub mod complex;
pub mod convolution;
pub mod delay;
pub mod error;
pub mod fft;
pub mod fir;
pub mod framing;
pub mod generator;
pub mod iir;
pub mod interp;
pub mod level;
pub mod resample;
pub mod ring;
pub mod sample;
pub mod simd;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use error::DspError;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::biquad::{Biquad, BiquadCascade, BiquadDesign};
    pub use crate::complex::Complex;
    pub use crate::convolution::{convolve, fft_convolve, ConvMode};
    pub use crate::delay::{DelayLine, InterpolationKind};
    pub use crate::error::DspError;
    pub use crate::fft::Fft;
    pub use crate::fir::{FirDesign, FirFilter};
    pub use crate::framing::FrameAssembler;
    pub use crate::generator::{Chirp, NoiseKind, NoiseSource, Sine, Sweep};
    pub use crate::iir::IirFilter;
    pub use crate::interp::Interpolator;
    pub use crate::level::{db_to_linear, linear_to_db, mix_at_snr, rms, signal_power};
    pub use crate::resample::LinearResampler;
    pub use crate::ring::RingBuffer;
    pub use crate::sample::Sample;
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    pub use crate::simd::paired_dot_fma;
    pub use crate::simd::{fma_available, paired_dot, F32x8};
    pub use crate::stft::{Stft, StftBuilder, StftScratch};
    pub use crate::window::{Window, WindowKind};
}
