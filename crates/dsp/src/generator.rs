//! Signal generators: tones, sweeps, chirps and noise.
//!
//! These are the primitives from which the siren, horn and urban-noise synthesisers in
//! `ispot-sed` are assembled, and they drive the validation experiments for the road
//! simulator.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// An infinite sine-wave generator.
///
/// # Example
///
/// ```
/// use ispot_dsp::generator::Sine;
///
/// let samples: Vec<f64> = Sine::new(1000.0, 8000.0).take(8).collect();
/// assert!((samples[2] - 1.0).abs() < 1e-12); // quarter period of 1 kHz at 8 kHz
/// ```
#[derive(Debug, Clone)]
pub struct Sine {
    phase: f64,
    step: f64,
    amplitude: f64,
}

impl Sine {
    /// Creates a sine generator at `freq_hz` for sampling rate `fs`, unit amplitude.
    pub fn new(freq_hz: f64, fs: f64) -> Self {
        Sine {
            phase: 0.0,
            step: 2.0 * PI * freq_hz / fs,
            amplitude: 1.0,
        }
    }

    /// Sets the amplitude.
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Sets the initial phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

impl Iterator for Sine {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let v = self.amplitude * self.phase.sin();
        self.phase += self.step;
        if self.phase > 2.0 * PI {
            self.phase -= 2.0 * PI;
        }
        Some(v)
    }
}

/// A linear frequency sweep between two frequencies over a fixed duration, repeating.
///
/// Used for the "wail" siren pattern.
#[derive(Debug, Clone)]
pub struct Sweep {
    f_start: f64,
    f_end: f64,
    period_samples: usize,
    fs: f64,
    index: usize,
    phase: f64,
}

impl Sweep {
    /// Creates a repeating sweep from `f_start` to `f_end` Hz with period `period_s`
    /// seconds at sampling rate `fs`.
    pub fn new(f_start: f64, f_end: f64, period_s: f64, fs: f64) -> Self {
        Sweep {
            f_start,
            f_end,
            period_samples: (period_s * fs).max(1.0) as usize,
            fs,
            index: 0,
            phase: 0.0,
        }
    }

    /// Returns the instantaneous frequency at the current position (triangular up-down
    /// profile so that the sweep is continuous when it repeats).
    pub fn instantaneous_frequency(&self) -> f64 {
        let pos = (self.index % self.period_samples) as f64 / self.period_samples as f64;
        let tri = if pos < 0.5 {
            2.0 * pos
        } else {
            2.0 * (1.0 - pos)
        };
        self.f_start + (self.f_end - self.f_start) * tri
    }
}

impl Iterator for Sweep {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let f = self.instantaneous_frequency();
        let v = self.phase.sin();
        self.phase += 2.0 * PI * f / self.fs;
        if self.phase > 2.0 * PI {
            self.phase -= 2.0 * PI;
        }
        self.index += 1;
        Some(v)
    }
}

/// A single linear chirp (non-repeating), from `f0` to `f1` over `duration_s`.
#[derive(Debug, Clone)]
pub struct Chirp {
    f0: f64,
    f1: f64,
    total: usize,
    fs: f64,
    index: usize,
    phase: f64,
}

impl Chirp {
    /// Creates a chirp from `f0` to `f1` Hz lasting `duration_s` seconds at rate `fs`.
    pub fn new(f0: f64, f1: f64, duration_s: f64, fs: f64) -> Self {
        Chirp {
            f0,
            f1,
            total: (duration_s * fs).max(1.0) as usize,
            fs,
            index: 0,
            phase: 0.0,
        }
    }
}

impl Iterator for Chirp {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.index >= self.total {
            return None;
        }
        let t = self.index as f64 / self.total as f64;
        let f = self.f0 + (self.f1 - self.f0) * t;
        let v = self.phase.sin();
        self.phase += 2.0 * PI * f / self.fs;
        self.index += 1;
        Some(v)
    }
}

/// The spectral shape of generated noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NoiseKind {
    /// Flat spectrum.
    #[default]
    White,
    /// 1/f spectrum (Voss–McCartney style approximation).
    Pink,
    /// 1/f^2 spectrum (integrated white noise, leaky).
    Brown,
}

/// A deterministic pseudo-random noise source (xorshift64*, seeded).
///
/// The generator is deliberately self-contained so that dataset generation is exactly
/// reproducible across platforms.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    state: u64,
    kind: NoiseKind,
    // Pink-noise row state (Voss-McCartney).
    rows: [f64; 8],
    counter: u64,
    // Brown-noise integrator.
    brown: f64,
}

impl NoiseSource {
    /// Creates a noise source with the given `kind` and `seed`.
    pub fn new(kind: NoiseKind, seed: u64) -> Self {
        // Scramble the seed (splitmix64 step) so that small seeds still start the
        // xorshift sequence in a well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        NoiseSource {
            state: z.max(1),
            kind,
            rows: [0.0; 8],
            counter: 0,
            brown: 0.0,
        }
    }

    /// Returns the spectral kind of this source.
    pub fn kind(&self) -> NoiseKind {
        self.kind
    }

    fn next_uniform(&mut self) -> f64 {
        // xorshift64* — fast, good enough for audio noise.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map the top 53 bits to [-1, 1).
        (r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

impl Iterator for NoiseSource {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let v = match self.kind {
            NoiseKind::White => self.next_uniform(),
            NoiseKind::Pink => {
                // Voss–McCartney: update the row whose index is the number of trailing
                // zeros of the counter.
                let row = (self.counter.trailing_zeros() as usize).min(7);
                self.counter = self.counter.wrapping_add(1);
                self.rows[row] = self.next_uniform();
                self.rows.iter().sum::<f64>() / 8.0
            }
            NoiseKind::Brown => {
                let white = self.next_uniform();
                self.brown = 0.995 * self.brown + 0.1 * white;
                self.brown.clamp(-1.0, 1.0)
            }
        };
        Some(v)
    }
}

/// Generates `len` samples of silence.
pub fn silence(len: usize) -> Vec<f64> {
    vec![0.0; len]
}

/// Generates a unit impulse of length `len` (1 at index 0, 0 elsewhere).
pub fn impulse(len: usize) -> Vec<f64> {
    let mut v = vec![0.0; len];
    if len > 0 {
        v[0] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn sine_frequency_matches_request() {
        let fs = 8000.0;
        let f0 = 500.0;
        let x: Vec<f64> = Sine::new(f0, fs).take(1024).collect();
        let spec = Fft::new(1024).forward_real(&x).unwrap();
        let peak = spec
            .iter()
            .take(512)
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        assert_eq!(peak, (f0 / fs * 1024.0).round() as usize);
    }

    #[test]
    fn sine_amplitude_is_respected() {
        let x: Vec<f64> = Sine::new(100.0, 8000.0)
            .with_amplitude(0.25)
            .take(1000)
            .collect();
        let max = x.iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= 0.25 + 1e-12);
        assert!(max > 0.24);
    }

    #[test]
    fn chirp_terminates_and_sweep_does_not() {
        let fs = 1000.0;
        let chirp: Vec<f64> = Chirp::new(10.0, 100.0, 0.5, fs).collect();
        assert_eq!(chirp.len(), 500);
        let sweep: Vec<f64> = Sweep::new(10.0, 100.0, 0.5, fs).take(2000).collect();
        assert_eq!(sweep.len(), 2000);
    }

    #[test]
    fn sweep_instantaneous_frequency_is_within_bounds() {
        let mut s = Sweep::new(600.0, 1400.0, 1.0, 8000.0);
        for _ in 0..16_000 {
            let f = s.instantaneous_frequency();
            assert!((600.0..=1400.0).contains(&f));
            s.next();
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let a: Vec<f64> = NoiseSource::new(NoiseKind::White, 42).take(64).collect();
        let b: Vec<f64> = NoiseSource::new(NoiseKind::White, 42).take(64).collect();
        let c: Vec<f64> = NoiseSource::new(NoiseKind::White, 43).take(64).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn white_noise_is_roughly_zero_mean_and_bounded() {
        let x: Vec<f64> = NoiseSource::new(NoiseKind::White, 7)
            .take(100_000)
            .collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.02);
        assert!(x.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn pink_noise_has_more_low_frequency_energy_than_white() {
        let n = 16_384;
        let fft = Fft::new(n);
        let energy_ratio = |kind: NoiseKind| -> f64 {
            let x: Vec<f64> = NoiseSource::new(kind, 11).take(n).collect();
            let spec = fft.forward_real(&x).unwrap();
            let low: f64 = spec[1..n / 32].iter().map(|c| c.norm_sqr()).sum();
            let high: f64 = spec[n / 4..n / 2].iter().map(|c| c.norm_sqr()).sum();
            low / high
        };
        assert!(energy_ratio(NoiseKind::Pink) > 4.0 * energy_ratio(NoiseKind::White));
    }

    #[test]
    fn impulse_and_silence_shapes() {
        assert_eq!(impulse(4), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(silence(3), vec![0.0; 3]);
        assert!(impulse(0).is_empty());
    }
}
