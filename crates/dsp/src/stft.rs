//! Short-time Fourier transform (STFT) analysis.
//!
//! The STFT is the front door of every feature extractor in `ispot-features`
//! (spectrograms, MFCCs, gammatonegrams) and of the GCC-PHAT localization front-end.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::Fft;
use crate::window::{Window, WindowKind};

/// Builder for [`Stft`] analysis configurations.
///
/// # Example
///
/// ```
/// use ispot_dsp::stft::StftBuilder;
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let stft = StftBuilder::new(512).hop(256).build()?;
/// let signal = vec![0.0; 2048];
/// let frames = stft.process(&signal);
/// assert_eq!(frames.num_frames(), 7);
/// assert_eq!(frames.num_bins(), 257);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StftBuilder {
    frame_len: usize,
    hop: usize,
    fft_size: usize,
    window: WindowKind,
}

impl StftBuilder {
    /// Starts a builder for frames of `frame_len` samples (hop defaults to half the
    /// frame, FFT size to the frame length, window to Hann).
    pub fn new(frame_len: usize) -> Self {
        StftBuilder {
            frame_len,
            hop: frame_len / 2,
            fft_size: frame_len,
            window: WindowKind::Hann,
        }
    }

    /// Sets the hop size in samples.
    pub fn hop(mut self, hop: usize) -> Self {
        self.hop = hop;
        self
    }

    /// Sets the FFT size (zero-padded if larger than the frame).
    pub fn fft_size(mut self, fft_size: usize) -> Self {
        self.fft_size = fft_size;
        self
    }

    /// Sets the analysis window kind.
    pub fn window(mut self, window: WindowKind) -> Self {
        self.window = window;
        self
    }

    /// Builds the [`Stft`] analyser.
    ///
    /// # Errors
    ///
    /// Returns an error if the frame length or hop is zero, or the FFT size is smaller
    /// than the frame length.
    pub fn build(self) -> Result<Stft, DspError> {
        if self.frame_len == 0 {
            return Err(DspError::InvalidSize {
                name: "frame_len",
                value: 0,
                constraint: "must be positive",
            });
        }
        if self.hop == 0 {
            return Err(DspError::InvalidSize {
                name: "hop",
                value: 0,
                constraint: "must be positive",
            });
        }
        if self.fft_size < self.frame_len {
            return Err(DspError::InvalidSize {
                name: "fft_size",
                value: self.fft_size,
                constraint: "must be at least the frame length",
            });
        }
        Ok(Stft {
            frame_len: self.frame_len,
            hop: self.hop,
            fft: Fft::new(self.fft_size),
            window: Window::new(self.window, self.frame_len),
        })
    }
}

/// An STFT analyser with a fixed frame length, hop and window.
#[derive(Debug, Clone)]
pub struct Stft {
    frame_len: usize,
    hop: usize,
    fft: Fft,
    window: Window,
}

impl Stft {
    /// Returns the analysis frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Returns the hop size in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Returns the FFT size.
    pub fn fft_size(&self) -> usize {
        self.fft.len()
    }

    /// Returns the number of non-redundant frequency bins (`fft_size/2 + 1`).
    pub fn num_bins(&self) -> usize {
        self.fft.len() / 2 + 1
    }

    /// Returns the number of frames produced for a signal of `len` samples.
    pub fn frames_for(&self, len: usize) -> usize {
        if len < self.frame_len {
            0
        } else {
            (len - self.frame_len) / self.hop + 1
        }
    }

    /// Computes the complex STFT of `signal`.
    ///
    /// Frames that would run past the end of the signal are dropped (no padding), so a
    /// signal shorter than one frame produces zero frames.
    pub fn process(&self, signal: &[f64]) -> Spectrogram {
        let n_frames = self.frames_for(signal.len());
        let n_bins = self.num_bins();
        let mut data = Vec::with_capacity(n_frames * n_bins);
        let mut scratch = self.make_scratch();
        for f in 0..n_frames {
            let start = f * self.hop;
            let frame = &signal[start..start + self.frame_len];
            let spec = self
                .frame_spectrum_into(frame, &mut scratch)
                .expect("frame length bounded by frames_for");
            data.extend_from_slice(spec);
        }
        Spectrogram {
            data,
            num_frames: n_frames,
            num_bins: n_bins,
            hop: self.hop,
            fft_size: self.fft.len(),
        }
    }

    /// Creates a scratch pre-sized for this analyser, so even the first
    /// [`Stft::frame_spectrum_into`] call allocates nothing.
    pub fn make_scratch(&self) -> StftScratch {
        StftScratch {
            padded: vec![0.0; self.fft.len()],
            spec: vec![Complex::ZERO; self.fft.len()],
        }
    }

    /// Computes the windowed spectrum of **one** exactly-`frame_len` frame,
    /// returning the `num_bins` non-redundant bins borrowed from `scratch`.
    ///
    /// This is the streaming sibling of [`Stft::process`]: identical numerics
    /// (window, zero-padding, FFT), but the workspace lives in a caller-owned
    /// [`StftScratch`], so repeated calls perform no heap allocation in steady
    /// state (for power-of-two FFT sizes).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `frame.len() != self.frame_len()`.
    pub fn frame_spectrum_into<'s>(
        &self,
        frame: &[f64],
        scratch: &'s mut StftScratch,
    ) -> Result<&'s [Complex], DspError> {
        if frame.len() != self.frame_len {
            return Err(DspError::LengthMismatch {
                expected: self.frame_len,
                actual: frame.len(),
            });
        }
        scratch.padded.resize(self.fft.len(), 0.0);
        scratch.spec.resize(self.fft.len(), Complex::ZERO);
        for ((slot, &x), &w) in scratch
            .padded
            .iter_mut()
            .zip(frame)
            .zip(self.window.coefficients())
        {
            *slot = x * w;
        }
        for p in scratch.padded[self.frame_len..].iter_mut() {
            *p = 0.0;
        }
        self.fft
            .forward_real_into(&scratch.padded, &mut scratch.spec)?;
        Ok(&scratch.spec[..self.num_bins()])
    }
}

/// Reusable workspace for [`Stft::frame_spectrum_into`].
///
/// Buffers are sized lazily on first use (or pre-sized by [`Stft::make_scratch`])
/// and reused afterwards; one scratch serves one analyser at a time.
#[derive(Debug, Clone, Default)]
pub struct StftScratch {
    /// Windowed, zero-padded frame (`fft_size` samples).
    padded: Vec<f64>,
    /// Full complex spectrum workspace (`fft_size` bins).
    spec: Vec<Complex>,
}

impl StftScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        StftScratch::default()
    }
}

/// A complex time–frequency representation produced by [`Stft::process`].
#[derive(Debug, Clone)]
pub struct Spectrogram {
    data: Vec<Complex>,
    num_frames: usize,
    num_bins: usize,
    hop: usize,
    fft_size: usize,
}

impl Spectrogram {
    /// Returns the number of analysis frames.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Returns the number of frequency bins per frame.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Returns the hop size used by the analysis.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Returns the FFT size used by the analysis.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Returns the complex spectrum of frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= self.num_frames()`.
    pub fn frame(&self, frame: usize) -> &[Complex] {
        assert!(frame < self.num_frames, "frame index out of range");
        &self.data[frame * self.num_bins..(frame + 1) * self.num_bins]
    }

    /// Iterates over frames in time order.
    pub fn iter_frames(&self) -> impl Iterator<Item = &[Complex]> {
        (0..self.num_frames).map(move |f| self.frame(f))
    }

    /// Returns the power spectrogram (`|X|^2`) as a row-major `frames x bins` matrix.
    pub fn power(&self) -> Vec<Vec<f64>> {
        self.iter_frames()
            .map(|fr| fr.iter().map(|c| c.norm_sqr()).collect())
            .collect()
    }

    /// Returns the magnitude spectrogram as a row-major `frames x bins` matrix.
    pub fn magnitude(&self) -> Vec<Vec<f64>> {
        self.iter_frames()
            .map(|fr| fr.iter().map(|c| c.norm()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Sine;
    use std::f64::consts::PI;

    #[test]
    fn frame_spectrum_into_matches_process() {
        let fs = 16_000.0;
        let x: Vec<f64> = Sine::new(740.0, fs).take(2048).collect();
        let stft = StftBuilder::new(512)
            .hop(256)
            .fft_size(1024)
            .build()
            .unwrap();
        let spec = stft.process(&x);
        let mut scratch = StftScratch::new();
        for f in 0..spec.num_frames() {
            let frame = &x[f * 256..f * 256 + 512];
            let bins = stft.frame_spectrum_into(frame, &mut scratch).unwrap();
            assert_eq!(bins, spec.frame(f), "frame {f}");
        }
        assert!(stft.frame_spectrum_into(&x[..100], &mut scratch).is_err());
    }

    #[test]
    fn frame_count_matches_formula() {
        let stft = StftBuilder::new(256).hop(128).build().unwrap();
        assert_eq!(stft.frames_for(256), 1);
        assert_eq!(stft.frames_for(255), 0);
        assert_eq!(stft.frames_for(512), 3);
        let spec = stft.process(&vec![0.0; 512]);
        assert_eq!(spec.num_frames(), 3);
    }

    #[test]
    fn stationary_tone_peaks_at_same_bin_in_every_frame() {
        let fs = 16_000.0;
        let f0 = 1250.0;
        let x: Vec<f64> = Sine::new(f0, fs).take(4096).collect();
        let stft = StftBuilder::new(512).hop(256).build().unwrap();
        let spec = stft.process(&x);
        let expected_bin = (f0 / fs * 512.0).round() as usize;
        for frame in spec.iter_frames() {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
                .unwrap()
                .0;
            assert_eq!(peak, expected_bin);
        }
    }

    #[test]
    fn chirp_peak_bin_moves_up_over_time() {
        let fs = 16_000.0;
        let n = 16_000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                // 200 Hz -> 4000 Hz over 1 s.
                let f = 200.0 + 3800.0 * t;
                (2.0 * PI * (200.0 * t + 0.5 * 3800.0 * t * t)).sin() * (f / f).max(1.0)
            })
            .collect();
        let stft = StftBuilder::new(1024).hop(512).build().unwrap();
        let spec = stft.process(&x);
        let peak_of = |f: usize| {
            spec.frame(f)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
                .unwrap()
                .0
        };
        assert!(peak_of(spec.num_frames() - 2) > peak_of(1) + 20);
    }

    #[test]
    fn zero_padding_increases_bin_count() {
        let stft = StftBuilder::new(256).fft_size(1024).build().unwrap();
        assert_eq!(stft.num_bins(), 513);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(StftBuilder::new(0).build().is_err());
        assert!(StftBuilder::new(256).hop(0).build().is_err());
        assert!(StftBuilder::new(256).fft_size(128).build().is_err());
    }

    #[test]
    fn power_matches_magnitude_squared() {
        let x: Vec<f64> = Sine::new(440.0, 8000.0).take(1024).collect();
        let spec = StftBuilder::new(256).build().unwrap().process(&x);
        let p = spec.power();
        let m = spec.magnitude();
        for (pr, mr) in p.iter().zip(&m) {
            for (a, b) in pr.iter().zip(mr) {
                assert!((a - b * b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn short_signal_produces_no_frames() {
        let stft = StftBuilder::new(512).build().unwrap();
        let spec = stft.process(&[0.0; 100]);
        assert_eq!(spec.num_frames(), 0);
    }
}
