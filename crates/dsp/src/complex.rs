//! A minimal complex-number type used throughout the DSP crate.
//!
//! The crate deliberately avoids external numeric dependencies, so it ships its own
//! [`Complex`] type with exactly the operations the FFT, PHAT weighting and filter
//! design code need.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i*im`.
///
/// # Example
///
/// ```
/// use ispot_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// let c = a * b;
/// assert!((c.re - -2.0).abs() < 1e-12);
/// assert!((c.im - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its rectangular form.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r * exp(i*theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Creates `exp(i*theta)`, a unit-magnitude phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the magnitude (absolute value).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared magnitude, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse. The inverse of zero is a NaN-filled value.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales the complex number by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `exp(self)`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Returns true if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        let prod = a * a.inv();
        assert!((prod.re - 1.0).abs() < EPS);
        assert!(prod.im.abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.norm() - 2.5).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Complex::I * Complex::I;
        assert!((m.re + 1.0).abs() < EPS);
        assert!(m.im.abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_norm_sqr() {
        let z = Complex::new(1.5, -4.0);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn division_inverse_of_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        let c = a * b / b;
        assert!((c.re - a.re).abs() < EPS);
        assert!((c.im - a.im).abs() < EPS);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let e = (Complex::I * std::f64::consts::PI).exp();
        assert!((e.re + 1.0).abs() < 1e-12);
        assert!(e.im.abs() < 1e-12);
    }
}
