//! Analysis windows for framing and spectral estimation.

use crate::error::DspError;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// The supported window families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowKind {
    /// Rectangular (no weighting).
    Rectangular,
    /// Hann (raised cosine), the default for STFT analysis.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
    /// Flat-top window, useful for amplitude-accurate tone measurement.
    FlatTop,
    /// Triangular (Bartlett) window.
    Triangular,
}

impl WindowKind {
    /// Evaluates the window function at sample `n` out of `len` (periodic form).
    fn sample(self, n: usize, len: usize) -> f64 {
        if len == 1 {
            return 1.0;
        }
        let x = n as f64 / len as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            WindowKind::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            WindowKind::FlatTop => {
                0.21557895 - 0.41663158 * (2.0 * PI * x).cos() + 0.277263158 * (4.0 * PI * x).cos()
                    - 0.083578947 * (6.0 * PI * x).cos()
                    + 0.006947368 * (8.0 * PI * x).cos()
            }
            WindowKind::Triangular => {
                let half = len as f64 / 2.0;
                1.0 - ((n as f64 - half) / half).abs()
            }
        }
    }
}

/// A precomputed analysis window of a fixed length.
///
/// # Example
///
/// ```
/// use ispot_dsp::window::{Window, WindowKind};
///
/// let w = Window::new(WindowKind::Hann, 512);
/// assert_eq!(w.len(), 512);
/// // A Hann window is zero at the first sample and peaks in the middle.
/// assert!(w.coefficients()[0].abs() < 1e-12);
/// assert!((w.coefficients()[256] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    kind: WindowKind,
    coefficients: Vec<f64>,
}

impl Window {
    /// Creates a window of the given kind and length (periodic form).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(kind: WindowKind, len: usize) -> Self {
        assert!(len > 0, "window length must be positive");
        let coefficients = (0..len).map(|n| kind.sample(n, len)).collect();
        Window { kind, coefficients }
    }

    /// Convenience constructor for a Hann window.
    pub fn hann(len: usize) -> Self {
        Self::new(WindowKind::Hann, len)
    }

    /// Convenience constructor for a Hamming window.
    pub fn hamming(len: usize) -> Self {
        Self::new(WindowKind::Hamming, len)
    }

    /// Convenience constructor for a rectangular window.
    pub fn rectangular(len: usize) -> Self {
        Self::new(WindowKind::Rectangular, len)
    }

    /// Convenience constructor for a Blackman window.
    pub fn blackman(len: usize) -> Self {
        Self::new(WindowKind::Blackman, len)
    }

    /// Returns the window length.
    pub fn len(&self) -> usize {
        self.coefficients.len()
    }

    /// Returns true if the window has zero length (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// Returns the window family.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// Returns the precomputed coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Multiplies `frame` by the window, returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != self.len()`.
    pub fn apply(&self, frame: &[f64]) -> Vec<f64> {
        assert_eq!(frame.len(), self.len(), "frame length must match window");
        frame
            .iter()
            .zip(&self.coefficients)
            .map(|(x, w)| x * w)
            .collect()
    }

    /// Multiplies `frame` by the window in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if the lengths differ.
    pub fn apply_in_place(&self, frame: &mut [f64]) -> Result<(), DspError> {
        if frame.len() != self.len() {
            return Err(DspError::LengthMismatch {
                expected: self.len(),
                actual: frame.len(),
            });
        }
        for (x, w) in frame.iter_mut().zip(&self.coefficients) {
            *x *= w;
        }
        Ok(())
    }

    /// Returns the sum of coefficients (the "coherent gain" numerator), used to
    /// normalize amplitude spectra.
    pub fn coherent_gain(&self) -> f64 {
        self.coefficients.iter().sum::<f64>() / self.len() as f64
    }

    /// Returns the sum of squared coefficients, used to normalize power spectra.
    pub fn power_gain(&self) -> f64 {
        self.coefficients.iter().map(|w| w * w).sum::<f64>() / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_and_peak() {
        let w = Window::hann(8);
        assert!(w.coefficients()[0].abs() < 1e-12);
        assert!((w.coefficients()[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::rectangular(16);
        assert!(w.coefficients().iter().all(|&c| (c - 1.0).abs() < 1e-15));
        assert!((w.coherent_gain() - 1.0).abs() < 1e-15);
        assert!((w.power_gain() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        let w = Window::hann(1024);
        assert!((w.coherent_gain() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn apply_scales_frame() {
        let w = Window::hamming(4);
        let out = w.apply(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(out, w.coefficients().to_vec());
    }

    #[test]
    fn apply_in_place_rejects_wrong_length() {
        let w = Window::hann(8);
        let mut frame = vec![0.0; 4];
        assert!(w.apply_in_place(&mut frame).is_err());
    }

    #[test]
    fn all_kinds_are_bounded_by_unity_magnitude() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Triangular,
        ] {
            let w = Window::new(kind, 64);
            assert!(w
                .coefficients()
                .iter()
                .all(|&c| (-1e-12..=1.0 + 1e-12).contains(&c)));
        }
    }

    #[test]
    fn length_one_window_is_unity() {
        for kind in [WindowKind::Hann, WindowKind::FlatTop] {
            let w = Window::new(kind, 1);
            assert_eq!(w.coefficients(), &[1.0]);
        }
    }
}
