//! General IIR filters in transposed direct-form II.

use crate::error::DspError;
use serde::{Deserialize, Serialize};

/// A general IIR filter defined by numerator (`b`) and denominator (`a`) coefficients.
///
/// The denominator is normalized so that `a[0] == 1`. For second-order sections prefer
/// [`crate::biquad::Biquad`], which is numerically better behaved; this type exists for
/// arbitrary-order prototypes (e.g. the single-pole smoothing filters used by the
/// park-mode trigger).
///
/// # Example
///
/// ```
/// use ispot_dsp::iir::IirFilter;
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// // One-pole smoother: y[n] = 0.1 x[n] + 0.9 y[n-1]
/// let mut f = IirFilter::new(vec![0.1], vec![1.0, -0.9])?;
/// let y = f.process_block(&[1.0; 100]);
/// assert!((y.last().unwrap() - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IirFilter {
    b: Vec<f64>,
    a: Vec<f64>,
    state: Vec<f64>,
}

impl IirFilter {
    /// Creates a filter from numerator `b` and denominator `a` coefficients.
    ///
    /// # Errors
    ///
    /// Returns an error if either coefficient vector is empty or `a[0]` is zero.
    pub fn new(b: Vec<f64>, a: Vec<f64>) -> Result<Self, DspError> {
        if b.is_empty() {
            return Err(DspError::InvalidSize {
                name: "b",
                value: 0,
                constraint: "numerator must have at least one coefficient",
            });
        }
        if a.is_empty() {
            return Err(DspError::InvalidSize {
                name: "a",
                value: 0,
                constraint: "denominator must have at least one coefficient",
            });
        }
        if a[0].abs() < 1e-300 {
            return Err(DspError::invalid_parameter("a", "a[0] must be non-zero"));
        }
        let a0 = a[0];
        let b: Vec<f64> = b.iter().map(|v| v / a0).collect();
        let a: Vec<f64> = a.iter().map(|v| v / a0).collect();
        let order = b.len().max(a.len());
        Ok(IirFilter {
            b,
            a,
            state: vec![0.0; order],
        })
    }

    /// Creates a one-pole low-pass smoother with the given time constant in samples
    /// (`y[n] = (1-k) x[n] + k y[n-1]` with `k = exp(-1/tau)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `tau_samples` is not positive.
    pub fn one_pole_smoother(tau_samples: f64) -> Result<Self, DspError> {
        if tau_samples <= 0.0 {
            return Err(DspError::invalid_parameter(
                "tau_samples",
                "must be positive",
            ));
        }
        let k = (-1.0 / tau_samples).exp();
        Self::new(vec![1.0 - k], vec![1.0, -k])
    }

    /// Returns the numerator coefficients.
    pub fn numerator(&self) -> &[f64] {
        &self.b
    }

    /// Returns the denominator coefficients (normalized, `a[0] == 1`).
    pub fn denominator(&self) -> &[f64] {
        &self.a
    }

    /// Resets the internal state.
    pub fn reset(&mut self) {
        self.state.fill(0.0);
    }

    /// Filters one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        let order = self.state.len();
        let b0 = self.b[0];
        let y = b0 * x + self.state[0];
        for i in 1..order {
            let bi = self.b.get(i).copied().unwrap_or(0.0);
            let ai = self.a.get(i).copied().unwrap_or(0.0);
            let next = self.state.get(i).copied().unwrap_or(0.0);
            self.state[i - 1] = bi * x - ai * y + next;
        }
        if order > 0 {
            let bi = self.b.get(order).copied().unwrap_or(0.0);
            let ai = self.a.get(order).copied().unwrap_or(0.0);
            self.state[order - 1] = bi * x - ai * y;
        }
        y
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_special_case_matches_convolution() {
        let mut f = IirFilter::new(vec![1.0, 2.0, 3.0], vec![1.0]).unwrap();
        let out = f.process_block(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn one_pole_smoother_converges_to_dc_input() {
        let mut f = IirFilter::one_pole_smoother(10.0).unwrap();
        let y = f.process_block(&vec![2.0; 200]);
        assert!((y.last().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn denominator_is_normalized() {
        let f = IirFilter::new(vec![2.0], vec![2.0, 1.0]).unwrap();
        assert_eq!(f.denominator()[0], 1.0);
        assert_eq!(f.numerator()[0], 1.0);
    }

    #[test]
    fn leaky_integrator_impulse_response_decays_geometrically() {
        let mut f = IirFilter::new(vec![1.0], vec![1.0, -0.5]).unwrap();
        let mut impulse = vec![0.0; 6];
        impulse[0] = 1.0;
        let y = f.process_block(&impulse);
        for (n, &v) in y.iter().enumerate() {
            assert!((v - 0.5f64.powi(n as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(IirFilter::new(vec![], vec![1.0]).is_err());
        assert!(IirFilter::new(vec![1.0], vec![]).is_err());
        assert!(IirFilter::new(vec![1.0], vec![0.0, 1.0]).is_err());
        assert!(IirFilter::one_pole_smoother(0.0).is_err());
    }

    #[test]
    fn reset_clears_memory() {
        let mut f = IirFilter::new(vec![1.0], vec![1.0, -0.9]).unwrap();
        f.process_block(&[1.0; 50]);
        f.reset();
        assert_eq!(f.process(0.0), 0.0);
    }
}
