//! Sample formats accepted by the ingestion layer.
//!
//! Capture drivers deliver audio in whatever representation the hardware uses —
//! most commonly signed 16-bit PCM or 32-bit float, interleaved. The analysis
//! pipeline runs on `f64`. [`Sample`] is the conversion seam between the two: any
//! type implementing it can be fed to the generic
//! [`FrameAssembler`](crate::framing::FrameAssembler) entry points, which convert
//! sample by sample while de-interleaving, with no intermediate conversion buffer.

/// A raw audio sample convertible to the pipeline's internal `f64` format.
///
/// Implemented for the three formats automotive capture stacks actually deliver:
///
/// | Type  | Range          | Conversion                         |
/// |-------|----------------|------------------------------------|
/// | `i16` | `[-32768, 32767]` | divided by `32768` → `[-1, 1)` |
/// | `f32` | nominal `[-1, 1]` | widened losslessly              |
/// | `f64` | nominal `[-1, 1]` | identity                        |
///
/// The `i16` scaling is exact in both `f32` and `f64` (a 16-bit integer over a
/// power of two is a dyadic rational), so the same signal quantized to `i16` and
/// then presented as `i16`, `f32` or `f64` converts to bit-identical `f64`
/// streams — the property the ingestion-equivalence tests rely on.
pub trait Sample: Copy + Send + Sync + 'static {
    /// Converts the sample to the pipeline's internal `f64` representation.
    fn to_f64(self) -> f64;
}

impl Sample for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Sample for f32 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Sample for i16 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64 / 32768.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_is_identity_and_f32_widens() {
        assert_eq!(0.25f64.to_f64(), 0.25);
        assert_eq!(0.25f32.to_f64(), 0.25);
        assert_eq!((-1.0f32).to_f64(), -1.0);
    }

    #[test]
    fn i16_full_scale_maps_to_unit_range() {
        assert_eq!(0i16.to_f64(), 0.0);
        assert_eq!(i16::MIN.to_f64(), -1.0);
        assert!(i16::MAX.to_f64() < 1.0);
        assert_eq!(16384i16.to_f64(), 0.5);
    }

    #[test]
    fn i16_roundtrips_exactly_through_f32() {
        // The property the ingestion-equivalence tests depend on: quantized PCM
        // converts identically whether presented as i16, f32 or f64.
        for s in [i16::MIN, -12345, -1, 0, 1, 3, 9999, i16::MAX] {
            let via_f32 = ((s as f64 / 32768.0) as f32).to_f64();
            assert_eq!(via_f32, s.to_f64(), "sample {s}");
        }
    }
}
