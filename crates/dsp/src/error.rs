//! Error type shared by all DSP operations.

use std::error::Error;
use std::fmt;

/// Errors produced by DSP building blocks.
///
/// Every fallible public function in this crate returns [`DspError`]. The variants carry
/// enough information to diagnose the failing call without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// The input buffer length does not match what the operation expects.
    LengthMismatch {
        /// Length the operation expected.
        expected: usize,
        /// Length that was supplied.
        actual: usize,
    },
    /// A size parameter (FFT size, window length, hop, ...) is invalid.
    InvalidSize {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: usize,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A scalar parameter (frequency, gain, delay, ...) is out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The operation needs more samples than are available.
    InsufficientData {
        /// Number of samples required.
        required: usize,
        /// Number of samples available.
        available: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidSize {
                name,
                value,
                constraint,
            } => write!(f, "invalid size for `{name}`: {value} ({constraint})"),
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::InsufficientData {
                required,
                available,
            } => write!(
                f,
                "insufficient data: {required} samples required, {available} available"
            ),
        }
    }
}

impl Error for DspError {}

impl DspError {
    /// Convenience constructor for [`DspError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, reason: impl Into<String>) -> Self {
        DspError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            DspError::LengthMismatch {
                expected: 4,
                actual: 2,
            },
            DspError::InvalidSize {
                name: "fft_size",
                value: 3,
                constraint: "must be a power of two",
            },
            DspError::invalid_parameter("cutoff", "must be below Nyquist"),
            DspError::InsufficientData {
                required: 10,
                available: 2,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
