//! Linear convolution, direct and FFT-accelerated.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft::Fft;
use serde::{Deserialize, Serialize};

/// Which part of the full convolution to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ConvMode {
    /// The full convolution of length `n + m - 1`.
    #[default]
    Full,
    /// The central part, the same length as the first input.
    Same,
    /// Only the part where the signals fully overlap, length `max(n, m) - min(n, m) + 1`.
    Valid,
}

/// Computes the direct (time-domain) linear convolution of `x` and `h`.
///
/// # Example
///
/// ```
/// use ispot_dsp::convolution::{convolve, ConvMode};
///
/// let y = convolve(&[1.0, 2.0, 3.0], &[1.0, 1.0], ConvMode::Full);
/// assert_eq!(y, vec![1.0, 3.0, 5.0, 3.0]);
/// ```
pub fn convolve(x: &[f64], h: &[f64], mode: ConvMode) -> Vec<f64> {
    if x.is_empty() || h.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let m = h.len();
    let full_len = n + m - 1;
    let mut full = vec![0.0; full_len];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            full[i + j] += xi * hj;
        }
    }
    trim_mode(full, n, m, mode)
}

/// Computes the linear convolution of `x` and `h` using the FFT (overlap-free, single
/// large transform). Faster than [`convolve`] for long signals.
///
/// # Errors
///
/// Returns an error only if the internal FFT plan rejects the padded length, which
/// cannot happen for non-empty inputs.
pub fn fft_convolve(x: &[f64], h: &[f64], mode: ConvMode) -> Result<Vec<f64>, DspError> {
    if x.is_empty() || h.is_empty() {
        return Ok(Vec::new());
    }
    let n = x.len();
    let m = h.len();
    let full_len = n + m - 1;
    let size = full_len.next_power_of_two();
    let fft = Fft::new(size);
    let mut xa = vec![Complex::ZERO; size];
    let mut hb = vec![Complex::ZERO; size];
    for (i, &v) in x.iter().enumerate() {
        xa[i] = Complex::new(v, 0.0);
    }
    for (i, &v) in h.iter().enumerate() {
        hb[i] = Complex::new(v, 0.0);
    }
    let fx = fft.forward(&xa)?;
    let fh = fft.forward(&hb)?;
    let prod: Vec<Complex> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
    let full: Vec<f64> = fft
        .inverse_real(&prod)?
        .into_iter()
        .take(full_len)
        .collect();
    Ok(trim_mode(full, n, m, mode))
}

/// Computes the (biased) cross-correlation of `x` and `y` at lags
/// `-(y.len()-1) ..= x.len()-1`, returned with the zero lag at index `y.len()-1`.
pub fn cross_correlate(x: &[f64], y: &[f64]) -> Vec<f64> {
    let reversed: Vec<f64> = y.iter().rev().copied().collect();
    convolve(x, &reversed, ConvMode::Full)
}

fn trim_mode(full: Vec<f64>, n: usize, m: usize, mode: ConvMode) -> Vec<f64> {
    match mode {
        ConvMode::Full => full,
        ConvMode::Same => {
            let start = (m - 1) / 2;
            full[start..start + n].to_vec()
        }
        ConvMode::Valid => {
            if n >= m {
                full[m - 1..n].to_vec()
            } else {
                full[n - 1..m].to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_convolution_known_result() {
        let y = convolve(&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.5], ConvMode::Full);
        assert_eq!(y, vec![0.0, 1.0, 2.5, 4.0, 1.5]);
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let x: Vec<f64> = (0..53).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let h: Vec<f64> = (0..17).map(|i| ((i * 3) % 5) as f64 * 0.25).collect();
        let a = convolve(&x, &h, ConvMode::Full);
        let b = fft_convolve(&x, &h, ConvMode::Full).unwrap();
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn same_mode_preserves_length() {
        let x = vec![1.0; 10];
        let h = vec![0.25; 5];
        assert_eq!(convolve(&x, &h, ConvMode::Same).len(), 10);
    }

    #[test]
    fn valid_mode_length() {
        let x = vec![1.0; 10];
        let h = vec![1.0; 4];
        assert_eq!(convolve(&x, &h, ConvMode::Valid).len(), 7);
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        assert!(convolve(&[], &[1.0], ConvMode::Full).is_empty());
        assert!(fft_convolve(&[1.0], &[], ConvMode::Full)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let x = vec![0.5, -1.0, 2.0];
        assert_eq!(convolve(&x, &[1.0], ConvMode::Full), x);
    }

    #[test]
    fn cross_correlation_peak_at_shift() {
        // y is x delayed by 3 samples; the correlation peak must occur at lag 3,
        // i.e. index (y.len()-1) - 3 when correlating y against x.
        let x = vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0];
        let mut y = vec![0.0; x.len()];
        y[3..].copy_from_slice(&x[..x.len() - 3]);
        let corr = cross_correlate(&y, &x);
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let zero_lag = x.len() - 1;
        assert_eq!(peak as isize - zero_lag as isize, 3);
    }
}
