//! Multichannel chunk-to-frame assembly for streaming pipelines.
//!
//! Real capture front-ends deliver audio in whatever block size the driver uses —
//! rarely the analysis frame length. [`FrameAssembler`] sits between the two: it
//! accepts multichannel chunks of **arbitrary** size (one sample up to many frames)
//! and yields exactly-`frame_len` frames advanced by `hop`, byte-identical to slicing
//! the concatenated stream directly. It is built on [`RingBuffer`] (one per channel)
//! and performs **no heap allocation in steady state**: the rings only grow (once)
//! when a larger chunk than ever seen before arrives, and frames are emitted into
//! caller-provided buffers.
//!
//! # Example
//!
//! ```
//! use ispot_dsp::framing::FrameAssembler;
//!
//! # fn main() -> Result<(), ispot_dsp::DspError> {
//! let mut asm = FrameAssembler::new(1, 4, 2)?;
//! let mut frame = vec![Vec::new()];
//! asm.push(&[&[1.0, 2.0, 3.0]])?;
//! assert!(!asm.frame_ready());
//! asm.push(&[&[4.0, 5.0]])?;
//! assert!(asm.frame_ready());
//! assert_eq!(asm.emit_into(&mut frame)?, 0); // frame index 0
//! assert_eq!(frame[0], [1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

use crate::error::DspError;
use crate::ring::RingBuffer;
use crate::sample::Sample;

/// Reassembles arbitrary-sized multichannel chunks into fixed frames.
///
/// The assembler guarantees *chunk-size invariance*: however the input stream is cut
/// into [`push`](FrameAssembler::push) calls, the emitted frames are identical to
/// framing the whole stream at once with the same `frame_len`/`hop`.
#[derive(Debug, Clone)]
pub struct FrameAssembler {
    rings: Vec<RingBuffer>,
    frame_len: usize,
    hop: usize,
    /// Samples that still have to be discarded before the next frame starts
    /// (non-zero only while `hop > frame_len` and the gap has not fully arrived).
    pending_discard: usize,
    next_frame_index: usize,
}

impl FrameAssembler {
    /// Creates an assembler for `num_channels` channels yielding `frame_len`-sample
    /// frames every `hop` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSize`] if any parameter is zero.
    pub fn new(num_channels: usize, frame_len: usize, hop: usize) -> Result<Self, DspError> {
        if num_channels == 0 {
            return Err(DspError::InvalidSize {
                name: "num_channels",
                value: 0,
                constraint: "must be positive",
            });
        }
        if frame_len == 0 {
            return Err(DspError::InvalidSize {
                name: "frame_len",
                value: 0,
                constraint: "must be positive",
            });
        }
        if hop == 0 {
            return Err(DspError::InvalidSize {
                name: "hop",
                value: 0,
                constraint: "must be positive",
            });
        }
        // Enough for one frame plus one hop of look-ahead; grows on demand if the
        // producer delivers larger chunks.
        let capacity = frame_len + hop;
        let rings = (0..num_channels)
            .map(|_| RingBuffer::new(capacity))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FrameAssembler {
            rings,
            frame_len,
            hop,
            pending_discard: 0,
            next_frame_index: 0,
        })
    }

    /// Number of input channels.
    pub fn num_channels(&self) -> usize {
        self.rings.len()
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Hop between consecutive frames in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Index the next emitted frame will carry (counts from 0, advances per emit).
    pub fn next_frame_index(&self) -> usize {
        self.next_frame_index
    }

    /// Samples currently buffered per channel.
    pub fn samples_buffered(&self) -> usize {
        self.rings[0].available()
    }

    /// Clears all buffered samples and restarts frame numbering at 0. Ring capacity
    /// is retained, so a reset does not reintroduce allocations.
    pub fn reset(&mut self) {
        for ring in &mut self.rings {
            ring.clear();
        }
        self.pending_discard = 0;
        self.next_frame_index = 0;
    }

    /// Appends one multichannel chunk (`chunk[channel][sample]`; every channel the
    /// same length, any length including zero).
    ///
    /// Allocates only if the buffered backlog would exceed the current ring capacity
    /// — with a consumer that drains ready frames between pushes, capacity converges
    /// after the first few chunks and steady state is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if the channel count differs from
    /// construction or the channels have unequal lengths. The assembler is unchanged
    /// on error.
    pub fn push(&mut self, chunk: &[&[f64]]) -> Result<(), DspError> {
        self.push_planar(chunk)
    }

    /// Appends one planar multichannel chunk in any [`Sample`] format
    /// (`chunk[channel][sample]`; every channel the same length, any length
    /// including zero). Samples are converted to `f64` as they enter the rings —
    /// no intermediate conversion buffer is built.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push`](FrameAssembler::push).
    pub fn push_planar<S: Sample>(&mut self, chunk: &[&[S]]) -> Result<(), DspError> {
        if chunk.len() != self.rings.len() {
            return Err(DspError::LengthMismatch {
                expected: self.rings.len(),
                actual: chunk.len(),
            });
        }
        let chunk_len = chunk[0].len();
        for ch in chunk {
            if ch.len() != chunk_len {
                return Err(DspError::LengthMismatch {
                    expected: chunk_len,
                    actual: ch.len(),
                });
            }
        }
        self.reserve(chunk_len);
        for (ring, ch) in self.rings.iter_mut().zip(chunk) {
            ring.write_iter(ch.iter().copied().map(Sample::to_f64))?;
        }
        self.settle_discard();
        Ok(())
    }

    /// Appends one interleaved chunk in any [`Sample`] format
    /// (`data[sample * num_channels + channel]`, the layout capture drivers
    /// deliver). The chunk is de-interleaved with strided reads straight into the
    /// per-channel rings — no intermediate de-interleave buffer is built.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `data.len()` is not a whole number
    /// of `num_channels`-sample frames. The assembler is unchanged on error.
    pub fn push_interleaved<S: Sample>(&mut self, data: &[S]) -> Result<(), DspError> {
        let num_channels = self.rings.len();
        if !data.len().is_multiple_of(num_channels) {
            return Err(DspError::LengthMismatch {
                expected: (data.len() / num_channels) * num_channels,
                actual: data.len(),
            });
        }
        if data.is_empty() {
            self.settle_discard();
            return Ok(());
        }
        self.reserve(data.len() / num_channels);
        for (channel, ring) in self.rings.iter_mut().enumerate() {
            ring.write_iter(
                data[channel..]
                    .iter()
                    .step_by(num_channels)
                    .copied()
                    .map(Sample::to_f64),
            )?;
        }
        self.settle_discard();
        Ok(())
    }

    /// Grows the rings (once, to the next power of two) if `additional` more
    /// samples would exceed the current capacity.
    fn reserve(&mut self, additional: usize) {
        let needed = self.rings[0].available() + additional;
        if needed > self.rings[0].capacity() {
            for ring in &mut self.rings {
                ring.grow(needed.next_power_of_two());
            }
        }
    }

    /// Applies any outstanding inter-frame discard (`hop > frame_len` gaps) as soon
    /// as the samples to be skipped have arrived.
    fn settle_discard(&mut self) {
        if self.pending_discard == 0 {
            return;
        }
        let drop = self.pending_discard.min(self.rings[0].available());
        if drop > 0 {
            for ring in &mut self.rings {
                // analyze: allow(expect) — statically infallible: `drop` is clamped
                // to `available()` above and every ring holds the same count
                ring.skip(drop).expect("discard bounded by available()");
            }
            self.pending_discard -= drop;
        }
    }

    /// Returns true when a full frame is buffered and can be emitted.
    pub fn frame_ready(&self) -> bool {
        self.pending_discard == 0 && self.rings[0].available() >= self.frame_len
    }

    /// Emits the next frame into `out` (one `Vec<f64>` per channel, resized to
    /// `frame_len`; reusing the same `out` across calls makes emission
    /// allocation-free) and advances the stream position by `hop`. Returns the index
    /// of the emitted frame.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if no frame is ready (check
    /// [`frame_ready`](FrameAssembler::frame_ready) first) or
    /// [`DspError::LengthMismatch`] if `out` has the wrong channel count.
    pub fn emit_into(&mut self, out: &mut [Vec<f64>]) -> Result<usize, DspError> {
        if out.len() != self.rings.len() {
            return Err(DspError::LengthMismatch {
                expected: self.rings.len(),
                actual: out.len(),
            });
        }
        if !self.frame_ready() {
            return Err(DspError::InsufficientData {
                required: self.frame_len + self.pending_discard,
                available: self.rings[0].available(),
            });
        }
        for (ring, buf) in self.rings.iter_mut().zip(out.iter_mut()) {
            buf.resize(self.frame_len, 0.0);
            ring.peek(buf)?;
        }
        // Advance by hop; if hop exceeds what is buffered (hop > frame_len streams),
        // remember the shortfall and discard it as the gap samples arrive.
        let advance = self.hop.min(self.rings[0].available());
        for ring in &mut self.rings {
            ring.skip(advance)?;
        }
        self.pending_discard = self.hop - advance;
        self.next_frame_index += 1;
        Ok(self.next_frame_index - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Frames `signal` directly by slicing, the reference for invariance tests.
    fn reference_frames(signal: &[f64], frame_len: usize, hop: usize) -> Vec<Vec<f64>> {
        if signal.len() < frame_len {
            return Vec::new();
        }
        (0..(signal.len() - frame_len) / hop + 1)
            .map(|f| signal[f * hop..f * hop + frame_len].to_vec())
            .collect()
    }

    fn drain(asm: &mut FrameAssembler, out: &mut Vec<Vec<f64>>) {
        let mut frame = vec![Vec::new(); asm.num_channels()];
        while asm.frame_ready() {
            asm.emit_into(&mut frame).unwrap();
            out.push(frame[0].clone());
        }
    }

    #[test]
    fn single_push_matches_direct_slicing() {
        let signal: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut asm = FrameAssembler::new(1, 16, 8).unwrap();
        asm.push(&[&signal]).unwrap();
        let mut got = Vec::new();
        drain(&mut asm, &mut got);
        assert_eq!(got, reference_frames(&signal, 16, 8));
    }

    #[test]
    fn sample_by_sample_push_matches_direct_slicing() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut asm = FrameAssembler::new(1, 16, 4).unwrap();
        let mut got = Vec::new();
        for s in &signal {
            asm.push(&[&[*s]]).unwrap();
            drain(&mut asm, &mut got);
        }
        assert_eq!(got, reference_frames(&signal, 16, 4));
    }

    #[test]
    fn hop_larger_than_frame_len_skips_the_gap() {
        let signal: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut asm = FrameAssembler::new(1, 4, 10).unwrap();
        let mut got = Vec::new();
        for chunk in signal.chunks(3) {
            asm.push(&[chunk]).unwrap();
            drain(&mut asm, &mut got);
        }
        assert_eq!(got, reference_frames(&signal, 4, 10));
    }

    #[test]
    fn multichannel_frames_stay_aligned() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| -(i as f64)).collect();
        let mut asm = FrameAssembler::new(2, 8, 8).unwrap();
        let mut frame = vec![Vec::new(); 2];
        let mut count = 0;
        for i in (0..50).step_by(5) {
            asm.push(&[&a[i..i + 5], &b[i..i + 5]]).unwrap();
            while asm.frame_ready() {
                let idx = asm.emit_into(&mut frame).unwrap();
                assert_eq!(idx, count);
                for (x, y) in frame[0].iter().zip(&frame[1]) {
                    assert_eq!(*x, -*y);
                }
                count += 1;
            }
        }
        assert_eq!(count, reference_frames(&a, 8, 8).len());
    }

    #[test]
    fn mismatched_inputs_are_rejected_without_side_effects() {
        let mut asm = FrameAssembler::new(2, 8, 4).unwrap();
        assert!(asm.push(&[&[1.0]]).is_err());
        assert!(asm.push(&[&[1.0][..], &[1.0, 2.0][..]]).is_err());
        assert_eq!(asm.samples_buffered(), 0);
        let mut short = vec![Vec::new()];
        assert!(asm.emit_into(&mut short).is_err());
        let mut ok = vec![Vec::new(), Vec::new()];
        assert!(matches!(
            asm.emit_into(&mut ok),
            Err(DspError::InsufficientData { .. })
        ));
    }

    #[test]
    fn reset_restarts_frame_numbering_without_shrinking() {
        let mut asm = FrameAssembler::new(1, 4, 4).unwrap();
        asm.push(&[&[0.0; 40]]).unwrap();
        let mut frame = vec![Vec::new()];
        while asm.frame_ready() {
            asm.emit_into(&mut frame).unwrap();
        }
        assert!(asm.next_frame_index() > 0);
        asm.reset();
        assert_eq!(asm.next_frame_index(), 0);
        assert_eq!(asm.samples_buffered(), 0);
        assert!(!asm.frame_ready());
    }

    #[test]
    fn interleaved_push_matches_planar_push() {
        let left: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let right: Vec<f64> = (0..40).map(|i| -(i as f64)).collect();
        let interleaved: Vec<f64> = left
            .iter()
            .zip(&right)
            .flat_map(|(&l, &r)| [l, r])
            .collect();
        let mut planar = FrameAssembler::new(2, 8, 4).unwrap();
        let mut inter = FrameAssembler::new(2, 8, 4).unwrap();
        planar.push(&[&left, &right]).unwrap();
        inter.push_interleaved(&interleaved).unwrap();
        let mut a = vec![Vec::new(); 2];
        let mut b = vec![Vec::new(); 2];
        while planar.frame_ready() {
            assert!(inter.frame_ready());
            planar.emit_into(&mut a).unwrap();
            inter.emit_into(&mut b).unwrap();
            assert_eq!(a, b);
        }
        assert!(!inter.frame_ready());
    }

    #[test]
    fn i16_and_f32_samples_convert_on_ingest() {
        let pcm: Vec<i16> = vec![0, 16384, -16384, i16::MIN, i16::MAX, 0, 0, 0];
        let mut asm = FrameAssembler::new(1, 8, 8).unwrap();
        asm.push_planar(&[&pcm]).unwrap();
        let mut frame = vec![Vec::new()];
        asm.emit_into(&mut frame).unwrap();
        assert_eq!(frame[0][0], 0.0);
        assert_eq!(frame[0][1], 0.5);
        assert_eq!(frame[0][2], -0.5);
        assert_eq!(frame[0][3], -1.0);

        let floats: Vec<f32> = vec![0.25, -0.75];
        let mut asm = FrameAssembler::new(2, 1, 1).unwrap();
        asm.push_interleaved(&floats).unwrap();
        asm.emit_into(&mut [Vec::new(), Vec::new()]).unwrap();
    }

    #[test]
    fn ragged_interleaved_chunks_are_rejected_without_side_effects() {
        let mut asm = FrameAssembler::new(2, 8, 4).unwrap();
        assert!(asm.push_interleaved(&[1.0f64, 2.0, 3.0]).is_err());
        assert_eq!(asm.samples_buffered(), 0);
        asm.push_interleaved::<f64>(&[]).unwrap();
        assert_eq!(asm.samples_buffered(), 0);
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(FrameAssembler::new(0, 4, 2).is_err());
        assert!(FrameAssembler::new(1, 0, 2).is_err());
        assert!(FrameAssembler::new(1, 4, 0).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The core contract: any chunking of the stream yields frames identical to
        /// slicing the whole signal at once.
        #[test]
        fn chunking_is_invariant(
            signal in prop::collection::vec(-1.0f64..1.0, 0..400),
            cuts in prop::collection::vec(1usize..97, 1..40),
            frame_len in 1usize..33,
            hop in 1usize..49,
        ) {
            let mut asm = FrameAssembler::new(1, frame_len, hop).unwrap();
            let mut got = Vec::new();
            let mut frame = vec![Vec::new()];
            let mut pos = 0;
            let mut cut_iter = cuts.iter().cycle();
            while pos < signal.len() {
                let take = (*cut_iter.next().unwrap()).min(signal.len() - pos);
                asm.push(&[&signal[pos..pos + take]]).unwrap();
                pos += take;
                while asm.frame_ready() {
                    asm.emit_into(&mut frame).unwrap();
                    got.push(frame[0].clone());
                }
            }
            let expected = reference_frames(&signal, frame_len, hop);
            prop_assert_eq!(got, expected);
        }
    }
}
