//! Interpolation of sampled signals at fractional positions.
//!
//! Fractional-delay reads are the mechanism by which the road-acoustics simulator
//! produces smooth, artefact-free Doppler shifts (Sec. IV-A of the paper; the
//! variable-length delay lines of Fig. 2 are read at non-integer positions).

use serde::{Deserialize, Serialize};

/// The interpolation method used for fractional reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Interpolator {
    /// Zero-order hold (nearest sample). Cheapest, audible artefacts under Doppler.
    Nearest,
    /// Linear interpolation between the two neighbouring samples.
    #[default]
    Linear,
    /// Third-order Lagrange interpolation over four neighbouring samples.
    Lagrange3,
    /// Windowed-sinc interpolation (8 taps, Hann-windowed). Highest quality.
    Sinc8,
}

impl Interpolator {
    /// Number of samples of context required on each side of the read position.
    pub fn support(self) -> usize {
        match self {
            Interpolator::Nearest => 1,
            Interpolator::Linear => 1,
            Interpolator::Lagrange3 => 2,
            Interpolator::Sinc8 => 4,
        }
    }

    /// Interpolates `signal` at fractional index `pos`.
    ///
    /// Positions outside the signal are clamped to the nearest valid sample, which is
    /// the behaviour needed when a delay line has just been filled.
    pub fn interpolate(self, signal: &[f64], pos: f64) -> f64 {
        if signal.is_empty() {
            return 0.0;
        }
        let clamp = |i: isize| -> f64 {
            let i = i.clamp(0, signal.len() as isize - 1) as usize;
            signal[i]
        };
        let base = pos.floor();
        let frac = pos - base;
        let i0 = base as isize;
        match self {
            Interpolator::Nearest => clamp(pos.round() as isize),
            Interpolator::Linear => {
                let a = clamp(i0);
                let b = clamp(i0 + 1);
                a + frac * (b - a)
            }
            Interpolator::Lagrange3 => {
                // Third-order Lagrange over samples at offsets -1, 0, 1, 2.
                let xm1 = clamp(i0 - 1);
                let x0 = clamp(i0);
                let x1 = clamp(i0 + 1);
                let x2 = clamp(i0 + 2);
                let d = frac;
                let c0 = -d * (d - 1.0) * (d - 2.0) / 6.0;
                let c1 = (d + 1.0) * (d - 1.0) * (d - 2.0) / 2.0;
                let c2 = -(d + 1.0) * d * (d - 2.0) / 2.0;
                let c3 = (d + 1.0) * d * (d - 1.0) / 6.0;
                c0 * xm1 + c1 * x0 + c2 * x1 + c3 * x2
            }
            Interpolator::Sinc8 => {
                let taps = 4isize;
                let mut acc = 0.0;
                let mut norm = 0.0;
                for k in (1 - taps)..=taps {
                    let idx = i0 + k;
                    let t = frac - k as f64;
                    let sinc = if t.abs() < 1e-12 {
                        1.0
                    } else {
                        let pt = std::f64::consts::PI * t;
                        pt.sin() / pt
                    };
                    // Hann window over the tap span.
                    let w = 0.5 + 0.5 * (std::f64::consts::PI * t / taps as f64).cos();
                    let coeff = sinc * w.max(0.0);
                    acc += coeff * clamp(idx);
                    norm += coeff;
                }
                if norm.abs() > 1e-12 {
                    acc / norm
                } else {
                    acc
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_are_exact_at_integer_positions() {
        let x = [0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0];
        for m in [
            Interpolator::Nearest,
            Interpolator::Linear,
            Interpolator::Lagrange3,
            Interpolator::Sinc8,
        ] {
            for i in 2..6 {
                let v = m.interpolate(&x, i as f64);
                assert!(
                    (v - x[i]).abs() < 1e-9,
                    "{m:?} at integer {i}: got {v}, want {}",
                    x[i]
                );
            }
        }
    }

    #[test]
    fn linear_midpoint() {
        let x = [0.0, 2.0, 4.0];
        assert!((Interpolator::Linear.interpolate(&x, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lagrange_reproduces_quadratic() {
        // x[n] = n^2 is a polynomial of degree 2, which cubic Lagrange reproduces exactly.
        let x: Vec<f64> = (0..10).map(|n| (n * n) as f64).collect();
        for p in [2.25, 3.5, 4.75, 6.1] {
            let v = Interpolator::Lagrange3.interpolate(&x, p);
            assert!((v - p * p).abs() < 1e-9, "at {p}: {v} vs {}", p * p);
        }
    }

    #[test]
    fn sinc_tracks_smooth_sine_closely() {
        let fs = 100.0;
        let f0 = 3.0;
        let x: Vec<f64> = (0..200)
            .map(|n| (2.0 * std::f64::consts::PI * f0 * n as f64 / fs).sin())
            .collect();
        for p in [50.3, 80.77, 120.5] {
            let truth = (2.0 * std::f64::consts::PI * f0 * p / fs).sin();
            let v = Interpolator::Sinc8.interpolate(&x, p);
            assert!((v - truth).abs() < 2e-3, "at {p}: {v} vs {truth}");
        }
    }

    #[test]
    fn out_of_range_positions_are_clamped() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(Interpolator::Linear.interpolate(&x, -5.0), 1.0);
        assert_eq!(Interpolator::Linear.interpolate(&x, 10.0), 3.0);
    }

    #[test]
    fn empty_signal_yields_zero() {
        assert_eq!(Interpolator::Linear.interpolate(&[], 1.0), 0.0);
    }
}
