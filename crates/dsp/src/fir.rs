//! Finite impulse response (FIR) filters: design and streaming application.
//!
//! The road-acoustics simulator models both the asphalt reflection and atmospheric
//! absorption as FIR filters (Fig. 2 of the paper); this module provides the design
//! routines (windowed-sinc and least-squares-on-a-grid) and a stateful streaming filter.

use crate::error::DspError;
use crate::window::{Window, WindowKind};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// FIR design helpers (windowed-sinc method).
#[derive(Debug, Clone, Copy)]
pub struct FirDesign;

impl FirDesign {
    /// Designs a linear-phase low-pass filter with `taps` coefficients and cutoff
    /// `cutoff_hz` at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns an error if `taps` is zero or even, or if the cutoff is not in
    /// `(0, fs/2)`.
    pub fn lowpass(taps: usize, cutoff_hz: f64, fs: f64) -> Result<Vec<f64>, DspError> {
        Self::validate(taps, cutoff_hz, fs)?;
        let fc = cutoff_hz / fs;
        let m = (taps - 1) as f64 / 2.0;
        let window = Window::new(WindowKind::Hamming, taps);
        let mut h: Vec<f64> = (0..taps)
            .map(|n| {
                let t = n as f64 - m;
                let sinc = if t.abs() < 1e-12 {
                    2.0 * fc
                } else {
                    (2.0 * PI * fc * t).sin() / (PI * t)
                };
                sinc * window.coefficients()[n]
            })
            .collect();
        // Normalize to unity gain at DC.
        let sum: f64 = h.iter().sum();
        for v in &mut h {
            *v /= sum;
        }
        Ok(h)
    }

    /// Designs a linear-phase high-pass filter by spectral inversion of a low-pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FirDesign::lowpass`].
    pub fn highpass(taps: usize, cutoff_hz: f64, fs: f64) -> Result<Vec<f64>, DspError> {
        let mut h = Self::lowpass(taps, cutoff_hz, fs)?;
        for v in h.iter_mut() {
            *v = -*v;
        }
        h[(taps - 1) / 2] += 1.0;
        Ok(h)
    }

    /// Designs a linear-phase band-pass filter between `low_hz` and `high_hz`.
    ///
    /// # Errors
    ///
    /// Returns an error if the band edges are not ordered or outside `(0, fs/2)`.
    pub fn bandpass(taps: usize, low_hz: f64, high_hz: f64, fs: f64) -> Result<Vec<f64>, DspError> {
        if low_hz >= high_hz {
            return Err(DspError::invalid_parameter(
                "low_hz",
                format!("band edges must satisfy low < high, got {low_hz} >= {high_hz}"),
            ));
        }
        let lp_high = Self::lowpass(taps, high_hz, fs)?;
        let lp_low = Self::lowpass(taps, low_hz, fs)?;
        Ok(lp_high.iter().zip(&lp_low).map(|(a, b)| a - b).collect())
    }

    /// Designs an FIR filter matching an arbitrary magnitude response specified on a
    /// uniform frequency grid from DC to Nyquist (frequency-sampling method).
    ///
    /// `magnitudes[k]` is the desired linear gain at `k / (magnitudes.len()-1) * fs/2`.
    /// This is the routine used to fit the asphalt-reflection and air-absorption
    /// responses in the road simulator.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two magnitude points are given or `taps` is zero
    /// or even.
    pub fn from_magnitude_response(taps: usize, magnitudes: &[f64]) -> Result<Vec<f64>, DspError> {
        if taps == 0 || taps.is_multiple_of(2) {
            return Err(DspError::InvalidSize {
                name: "taps",
                value: taps,
                constraint: "must be odd and non-zero",
            });
        }
        if magnitudes.len() < 2 {
            return Err(DspError::InvalidSize {
                name: "magnitudes",
                value: magnitudes.len(),
                constraint: "must contain at least two grid points",
            });
        }
        let m = (taps - 1) / 2;
        let grid = magnitudes.len();
        let window = Window::new(WindowKind::Hamming, taps);
        // Inverse DTFT of the (zero-phase) desired response via numerical integration
        // over the grid, then apply a Hamming window and delay by m for causality.
        let mut h = vec![0.0; taps];
        for (n, hv) in h.iter_mut().enumerate() {
            let t = n as f64 - m as f64;
            let mut acc = 0.0;
            for (k, &mag) in magnitudes.iter().enumerate() {
                let omega = PI * k as f64 / (grid - 1) as f64;
                // Trapezoid weights at the interval ends.
                let w = if k == 0 || k == grid - 1 { 0.5 } else { 1.0 };
                acc += w * mag * (omega * t).cos();
            }
            *hv = acc / (grid - 1) as f64 * window.coefficients()[n];
        }
        Ok(h)
    }

    fn validate(taps: usize, cutoff_hz: f64, fs: f64) -> Result<(), DspError> {
        if taps == 0 || taps.is_multiple_of(2) {
            return Err(DspError::InvalidSize {
                name: "taps",
                value: taps,
                constraint: "must be odd and non-zero",
            });
        }
        if !(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0) {
            return Err(DspError::invalid_parameter(
                "cutoff_hz",
                format!("must be in (0, fs/2) = (0, {}), got {cutoff_hz}", fs / 2.0),
            ));
        }
        Ok(())
    }
}

/// A stateful FIR filter for streaming (sample-by-sample or block) processing.
///
/// # Example
///
/// ```
/// use ispot_dsp::fir::{FirDesign, FirFilter};
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let coeffs = FirDesign::lowpass(31, 1000.0, 16_000.0)?;
/// let mut filter = FirFilter::new(coeffs)?;
/// let out = filter.process_block(&[1.0, 0.0, 0.0, 0.0]);
/// assert_eq!(out.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FirFilter {
    coefficients: Vec<f64>,
    state: Vec<f64>,
    position: usize,
}

impl FirFilter {
    /// Creates a filter from its impulse-response coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSize`] if `coefficients` is empty.
    pub fn new(coefficients: Vec<f64>) -> Result<Self, DspError> {
        if coefficients.is_empty() {
            return Err(DspError::InvalidSize {
                name: "coefficients",
                value: 0,
                constraint: "must contain at least one tap",
            });
        }
        let len = coefficients.len();
        Ok(FirFilter {
            coefficients,
            state: vec![0.0; len],
            position: 0,
        })
    }

    /// Returns the filter coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Returns the number of taps.
    pub fn len(&self) -> usize {
        self.coefficients.len()
    }

    /// Returns true if the filter has no taps (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// Resets the internal state to silence.
    pub fn reset(&mut self) {
        self.state.fill(0.0);
        self.position = 0;
    }

    /// Filters a single sample.
    pub fn process(&mut self, input: f64) -> f64 {
        let n = self.coefficients.len();
        self.state[self.position] = input;
        let mut acc = 0.0;
        let mut idx = self.position;
        for &c in &self.coefficients {
            acc += c * self.state[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.position = (self.position + 1) % n;
        acc
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Evaluates the filter's complex frequency response at `freq_hz` for sampling rate
    /// `fs`, returning `(magnitude, phase)`.
    pub fn frequency_response(&self, freq_hz: f64, fs: f64) -> (f64, f64) {
        let omega = 2.0 * PI * freq_hz / fs;
        let (mut re, mut im) = (0.0, 0.0);
        for (n, &c) in self.coefficients.iter().enumerate() {
            re += c * (omega * n as f64).cos();
            im -= c * (omega * n as f64).sin();
        }
        ((re * re + im * im).sqrt(), im.atan2(re))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_passes_dc_and_attenuates_high_frequency() {
        let fs = 16_000.0;
        let h = FirDesign::lowpass(63, 1000.0, fs).unwrap();
        let f = FirFilter::new(h).unwrap();
        let (dc_gain, _) = f.frequency_response(0.0, fs);
        let (hf_gain, _) = f.frequency_response(5000.0, fs);
        assert!((dc_gain - 1.0).abs() < 1e-6);
        assert!(hf_gain < 0.01, "stop-band gain {hf_gain}");
    }

    #[test]
    fn highpass_blocks_dc() {
        let fs = 16_000.0;
        let h = FirDesign::highpass(63, 2000.0, fs).unwrap();
        let f = FirFilter::new(h).unwrap();
        let (dc_gain, _) = f.frequency_response(0.0, fs);
        let (hf_gain, _) = f.frequency_response(6000.0, fs);
        assert!(dc_gain < 0.01, "dc gain {dc_gain}");
        assert!((hf_gain - 1.0).abs() < 0.05, "pass-band gain {hf_gain}");
    }

    #[test]
    fn bandpass_selects_band() {
        let fs = 16_000.0;
        let h = FirDesign::bandpass(127, 500.0, 1500.0, fs).unwrap();
        let f = FirFilter::new(h).unwrap();
        let (in_band, _) = f.frequency_response(1000.0, fs);
        let (below, _) = f.frequency_response(100.0, fs);
        let (above, _) = f.frequency_response(4000.0, fs);
        assert!(in_band > 0.9);
        assert!(below < 0.05);
        assert!(above < 0.05);
    }

    #[test]
    fn impulse_response_equals_coefficients() {
        let coeffs = vec![0.5, -0.25, 0.125, 1.0];
        let mut f = FirFilter::new(coeffs.clone()).unwrap();
        let mut impulse = vec![0.0; coeffs.len()];
        impulse[0] = 1.0;
        let out = f.process_block(&impulse);
        for (a, b) in out.iter().zip(&coeffs) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn from_magnitude_response_approximates_target() {
        // Target: gentle high-shelf attenuation, similar to an air-absorption curve.
        let grid: Vec<f64> = (0..64).map(|k| 1.0 - 0.6 * k as f64 / 63.0).collect();
        let h = FirDesign::from_magnitude_response(101, &grid).unwrap();
        let f = FirFilter::new(h).unwrap();
        let fs = 16_000.0;
        let (g_low, _) = f.frequency_response(200.0, fs);
        let (g_high, _) = f.frequency_response(7500.0, fs);
        assert!((g_low - 1.0).abs() < 0.1, "low gain {g_low}");
        assert!((g_high - 0.4).abs() < 0.1, "high gain {g_high}");
    }

    #[test]
    fn invalid_designs_are_rejected() {
        assert!(FirDesign::lowpass(0, 100.0, 1000.0).is_err());
        assert!(FirDesign::lowpass(10, 100.0, 1000.0).is_err());
        assert!(FirDesign::lowpass(11, 600.0, 1000.0).is_err());
        assert!(FirDesign::bandpass(11, 400.0, 300.0, 1000.0).is_err());
        assert!(FirDesign::from_magnitude_response(11, &[1.0]).is_err());
        assert!(FirFilter::new(vec![]).is_err());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = FirFilter::new(vec![1.0, 1.0, 1.0]).unwrap();
        f.process(1.0);
        f.reset();
        assert_eq!(f.process(0.0), 0.0);
    }
}
