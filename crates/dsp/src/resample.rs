//! Sample-rate conversion.

use crate::error::DspError;
use crate::fir::{FirDesign, FirFilter};
use crate::interp::Interpolator;

/// A simple arbitrary-ratio resampler using fractional-position interpolation.
///
/// For modest ratio changes (as needed when matching source material sample rates to
/// the 16 kHz processing rate used throughout I-SPOT) this is accurate enough; for
/// large downsampling factors use [`decimate`] which includes an anti-aliasing filter.
///
/// # Example
///
/// ```
/// use ispot_dsp::resample::LinearResampler;
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let resampler = LinearResampler::new(8000.0, 16000.0)?;
/// let input: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let output = resampler.resample(&input);
/// assert_eq!(output.len(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearResampler {
    ratio: f64,
    interpolator: Interpolator,
}

impl LinearResampler {
    /// Creates a resampler converting from `fs_in` to `fs_out` Hz.
    ///
    /// # Errors
    ///
    /// Returns an error if either rate is not positive.
    pub fn new(fs_in: f64, fs_out: f64) -> Result<Self, DspError> {
        if fs_in <= 0.0 || fs_out <= 0.0 {
            return Err(DspError::invalid_parameter(
                "fs_in/fs_out",
                "sampling rates must be positive",
            ));
        }
        Ok(LinearResampler {
            ratio: fs_in / fs_out,
            interpolator: Interpolator::Lagrange3,
        })
    }

    /// Selects the interpolation method (default: third-order Lagrange).
    pub fn with_interpolator(mut self, interpolator: Interpolator) -> Self {
        self.interpolator = interpolator;
        self
    }

    /// Returns the conversion ratio `fs_in / fs_out`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Resamples a whole buffer.
    pub fn resample(&self, input: &[f64]) -> Vec<f64> {
        if input.is_empty() {
            return Vec::new();
        }
        let out_len = (input.len() as f64 / self.ratio).round() as usize;
        (0..out_len)
            .map(|n| self.interpolator.interpolate(input, n as f64 * self.ratio))
            .collect()
    }
}

/// Downsamples `input` by an integer `factor` with a windowed-sinc anti-aliasing
/// low-pass filter.
///
/// # Errors
///
/// Returns an error if `factor` is zero.
pub fn decimate(input: &[f64], factor: usize, fs: f64) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidSize {
            name: "factor",
            value: 0,
            constraint: "must be at least 1",
        });
    }
    if factor == 1 {
        return Ok(input.to_vec());
    }
    let cutoff = 0.45 * fs / factor as f64;
    let taps = FirDesign::lowpass(63, cutoff, fs)?;
    let mut filter = FirFilter::new(taps)?;
    let filtered = filter.process_block(input);
    Ok(filtered.iter().step_by(factor).copied().collect())
}

/// Upsamples `input` by an integer `factor` using zero insertion followed by an
/// interpolating low-pass filter.
///
/// # Errors
///
/// Returns an error if `factor` is zero.
pub fn interpolate_by(input: &[f64], factor: usize, fs_in: f64) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidSize {
            name: "factor",
            value: 0,
            constraint: "must be at least 1",
        });
    }
    if factor == 1 {
        return Ok(input.to_vec());
    }
    let fs_out = fs_in * factor as f64;
    let mut upsampled = vec![0.0; input.len() * factor];
    for (i, &x) in input.iter().enumerate() {
        upsampled[i * factor] = x * factor as f64;
    }
    let cutoff = 0.45 * fs_in;
    let taps = FirDesign::lowpass(63, cutoff, fs_out)?;
    let mut filter = FirFilter::new(taps)?;
    Ok(filter.process_block(&upsampled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;
    use std::f64::consts::PI;

    fn dominant_frequency(x: &[f64], fs: f64) -> f64 {
        let n = x.len().next_power_of_two() / 2;
        let slice = &x[..n];
        let spec = Fft::new(n).forward_real(slice).unwrap();
        let peak = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap()
            .0;
        peak as f64 * fs / n as f64
    }

    #[test]
    fn upsampling_preserves_tone_frequency() {
        let fs_in = 8000.0;
        let f0 = 440.0;
        let x: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs_in).sin())
            .collect();
        let r = LinearResampler::new(fs_in, 16_000.0).unwrap();
        let y = r.resample(&x);
        assert_eq!(y.len(), 8000);
        let f_est = dominant_frequency(&y[1000..], 16_000.0);
        assert!((f_est - f0).abs() < 10.0, "estimated {f_est}");
    }

    #[test]
    fn identity_ratio_is_near_lossless() {
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
        let r = LinearResampler::new(16_000.0, 16_000.0).unwrap();
        let y = r.resample(&x);
        assert_eq!(y.len(), x.len());
        for (a, b) in x.iter().zip(&y).skip(4).take(200) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn decimate_reduces_length_and_keeps_low_frequencies() {
        let fs = 16_000.0;
        let f0 = 300.0;
        let x: Vec<f64> = (0..8000)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect();
        let y = decimate(&x, 2, fs).unwrap();
        assert_eq!(y.len(), 4000);
        let f_est = dominant_frequency(&y[500..], fs / 2.0);
        assert!((f_est - f0).abs() < 10.0, "estimated {f_est}");
    }

    #[test]
    fn interpolate_by_expands_length() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let y = interpolate_by(&x, 4, 4000.0).unwrap();
        assert_eq!(y.len(), 400);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LinearResampler::new(0.0, 16_000.0).is_err());
        assert!(decimate(&[1.0], 0, 8000.0).is_err());
        assert!(interpolate_by(&[1.0], 0, 8000.0).is_err());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let r = LinearResampler::new(8000.0, 16_000.0).unwrap();
        assert!(r.resample(&[]).is_empty());
    }
}
