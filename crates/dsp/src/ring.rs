//! A fixed-capacity ring buffer for streaming audio frames.

use crate::error::DspError;

/// A single-producer, single-consumer ring buffer of `f64` samples.
///
/// Used by the real-time pipeline to decouple capture (simulation) from frame-based
/// analysis.
///
/// # Example
///
/// ```
/// use ispot_dsp::ring::RingBuffer;
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let mut rb = RingBuffer::new(8)?;
/// rb.write(&[1.0, 2.0, 3.0])?;
/// let mut out = [0.0; 2];
/// rb.read(&mut out)?;
/// assert_eq!(out, [1.0, 2.0]);
/// assert_eq!(rb.available(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buffer: Vec<f64>,
    head: usize,
    tail: usize,
    full: bool,
}

impl RingBuffer {
    /// Creates a ring buffer with the given capacity in samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSize`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, DspError> {
        if capacity == 0 {
            return Err(DspError::InvalidSize {
                name: "capacity",
                value: 0,
                constraint: "must be positive",
            });
        }
        Ok(RingBuffer {
            buffer: vec![0.0; capacity],
            head: 0,
            tail: 0,
            full: false,
        })
    }

    /// Returns the total capacity.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Returns the number of samples currently stored.
    pub fn available(&self) -> usize {
        if self.full {
            self.buffer.len()
        } else if self.head >= self.tail {
            self.head - self.tail
        } else {
            self.buffer.len() - self.tail + self.head
        }
    }

    /// Returns the free space in samples.
    pub fn free(&self) -> usize {
        self.capacity() - self.available()
    }

    /// Returns true if no samples are stored.
    pub fn is_empty(&self) -> bool {
        !self.full && self.head == self.tail
    }

    /// Returns true if the buffer is full.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.head = 0;
        self.tail = 0;
        self.full = false;
    }

    /// Writes all of `data` into the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if there is not enough free space; in
    /// that case nothing is written.
    pub fn write(&mut self, data: &[f64]) -> Result<(), DspError> {
        if data.len() > self.free() {
            return Err(DspError::InsufficientData {
                required: data.len(),
                available: self.free(),
            });
        }
        for &x in data {
            self.buffer[self.head] = x;
            self.head = (self.head + 1) % self.buffer.len();
        }
        if !data.is_empty() && self.head == self.tail {
            self.full = true;
        }
        Ok(())
    }

    /// Writes every sample yielded by `iter` into the buffer.
    ///
    /// The iterator-based twin of [`RingBuffer::write`]: it lets callers stream
    /// converted or strided data (e.g. one channel of an interleaved i16 capture
    /// chunk) straight into the ring without staging it in an intermediate buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if there is not enough free space for
    /// `iter.len()` samples; in that case nothing is written.
    pub fn write_iter<I>(&mut self, iter: I) -> Result<(), DspError>
    where
        I: ExactSizeIterator<Item = f64>,
    {
        let len = iter.len();
        if len > self.free() {
            return Err(DspError::InsufficientData {
                required: len,
                available: self.free(),
            });
        }
        for x in iter {
            self.buffer[self.head] = x;
            self.head = (self.head + 1) % self.buffer.len();
        }
        if len > 0 && self.head == self.tail {
            self.full = true;
        }
        Ok(())
    }

    /// Reads exactly `out.len()` samples into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if fewer samples are available; in that
    /// case nothing is consumed.
    pub fn read(&mut self, out: &mut [f64]) -> Result<(), DspError> {
        if out.len() > self.available() {
            return Err(DspError::InsufficientData {
                required: out.len(),
                available: self.available(),
            });
        }
        for slot in out.iter_mut() {
            *slot = self.buffer[self.tail];
            self.tail = (self.tail + 1) % self.buffer.len();
        }
        if !out.is_empty() {
            self.full = false;
        }
        Ok(())
    }

    /// Copies the oldest `out.len()` samples into `out` without consuming them.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if fewer samples are available.
    pub fn peek(&self, out: &mut [f64]) -> Result<(), DspError> {
        if out.len() > self.available() {
            return Err(DspError::InsufficientData {
                required: out.len(),
                available: self.available(),
            });
        }
        let mut idx = self.tail;
        for slot in out.iter_mut() {
            *slot = self.buffer[idx];
            idx = (idx + 1) % self.buffer.len();
        }
        Ok(())
    }

    /// Grows the buffer to `new_capacity` samples, preserving the stored samples and
    /// their order. A `new_capacity` at or below the current capacity is a no-op.
    ///
    /// This is the only allocating operation on an existing ring buffer; streaming
    /// code calls it when a producer hands over a larger chunk than ever seen before,
    /// so steady-state operation stays allocation-free.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity <= self.buffer.len() {
            return;
        }
        let stored = self.available();
        let mut buffer = vec![0.0; new_capacity];
        let mut idx = self.tail;
        for slot in buffer.iter_mut().take(stored) {
            *slot = self.buffer[idx];
            idx = (idx + 1) % self.buffer.len();
        }
        self.buffer = buffer;
        self.tail = 0;
        self.head = stored;
        self.full = false;
    }

    /// Discards the oldest `count` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InsufficientData`] if fewer than `count` samples are stored.
    pub fn skip(&mut self, count: usize) -> Result<(), DspError> {
        if count > self.available() {
            return Err(DspError::InsufficientData {
                required: count,
                available: self.available(),
            });
        }
        self.tail = (self.tail + count) % self.buffer.len();
        if count > 0 {
            self.full = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_preserves_order() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0, 3.0]).unwrap();
        let mut out = [0.0; 3];
        rb.read(&mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert!(rb.is_empty());
    }

    #[test]
    fn wraparound_is_handled() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0, 3.0]).unwrap();
        let mut out = [0.0; 2];
        rb.read(&mut out).unwrap();
        rb.write(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(rb.available(), 4);
        assert!(rb.is_full());
        let mut all = [0.0; 4];
        rb.read(&mut all).unwrap();
        assert_eq!(all, [3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn overflow_and_underflow_are_rejected_without_side_effects() {
        let mut rb = RingBuffer::new(2).unwrap();
        rb.write(&[1.0]).unwrap();
        assert!(rb.write(&[2.0, 3.0]).is_err());
        assert_eq!(rb.available(), 1);
        let mut out = [0.0; 2];
        assert!(rb.read(&mut out).is_err());
        assert_eq!(rb.available(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0]).unwrap();
        let mut out = [0.0; 2];
        rb.peek(&mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
        assert_eq!(rb.available(), 2);
    }

    #[test]
    fn skip_discards_samples() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0, 3.0]).unwrap();
        rb.skip(2).unwrap();
        let mut out = [0.0; 1];
        rb.read(&mut out).unwrap();
        assert_eq!(out, [3.0]);
        assert!(rb.skip(5).is_err());
    }

    #[test]
    fn grow_preserves_contents_across_wraparound() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = [0.0; 2];
        rb.read(&mut out).unwrap();
        rb.write(&[5.0, 6.0]).unwrap(); // head has wrapped; buffer is full again
        rb.grow(8);
        assert_eq!(rb.capacity(), 8);
        assert_eq!(rb.available(), 4);
        rb.write(&[7.0, 8.0]).unwrap();
        let mut all = [0.0; 6];
        rb.read(&mut all).unwrap();
        assert_eq!(all, [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn grow_to_smaller_or_equal_capacity_is_a_noop() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0]).unwrap();
        rb.grow(3);
        rb.grow(4);
        assert_eq!(rb.capacity(), 4);
        assert_eq!(rb.available(), 2);
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(RingBuffer::new(0).is_err());
    }

    #[test]
    fn clear_empties_buffer() {
        let mut rb = RingBuffer::new(4).unwrap();
        rb.write(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(rb.is_full());
        rb.clear();
        assert!(rb.is_empty());
        assert_eq!(rb.free(), 4);
    }
}
