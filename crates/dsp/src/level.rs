//! Level, energy and SNR utilities.
//!
//! The dataset generator of Sec. IV-A mixes event and noise signals at a prescribed
//! signal-to-noise ratio in the range [−30, 0] dB; [`mix_at_snr`] implements exactly
//! that protocol.

use crate::error::DspError;

/// Converts a linear amplitude ratio to decibels (`20*log10`).
///
/// # Example
///
/// ```
/// use ispot_dsp::level::linear_to_db;
/// assert!((linear_to_db(10.0) - 20.0).abs() < 1e-12);
/// ```
pub fn linear_to_db(linear: f64) -> f64 {
    20.0 * linear.max(1e-300).log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a power ratio to decibels (`10*log10`).
pub fn power_to_db(power: f64) -> f64 {
    10.0 * power.max(1e-300).log10()
}

/// Returns the mean power (mean of squared samples) of `signal`, 0 for empty input.
pub fn signal_power(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64
}

/// Returns the root-mean-square level of `signal`.
pub fn rms(signal: &[f64]) -> f64 {
    signal_power(signal).sqrt()
}

/// Returns the peak absolute value of `signal`.
pub fn peak(signal: &[f64]) -> f64 {
    signal.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Measures the actual SNR (in dB) between a clean `signal` and a `noise` recording of
/// the same length.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if lengths differ, or
/// [`DspError::InvalidParameter`] if either input is silent.
pub fn measure_snr(signal: &[f64], noise: &[f64]) -> Result<f64, DspError> {
    if signal.len() != noise.len() {
        return Err(DspError::LengthMismatch {
            expected: signal.len(),
            actual: noise.len(),
        });
    }
    let ps = signal_power(signal);
    let pn = signal_power(noise);
    if ps <= 0.0 || pn <= 0.0 {
        return Err(DspError::invalid_parameter(
            "signal",
            "both signal and noise must be non-silent",
        ));
    }
    Ok(power_to_db(ps / pn))
}

/// Mixes `signal` with `noise` so that the resulting signal-to-noise ratio equals
/// `snr_db`, following the dataset-generation protocol of the paper (the event signal
/// keeps its level; the noise is rescaled).
///
/// The output length is the length of `signal`; `noise` is tiled or truncated as
/// needed.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if either input is silent or empty.
///
/// # Example
///
/// ```
/// use ispot_dsp::level::{measure_snr, mix_at_snr};
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let signal: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
/// let noise: Vec<f64> = (0..1000).map(|i| ((i * 37 % 100) as f64 / 50.0) - 1.0).collect();
/// let (mix, scaled_noise) = mix_at_snr(&signal, &noise, -10.0)?;
/// assert_eq!(mix.len(), signal.len());
/// let snr = measure_snr(&signal, &scaled_noise)?;
/// assert!((snr - -10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn mix_at_snr(
    signal: &[f64],
    noise: &[f64],
    snr_db: f64,
) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    if signal.is_empty() {
        return Err(DspError::invalid_parameter("signal", "must not be empty"));
    }
    if noise.is_empty() {
        return Err(DspError::invalid_parameter("noise", "must not be empty"));
    }
    let ps = signal_power(signal);
    if ps <= 0.0 {
        return Err(DspError::invalid_parameter("signal", "must not be silent"));
    }
    // Tile/truncate noise to the signal length.
    let tiled: Vec<f64> = (0..signal.len()).map(|i| noise[i % noise.len()]).collect();
    let pn = signal_power(&tiled);
    if pn <= 0.0 {
        return Err(DspError::invalid_parameter("noise", "must not be silent"));
    }
    // Desired noise power: ps / 10^(snr/10).
    let target_pn = ps / 10f64.powf(snr_db / 10.0);
    let gain = (target_pn / pn).sqrt();
    let scaled: Vec<f64> = tiled.iter().map(|x| x * gain).collect();
    let mix: Vec<f64> = signal.iter().zip(&scaled).map(|(s, n)| s + n).collect();
    Ok((mix, scaled))
}

/// Normalizes `signal` to a target peak absolute value, returning the scaled copy.
/// A silent signal is returned unchanged.
pub fn normalize_peak(signal: &[f64], target_peak: f64) -> Vec<f64> {
    let p = peak(signal);
    if p <= 0.0 {
        return signal.to_vec();
    }
    let g = target_peak / p;
    signal.iter().map(|x| x * g).collect()
}

/// Computes the short-time energy of `signal` over non-overlapping frames of
/// `frame_len` samples. The trailing partial frame is ignored.
pub fn frame_energy(signal: &[f64], frame_len: usize) -> Vec<f64> {
    if frame_len == 0 {
        return Vec::new();
    }
    signal
        .chunks_exact(frame_len)
        .map(|frame| frame.iter().map(|x| x * x).sum::<f64>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_conversions_roundtrip() {
        for v in [0.1, 1.0, 3.5, 100.0] {
            assert!((db_to_linear(linear_to_db(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn rms_of_unit_sine_is_inv_sqrt2() {
        let x: Vec<f64> = (0..10_000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        assert!((rms(&x) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn mix_at_snr_achieves_requested_snr() {
        let signal: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.07).sin()).collect();
        let noise: Vec<f64> = (0..1500)
            .map(|i| ((i * 17 % 31) as f64 / 15.0) - 1.0)
            .collect();
        for snr in [-30.0, -20.0, -10.0, 0.0, 10.0] {
            let (_, scaled) = mix_at_snr(&signal, &noise, snr).unwrap();
            let measured = measure_snr(&signal, &scaled).unwrap();
            assert!((measured - snr).abs() < 1e-9, "snr {snr}: got {measured}");
        }
    }

    #[test]
    fn mix_rejects_silent_inputs() {
        let sig = vec![0.0; 100];
        let noise = vec![1.0; 100];
        assert!(mix_at_snr(&sig, &noise, 0.0).is_err());
        assert!(mix_at_snr(&noise, &sig, 0.0).is_err());
        assert!(mix_at_snr(&[], &noise, 0.0).is_err());
    }

    #[test]
    fn measure_snr_rejects_length_mismatch() {
        assert!(measure_snr(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn normalize_peak_scales_to_target() {
        let x = vec![0.1, -0.5, 0.2];
        let y = normalize_peak(&x, 1.0);
        assert!((peak(&y) - 1.0).abs() < 1e-12);
        // Silent input is untouched.
        assert_eq!(normalize_peak(&[0.0; 4], 1.0), vec![0.0; 4]);
    }

    #[test]
    fn frame_energy_counts_full_frames_only() {
        let x = vec![1.0; 10];
        let e = frame_energy(&x, 4);
        assert_eq!(e, vec![4.0, 4.0]);
        assert!(frame_energy(&x, 0).is_empty());
    }

    #[test]
    fn peak_and_power_of_empty_signal_are_zero() {
        assert_eq!(peak(&[]), 0.0);
        assert_eq!(signal_power(&[]), 0.0);
    }
}
