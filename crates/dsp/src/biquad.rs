//! Biquad (second-order IIR) filters and standard audio designs.
//!
//! Biquads are used by the siren/horn synthesisers and by the park-mode trigger to
//! cheaply shape spectra without full FIR convolutions.

use crate::error::DspError;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Normalized biquad coefficients (`a0` already divided out).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiquadCoefficients {
    /// Feed-forward coefficient b0.
    pub b0: f64,
    /// Feed-forward coefficient b1.
    pub b1: f64,
    /// Feed-forward coefficient b2.
    pub b2: f64,
    /// Feedback coefficient a1.
    pub a1: f64,
    /// Feedback coefficient a2.
    pub a2: f64,
}

/// Standard biquad designs (RBJ audio-EQ cookbook formulas).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BiquadDesign {
    /// Low-pass with cutoff `freq_hz` and quality factor `q`.
    Lowpass {
        /// Cutoff frequency in Hz.
        freq_hz: f64,
        /// Quality factor.
        q: f64,
    },
    /// High-pass with cutoff `freq_hz` and quality factor `q`.
    Highpass {
        /// Cutoff frequency in Hz.
        freq_hz: f64,
        /// Quality factor.
        q: f64,
    },
    /// Band-pass (constant peak gain) centred on `freq_hz`.
    Bandpass {
        /// Centre frequency in Hz.
        freq_hz: f64,
        /// Quality factor.
        q: f64,
    },
    /// Notch centred on `freq_hz`.
    Notch {
        /// Centre frequency in Hz.
        freq_hz: f64,
        /// Quality factor.
        q: f64,
    },
    /// Peaking EQ centred on `freq_hz` with gain `gain_db`.
    Peak {
        /// Centre frequency in Hz.
        freq_hz: f64,
        /// Quality factor.
        q: f64,
        /// Peak gain in dB.
        gain_db: f64,
    },
}

impl BiquadDesign {
    /// Computes the normalized coefficients for sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the frequency is outside `(0, fs/2)`
    /// or `q` is not positive.
    pub fn coefficients(self, fs: f64) -> Result<BiquadCoefficients, DspError> {
        let (freq, q) = match self {
            BiquadDesign::Lowpass { freq_hz, q }
            | BiquadDesign::Highpass { freq_hz, q }
            | BiquadDesign::Bandpass { freq_hz, q }
            | BiquadDesign::Notch { freq_hz, q }
            | BiquadDesign::Peak { freq_hz, q, .. } => (freq_hz, q),
        };
        if !(freq > 0.0 && freq < fs / 2.0) {
            return Err(DspError::invalid_parameter(
                "freq_hz",
                format!("must be in (0, fs/2), got {freq}"),
            ));
        }
        if q <= 0.0 {
            return Err(DspError::invalid_parameter("q", "must be positive"));
        }
        let w0 = 2.0 * PI * freq / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let (b0, b1, b2, a0, a1, a2) = match self {
            BiquadDesign::Lowpass { .. } => {
                let b1 = 1.0 - cosw;
                (
                    b1 / 2.0,
                    b1,
                    b1 / 2.0,
                    1.0 + alpha,
                    -2.0 * cosw,
                    1.0 - alpha,
                )
            }
            BiquadDesign::Highpass { .. } => {
                let b1 = -(1.0 + cosw);
                (
                    (1.0 + cosw) / 2.0,
                    b1,
                    (1.0 + cosw) / 2.0,
                    1.0 + alpha,
                    -2.0 * cosw,
                    1.0 - alpha,
                )
            }
            BiquadDesign::Bandpass { .. } => {
                (alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * cosw, 1.0 - alpha)
            }
            BiquadDesign::Notch { .. } => {
                (1.0, -2.0 * cosw, 1.0, 1.0 + alpha, -2.0 * cosw, 1.0 - alpha)
            }
            BiquadDesign::Peak { gain_db, .. } => {
                let a = 10f64.powf(gain_db / 40.0);
                (
                    1.0 + alpha * a,
                    -2.0 * cosw,
                    1.0 - alpha * a,
                    1.0 + alpha / a,
                    -2.0 * cosw,
                    1.0 - alpha / a,
                )
            }
        };
        Ok(BiquadCoefficients {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
        })
    }
}

/// A single biquad section (transposed direct-form II).
///
/// # Example
///
/// ```
/// use ispot_dsp::biquad::{Biquad, BiquadDesign};
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let mut lp = Biquad::design(BiquadDesign::Lowpass { freq_hz: 500.0, q: 0.707 }, 16_000.0)?;
/// let out = lp.process_block(&[1.0, 0.0, 0.0]);
/// assert_eq!(out.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Biquad {
    coeffs: BiquadCoefficients,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Creates a biquad from explicit normalized coefficients.
    pub fn new(coeffs: BiquadCoefficients) -> Self {
        Biquad {
            coeffs,
            z1: 0.0,
            z2: 0.0,
        }
    }

    /// Creates a biquad from a [`BiquadDesign`] at sampling rate `fs`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`BiquadDesign::coefficients`].
    pub fn design(design: BiquadDesign, fs: f64) -> Result<Self, DspError> {
        Ok(Self::new(design.coefficients(fs)?))
    }

    /// Returns the coefficients.
    pub fn coefficients(&self) -> BiquadCoefficients {
        self.coeffs
    }

    /// Resets the state.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }

    /// Filters one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.coeffs.b0 * x + self.z1;
        self.z1 = self.coeffs.b1 * x - self.coeffs.a1 * y + self.z2;
        self.z2 = self.coeffs.b2 * x - self.coeffs.a2 * y;
        y
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Evaluates the magnitude response at `freq_hz` for sampling rate `fs`.
    pub fn magnitude_at(&self, freq_hz: f64, fs: f64) -> f64 {
        let w = 2.0 * PI * freq_hz / fs;
        let (c1, s1) = (w.cos(), w.sin());
        let (c2, s2) = ((2.0 * w).cos(), (2.0 * w).sin());
        let num_re = self.coeffs.b0 + self.coeffs.b1 * c1 + self.coeffs.b2 * c2;
        let num_im = -(self.coeffs.b1 * s1 + self.coeffs.b2 * s2);
        let den_re = 1.0 + self.coeffs.a1 * c1 + self.coeffs.a2 * c2;
        let den_im = -(self.coeffs.a1 * s1 + self.coeffs.a2 * s2);
        ((num_re * num_re + num_im * num_im) / (den_re * den_re + den_im * den_im)).sqrt()
    }
}

/// A cascade of biquad sections applied in series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Creates an empty cascade (identity filter).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section to the cascade.
    pub fn push(&mut self, section: Biquad) {
        self.sections.push(section);
    }

    /// Returns the number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Returns true if the cascade has no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Resets all sections.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Filters one sample through every section in series.
    pub fn process(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |acc, s| s.process(acc))
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }
}

impl FromIterator<Biquad> for BiquadCascade {
    fn from_iter<T: IntoIterator<Item = Biquad>>(iter: T) -> Self {
        BiquadCascade {
            sections: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_attenuates_high_frequencies() {
        let fs = 16_000.0;
        let lp = Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 500.0,
                q: 0.707,
            },
            fs,
        )
        .unwrap();
        assert!(lp.magnitude_at(50.0, fs) > 0.99);
        assert!(lp.magnitude_at(4000.0, fs) < 0.05);
    }

    #[test]
    fn highpass_attenuates_low_frequencies() {
        let fs = 16_000.0;
        let hp = Biquad::design(
            BiquadDesign::Highpass {
                freq_hz: 2000.0,
                q: 0.707,
            },
            fs,
        )
        .unwrap();
        assert!(hp.magnitude_at(100.0, fs) < 0.01);
        assert!(hp.magnitude_at(7000.0, fs) > 0.95);
    }

    #[test]
    fn notch_removes_centre_frequency() {
        let fs = 16_000.0;
        let n = Biquad::design(
            BiquadDesign::Notch {
                freq_hz: 1000.0,
                q: 5.0,
            },
            fs,
        )
        .unwrap();
        assert!(n.magnitude_at(1000.0, fs) < 1e-6);
        assert!(n.magnitude_at(100.0, fs) > 0.95);
    }

    #[test]
    fn peak_boosts_centre_frequency() {
        let fs = 16_000.0;
        let p = Biquad::design(
            BiquadDesign::Peak {
                freq_hz: 1000.0,
                q: 2.0,
                gain_db: 12.0,
            },
            fs,
        )
        .unwrap();
        let g = p.magnitude_at(1000.0, fs);
        assert!((20.0 * g.log10() - 12.0).abs() < 0.5);
    }

    #[test]
    fn time_domain_sine_attenuation_matches_frequency_response() {
        let fs = 8000.0;
        let mut lp = Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 400.0,
                q: 0.707,
            },
            fs,
        )
        .unwrap();
        let f0 = 2000.0;
        let x: Vec<f64> = (0..4000)
            .map(|n| (2.0 * PI * f0 * n as f64 / fs).sin())
            .collect();
        let y = lp.process_block(&x);
        let in_rms = (x[2000..].iter().map(|v| v * v).sum::<f64>() / 2000.0).sqrt();
        let out_rms = (y[2000..].iter().map(|v| v * v).sum::<f64>() / 2000.0).sqrt();
        let expected = lp.magnitude_at(f0, fs);
        assert!(((out_rms / in_rms) - expected).abs() < 0.01);
    }

    #[test]
    fn cascade_is_product_of_sections() {
        let fs = 16_000.0;
        let d = BiquadDesign::Lowpass {
            freq_hz: 1000.0,
            q: 0.707,
        };
        let single = Biquad::design(d, fs).unwrap();
        let cascade: BiquadCascade = (0..2).map(|_| Biquad::design(d, fs).unwrap()).collect();
        assert_eq!(cascade.len(), 2);
        let single_gain = single.magnitude_at(3000.0, fs);
        // Empirically verify by filtering a sine through the cascade.
        let mut cascade = cascade;
        let x: Vec<f64> = (0..8000)
            .map(|n| (2.0 * PI * 3000.0 * n as f64 / fs).sin())
            .collect();
        let y = cascade.process_block(&x);
        let out_rms = (y[4000..].iter().map(|v| v * v).sum::<f64>() / 4000.0).sqrt();
        let in_rms = (x[4000..].iter().map(|v| v * v).sum::<f64>() / 4000.0).sqrt();
        assert!(((out_rms / in_rms) - single_gain * single_gain).abs() < 0.01);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let fs = 8000.0;
        assert!(Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 5000.0,
                q: 0.7
            },
            fs
        )
        .is_err());
        assert!(Biquad::design(
            BiquadDesign::Lowpass {
                freq_hz: 100.0,
                q: 0.0
            },
            fs
        )
        .is_err());
    }
}
