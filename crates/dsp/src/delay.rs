//! Variable-length fractional delay lines.
//!
//! The pyroadacoustics propagation model (Fig. 2 of the paper) represents each acoustic
//! path — the direct path and the asphalt-reflected path — as a delay line whose length
//! varies sample by sample with the source–receiver distance. Reading the line at a
//! fractional position with interpolation reproduces the Doppler effect exactly
//! (Smith, *Physical Audio Signal Processing*, 2010).

use crate::error::DspError;
use crate::interp::Interpolator;

/// Re-export of [`Interpolator`] under the name used by the delay-line API.
pub use crate::interp::Interpolator as InterpolationKind;

/// A circular-buffer delay line supporting fractional, time-varying delays.
///
/// # Example
///
/// ```
/// use ispot_dsp::delay::{DelayLine, InterpolationKind};
///
/// # fn main() -> Result<(), ispot_dsp::DspError> {
/// let mut line = DelayLine::new(64, InterpolationKind::Linear)?;
/// // Push an impulse and read it back 10.5 samples later.
/// let mut out = Vec::new();
/// for n in 0..20 {
///     let x = if n == 0 { 1.0 } else { 0.0 };
///     out.push(line.process(x, 10.5)?);
/// }
/// // With linear interpolation the impulse is split between samples 10 and 11.
/// assert!((out[10] - 0.5).abs() < 1e-12);
/// assert!((out[11] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine {
    buffer: Vec<f64>,
    write_index: usize,
    interpolation: Interpolator,
    samples_written: u64,
}

impl DelayLine {
    /// Creates a delay line able to hold delays up to `max_delay` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSize`] if `max_delay` is zero.
    pub fn new(max_delay: usize, interpolation: Interpolator) -> Result<Self, DspError> {
        if max_delay == 0 {
            return Err(DspError::InvalidSize {
                name: "max_delay",
                value: 0,
                constraint: "must be at least 1 sample",
            });
        }
        // Extra headroom for the interpolator support on both sides.
        let capacity = max_delay + 2 * interpolation.support() + 2;
        Ok(DelayLine {
            buffer: vec![0.0; capacity],
            write_index: 0,
            interpolation,
            samples_written: 0,
        })
    }

    /// Returns the maximum delay (in samples) this line supports.
    pub fn max_delay(&self) -> usize {
        self.buffer.len() - 2 * self.interpolation.support() - 2
    }

    /// Returns the interpolation method used for fractional reads.
    pub fn interpolation(&self) -> Interpolator {
        self.interpolation
    }

    /// Returns the total number of samples pushed so far.
    pub fn samples_written(&self) -> u64 {
        self.samples_written
    }

    /// Clears the line, resetting its contents to silence.
    pub fn reset(&mut self) {
        self.buffer.fill(0.0);
        self.write_index = 0;
        self.samples_written = 0;
    }

    /// Pushes one input sample into the line.
    pub fn push(&mut self, sample: f64) {
        self.buffer[self.write_index] = sample;
        self.write_index = (self.write_index + 1) % self.buffer.len();
        self.samples_written += 1;
    }

    /// Reads the line output at `delay` samples (possibly fractional) behind the most
    /// recently written sample.
    ///
    /// A delay of `0.0` returns the most recent sample, `1.0` the one before it, and so
    /// on. Samples that were never written read as silence.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `delay` is negative, not finite, or
    /// larger than [`DelayLine::max_delay`].
    pub fn read(&self, delay: f64) -> Result<f64, DspError> {
        if !delay.is_finite() || delay < 0.0 {
            return Err(DspError::invalid_parameter(
                "delay",
                format!("must be finite and non-negative, got {delay}"),
            ));
        }
        if delay > self.max_delay() as f64 {
            return Err(DspError::invalid_parameter(
                "delay",
                format!(
                    "must not exceed max_delay ({}), got {delay}",
                    self.max_delay()
                ),
            ));
        }
        let n = self.buffer.len() as isize;
        // Most recent sample sits at write_index - 1.
        let newest = self.write_index as f64 - 1.0;
        let read_pos = newest - delay;
        let support = self.interpolation.support() as isize;
        let base = read_pos.floor() as isize;
        let frac = read_pos - base as f64;
        // Gather the neighbourhood needed by the interpolator into a contiguous window.
        let mut window = [0.0f64; 16];
        let lo = base - support;
        let hi = base + support + 1;
        let len = (hi - lo) as usize;
        for (k, slot) in window.iter_mut().enumerate().take(len) {
            let idx = lo + k as isize;
            // Samples older than what has been written are silence.
            let age = (self.write_index as isize - 1 - idx).rem_euclid(n);
            let value = if (age as u64) < self.samples_written {
                let wrapped = idx.rem_euclid(n) as usize;
                self.buffer[wrapped]
            } else {
                0.0
            };
            *slot = value;
        }
        let local_pos = support as f64 + frac;
        Ok(self.interpolation.interpolate(&window[..len], local_pos))
    }

    /// Pushes `input` and immediately reads the output at `delay` samples — the common
    /// per-sample operation of a propagation path.
    ///
    /// # Errors
    ///
    /// Same as [`DelayLine::read`].
    pub fn process(&mut self, input: f64, delay: f64) -> Result<f64, DspError> {
        self.push(input);
        self.read(delay)
    }

    /// Processes a whole block with a per-sample delay trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `input` and `delays` differ in length,
    /// or any error from [`DelayLine::read`].
    pub fn process_block(&mut self, input: &[f64], delays: &[f64]) -> Result<Vec<f64>, DspError> {
        if input.len() != delays.len() {
            return Err(DspError::LengthMismatch {
                expected: input.len(),
                actual: delays.len(),
            });
        }
        input
            .iter()
            .zip(delays)
            .map(|(&x, &d)| self.process(x, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_delay_shifts_impulse() {
        let mut line = DelayLine::new(32, Interpolator::Linear).unwrap();
        let mut out = Vec::new();
        for n in 0..16 {
            let x = if n == 0 { 1.0 } else { 0.0 };
            out.push(line.process(x, 5.0).unwrap());
        }
        for (n, &y) in out.iter().enumerate() {
            let expected = if n == 5 { 1.0 } else { 0.0 };
            assert!((y - expected).abs() < 1e-12, "sample {n}: {y}");
        }
    }

    #[test]
    fn fractional_delay_splits_energy_linearly() {
        let mut line = DelayLine::new(32, Interpolator::Linear).unwrap();
        let mut out = Vec::new();
        for n in 0..16 {
            let x = if n == 0 { 1.0 } else { 0.0 };
            out.push(line.process(x, 3.25).unwrap());
        }
        assert!((out[3] - 0.75).abs() < 1e-12);
        assert!((out[4] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_returns_current_sample() {
        let mut line = DelayLine::new(8, Interpolator::Nearest).unwrap();
        for v in [0.3, -0.2, 0.9] {
            assert_eq!(line.process(v, 0.0).unwrap(), v);
        }
    }

    #[test]
    fn unwritten_history_reads_as_silence() {
        let mut line = DelayLine::new(16, Interpolator::Linear).unwrap();
        assert_eq!(line.process(1.0, 10.0).unwrap(), 0.0);
    }

    #[test]
    fn negative_or_excessive_delay_is_rejected() {
        let mut line = DelayLine::new(4, Interpolator::Linear).unwrap();
        line.push(1.0);
        assert!(line.read(-1.0).is_err());
        assert!(line.read(100.0).is_err());
        assert!(line.read(f64::NAN).is_err());
        assert!(line.process(0.0, 2.0).is_ok());
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(DelayLine::new(0, Interpolator::Linear).is_err());
    }

    #[test]
    fn varying_delay_produces_doppler_like_resampling() {
        // Feed a sine and shrink the delay linearly: the output frequency must rise.
        let fs = 8000.0;
        let f0 = 400.0;
        let n = 4000;
        let mut line = DelayLine::new(600, Interpolator::Lagrange3).unwrap();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let x = (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin();
            // Delay shrinks from 500 to 100 samples over the block.
            let d = 500.0 - 400.0 * i as f64 / n as f64;
            out.push(line.process(x, d).unwrap());
        }
        // Estimate output frequency by zero-crossing counting over the second half
        // (after the initial silence has flushed through).
        let seg = &out[n / 2..];
        let mut crossings = 0;
        for w in seg.windows(2) {
            if w[0] <= 0.0 && w[1] > 0.0 {
                crossings += 1;
            }
        }
        let est_freq = crossings as f64 * fs / seg.len() as f64;
        // delay rate = -400 samples / 4000 samples = -0.1 => frequency scaled by 1.1.
        assert!(
            (est_freq - f0 * 1.1).abs() < 15.0,
            "estimated {est_freq}, expected ~{}",
            f0 * 1.1
        );
    }

    #[test]
    fn process_block_matches_sample_wise_processing() {
        let input: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).sin()).collect();
        let delays: Vec<f64> = (0..64).map(|i| 3.0 + 0.01 * i as f64).collect();
        let mut a = DelayLine::new(32, Interpolator::Lagrange3).unwrap();
        let mut b = a.clone();
        let block = a.process_block(&input, &delays).unwrap();
        let manual: Vec<f64> = input
            .iter()
            .zip(&delays)
            .map(|(&x, &d)| b.process(x, d).unwrap())
            .collect();
        assert_eq!(block, manual);
    }

    #[test]
    fn reset_clears_history() {
        let mut line = DelayLine::new(8, Interpolator::Linear).unwrap();
        for _ in 0..8 {
            line.push(1.0);
        }
        line.reset();
        assert_eq!(line.samples_written(), 0);
        line.push(0.0);
        assert_eq!(line.read(4.0).unwrap(), 0.0);
    }
}
