//! Portable fixed-width SIMD lane types for the per-frame hot paths.
//!
//! The workspace vendors all dependencies, so no SIMD crate is available; instead
//! this module provides `f32xN`-style structs over plain arrays, written so LLVM
//! reliably autovectorizes them: fixed-width lanes, no bounds checks inside the
//! lane loops (inputs come from `chunks_exact`/`try_into`), and independent
//! accumulators so reductions do not serialize on one register.
//!
//! # Fused multiply-add and runtime dispatch
//!
//! `f32::mul_add` only compiles to a hardware FMA when the target enables the
//! `fma` feature — on the default `x86_64` baseline it lowers to a **libm call**,
//! which is catastrophically slow in a kernel (measured ~40× slower than the
//! plain `a * b + c` form on the lag-synthesis kernel). The kernels here are
//! therefore generic over `const FMA: bool`: callers compile two copies, one
//! plain (`a * b + c`, autovectorized with the baseline feature set) and one
//! fused, and select the fused copy at runtime from inside a
//! `#[target_feature(enable = "avx2", enable = "fma")]` wrapper when
//! [`fma_available`] reports support. See `ispot_ssl::srp_kernels` for the
//! dispatch pattern.

/// Eight `f32` lanes, the width of one AVX2 register (two SSE registers).
///
/// # Example
///
/// ```
/// use ispot_dsp::simd::F32x8;
///
/// let a = F32x8::splat(2.0);
/// let b = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
/// // Without hardware FMA (`false`), multiply-add is the unfused `a * b + c`.
/// let acc = a.mul_add::<false>(b, F32x8::zero());
/// assert_eq!(acc.sum(), 2.0 * (1.0 + 2.0 + 3.0 + 4.0 + 5.0 + 6.0 + 7.0 + 8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        F32x8([0.0; 8])
    }

    /// Broadcasts `v` to every lane.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        F32x8([v; 8])
    }

    /// Loads the first eight values of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than eight elements.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        // analyze: allow(expect) — statically infallible: the `[..8]` slice above
        // either panics per the documented contract or yields exactly 8 lanes
        F32x8(s[..8].try_into().expect("slice of at least 8 lanes"))
    }

    /// Stores the lanes into the first eight slots of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` has fewer than eight elements.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        out[..8].copy_from_slice(&self.0);
    }

    /// Lane-wise multiply-add: `self * b + acc`.
    ///
    /// With `FMA = true` each lane uses [`f32::mul_add`], which the caller must
    /// only reach from a `#[target_feature(enable = "fma")]` context (otherwise
    /// it lowers to a libm call); with `FMA = false` it is the unfused
    /// `self * b + acc`, which LLVM vectorizes on any baseline.
    #[inline(always)]
    pub fn mul_add<const FMA: bool>(self, b: Self, acc: Self) -> Self {
        let mut out = [0.0f32; 8];
        for (l, o) in out.iter_mut().enumerate() {
            *o = if FMA {
                self.0[l].mul_add(b.0[l], acc.0[l])
            } else {
                self.0[l] * b.0[l] + acc.0[l]
            };
        }
        F32x8(out)
    }

    /// Horizontal sum of all lanes, tree-ordered so the result is independent of
    /// how many accumulators the caller split a reduction across.
    #[inline(always)]
    pub fn sum(self) -> f32 {
        let a = self.0;
        ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]))
    }
}

/// Lane-wise addition.
impl std::ops::Add for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o += r;
        }
        F32x8(out)
    }
}

/// Lane-wise multiplication.
impl std::ops::Mul for F32x8 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o *= r;
        }
        F32x8(out)
    }
}

/// Two dot products over the same index range in one pass:
/// `(Σ a[i]·x[i], Σ b[i]·y[i])`.
///
/// This is the reduction shape of the lag-domain synthesis kernel (cosine row ×
/// spectrum real part, sine row × spectrum imaginary part); fusing the two keeps
/// four independent 8-lane accumulators in flight, which is enough to hide FMA
/// latency on one stream.
///
/// All four slices are truncated to the shortest length.
#[inline(always)]
pub fn paired_dot<const FMA: bool>(a: &[f32], x: &[f32], b: &[f32], y: &[f32]) -> (f32, f32) {
    let n = a.len().min(x.len()).min(b.len()).min(y.len());
    let (a, x, b, y) = (&a[..n], &x[..n], &b[..n], &y[..n]);
    let mut acc0 = F32x8::zero();
    let mut acc1 = F32x8::zero();
    let mut acc2 = F32x8::zero();
    let mut acc3 = F32x8::zero();
    let mut a_it = a.chunks_exact(16);
    let mut x_it = x.chunks_exact(16);
    let mut b_it = b.chunks_exact(16);
    let mut y_it = y.chunks_exact(16);
    for (((ca, cx), cb), cy) in (&mut a_it).zip(&mut x_it).zip(&mut b_it).zip(&mut y_it) {
        acc0 = F32x8::load(&ca[..8]).mul_add::<FMA>(F32x8::load(&cx[..8]), acc0);
        acc1 = F32x8::load(&cb[..8]).mul_add::<FMA>(F32x8::load(&cy[..8]), acc1);
        acc2 = F32x8::load(&ca[8..]).mul_add::<FMA>(F32x8::load(&cx[8..]), acc2);
        acc3 = F32x8::load(&cb[8..]).mul_add::<FMA>(F32x8::load(&cy[8..]), acc3);
    }
    // The horizontal sums MUST come after the remainder loop: reducing the wide
    // accumulators to scalars first and then mutating those scalars makes LLVM
    // demote the whole main loop to 128-bit lanes with per-iteration register
    // spills (measured ~4.5× slower on the lag-synthesis GEMM). Keeping the
    // accumulators opaque until the very end preserves clean 256-bit codegen.
    let mut ta = 0.0f32;
    let mut tb = 0.0f32;
    for (((ca, cx), cb), cy) in a_it
        .remainder()
        .iter()
        .zip(x_it.remainder())
        .zip(b_it.remainder())
        .zip(y_it.remainder())
    {
        ta += ca * cx;
        tb += cb * cy;
    }
    ((acc0 + acc2).sum() + ta, (acc1 + acc3).sum() + tb)
}

/// AVX2 + FMA implementation of [`paired_dot`], its vector shape pinned by
/// explicit `core::arch` intrinsics.
///
/// The portable [`paired_dot`] is written over [`F32x8`] lane arrays and relies
/// on LLVM re-vectorizing the lane loops. That produces clean 256-bit code in
/// some inlining contexts but is fragile: in several measured callers LLVM
/// demoted the identical loop to 128-bit halves with per-iteration accumulator
/// spills — a ~4× slowdown on the lag-synthesis GEMM. Intrinsics make the
/// 256-bit FMA shape unconditional, so dispatch paths should prefer this copy.
///
/// Both copies reduce through the same tree order ([`F32x8::sum`]), so they
/// agree to rounding (fused vs. unfused differences only).
///
/// Calling this from a context that already enables `avx2` and `fma` (for
/// example a `#[target_feature]` kernel wrapper, as in `ispot_ssl`'s SRP
/// kernels) is safe and inlines; from any other context the call requires
/// `unsafe`.
///
/// # Safety
///
/// The caller must guarantee the host supports the `avx2` and `fma` instruction
/// sets, i.e. that [`fma_available`] returned `true`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
pub fn paired_dot_fma(a: &[f32], x: &[f32], b: &[f32], y: &[f32]) -> (f32, f32) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };

    let n = a.len().min(x.len()).min(b.len()).min(y.len());
    let (a, x, b, y) = (&a[..n], &x[..n], &b[..n], &y[..n]);
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut k = 0usize;
    while k + 16 <= n {
        // SAFETY: `k + 16 <= n` keeps every eight-lane load inside the slices.
        unsafe {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(k)),
                _mm256_loadu_ps(x.as_ptr().add(k)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(b.as_ptr().add(k)),
                _mm256_loadu_ps(y.as_ptr().add(k)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(k + 8)),
                _mm256_loadu_ps(x.as_ptr().add(k + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(b.as_ptr().add(k + 8)),
                _mm256_loadu_ps(y.as_ptr().add(k + 8)),
                acc3,
            );
        }
        k += 16;
    }
    let mut ta = 0.0f32;
    let mut tb = 0.0f32;
    for i in k..n {
        ta += a[i] * x[i];
        tb += b[i] * y[i];
    }
    let mut lanes_a = [0.0f32; 8];
    let mut lanes_b = [0.0f32; 8];
    // SAFETY: the destinations are eight-element arrays.
    unsafe {
        _mm256_storeu_ps(lanes_a.as_mut_ptr(), _mm256_add_ps(acc0, acc2));
        _mm256_storeu_ps(lanes_b.as_mut_ptr(), _mm256_add_ps(acc1, acc3));
    }
    (F32x8(lanes_a).sum() + ta, F32x8(lanes_b).sum() + tb)
}

/// Returns true when the host supports the `avx2` + `fma` instruction sets, i.e.
/// when a `#[target_feature(enable = "avx2", enable = "fma")]` kernel copy may be
/// called. Always false on non-x86 targets, where the portable copy is used.
pub fn fma_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_dot(a: &[f32], x: &[f32]) -> f64 {
        a.iter()
            .zip(x)
            .map(|(&a, &x)| a as f64 * x as f64)
            .sum::<f64>()
    }

    #[test]
    fn lane_ops_match_scalar() {
        let a = F32x8::load(&[1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        let b = F32x8::splat(0.5);
        assert_eq!((a + b).0[1], -1.5);
        assert_eq!((a * b).0[2], 1.5);
        let acc = a.mul_add::<false>(b, F32x8::splat(1.0));
        assert_eq!(acc.0[0], 1.5);
        let mut out = [0.0f32; 8];
        a.store(&mut out);
        assert_eq!(out, a.0);
        // sum(1..=8 with alternating signs) = -4, independent of lane order.
        assert_eq!(a.sum(), -4.0);
    }

    #[test]
    fn paired_dot_matches_reference_for_all_tail_lengths() {
        // Cover multiples of 16 plus every remainder class.
        for n in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 160, 173] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 1e-3).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32).sqrt()).collect();
            let (sa, sb) = paired_dot::<false>(&a, &x, &b, &y);
            let tol = 1e-4 * (n as f64 + 1.0);
            assert!((sa as f64 - reference_dot(&a, &x)).abs() < tol, "n={n}");
            assert!((sb as f64 - reference_dot(&b, &y)).abs() < tol, "n={n}");
        }
    }

    #[test]
    fn paired_dot_truncates_to_shortest_input() {
        let a = [1.0f32; 20];
        let x = [2.0f32; 17];
        let b = [1.0f32; 20];
        let y = [3.0f32; 20];
        let (sa, sb) = paired_dot::<false>(&a, &x, &b, &y);
        assert_eq!(sa, 34.0);
        assert_eq!(sb, 51.0);
    }

    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[test]
    fn intrinsic_copy_matches_portable_copy() {
        if !fma_available() {
            return;
        }
        for n in [0usize, 1, 15, 16, 17, 31, 32, 173] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.29).sin()).collect();
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).cos()).collect();
            let b: Vec<f32> = (0..n).map(|i| 0.5 - i as f32 * 2e-3).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).sin()).collect();
            let (pa, pb) = paired_dot::<false>(&a, &x, &b, &y);
            // SAFETY: guarded by `fma_available()` above.
            let (fa, fb) = unsafe { paired_dot_fma(&a, &x, &b, &y) };
            let tol = 1e-4 * (n as f32 + 1.0);
            assert!((pa - fa).abs() < tol, "n={n}: {pa} vs {fa}");
            assert!((pb - fb).abs() < tol, "n={n}: {pb} vs {fb}");
        }
    }

    #[test]
    fn fma_detection_is_consistent() {
        // Smoke: must not panic, and both kernel copies must agree numerically.
        let available = fma_available();
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.01).collect();
        let (plain, _) = paired_dot::<false>(&a, &a, &a, &a);
        let (fused, _) = paired_dot::<true>(&a, &a, &a, &a);
        assert!(
            (plain - fused).abs() < 1e-3,
            "plain {plain} vs fused {fused} (fma_available = {available})"
        );
    }
}
