//! The workspace self-scan: the analyzer applied to the tree it ships in.
//!
//! This is the test-suite twin of the `cargo run -p ispot-analyze` CI gate: it
//! asserts that the workspace holds zero unjustified violations and that every
//! `unsafe` site — in particular all of `dsp` and `ssl`, where the SIMD
//! kernels live — carries a `// SAFETY:` justification.

use ispot_analyze::{workspace_root, Analyzer, Manifest};

#[test]
fn workspace_has_zero_unjustified_violations() {
    let analysis = Analyzer::new(Manifest::workspace())
        .analyze_tree(&workspace_root())
        .expect("workspace tree must be readable");
    assert!(
        analysis.violations.is_empty(),
        "workspace invariant violations:\n{}",
        ispot_analyze::report::render_violations(&analysis.violations)
    );
    // Sanity: the scan actually covered the tree (9 crates + umbrella +
    // vendor stand-ins), not an empty directory.
    assert!(
        analysis.files_scanned > 100,
        "only {} files scanned — walker broken?",
        analysis.files_scanned
    );
}

#[test]
fn every_unsafe_site_in_dsp_and_ssl_is_documented() {
    let analysis = Analyzer::new(Manifest::workspace())
        .analyze_tree(&workspace_root())
        .expect("workspace tree must be readable");
    let dsp_ssl: Vec<_> = analysis
        .unsafe_inventory
        .iter()
        .filter(|e| e.file.starts_with("crates/dsp/") || e.file.starts_with("crates/ssl/"))
        .collect();
    assert!(
        !dsp_ssl.is_empty(),
        "the SIMD kernels hold unsafe code; an empty inventory means the scan missed them"
    );
    for entry in &dsp_ssl {
        assert!(
            entry.site.covered(),
            "{}:{} unsafe {} lacks a SAFETY comment",
            entry.file,
            entry.site.line,
            entry.site.kind.label()
        );
    }
    // And nothing outside dsp/ssl is undocumented either.
    for entry in &analysis.unsafe_inventory {
        assert!(
            entry.site.covered(),
            "{}:{} unsafe {} lacks a SAFETY comment",
            entry.file,
            entry.site.line,
            entry.site.kind.label()
        );
    }
}

#[test]
fn unsafe_code_stays_confined_to_dsp_and_ssl() {
    let analysis = Analyzer::new(Manifest::workspace())
        .analyze_tree(&workspace_root())
        .expect("workspace tree must be readable");
    for entry in &analysis.unsafe_inventory {
        let allowed = entry.file.starts_with("crates/dsp/")
            || entry.file.starts_with("crates/ssl/")
            || entry.file.starts_with("crates/core/tests/")
            || entry.file.starts_with("crates/serve/tests/");
        assert!(
            allowed,
            "{}:{} introduces unsafe outside the audited crates (dsp, ssl, and the \
             counting-allocator test harnesses); extend the audit deliberately if this is intended",
            entry.file, entry.site.line
        );
    }
}
