//! Fixture: a file that satisfies every invariant in fixture mode (all
//! functions hot). Never compiled — parsed by the analyzer's tests only.

/// A hot function that works entirely in preallocated storage.
pub fn hot_sum(input: &[f64], out: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for (o, &x) in out.iter_mut().zip(input) {
        *o = x * 2.0;
        acc += x;
    }
    acc
}

/// Errors are returned, not panicked, and messages are static.
pub fn checked_get(data: &[f64], idx: usize) -> Result<f64, &'static str> {
    match data.get(idx) {
        Some(&v) => Ok(v),
        None => Err("index out of range"),
    }
}

/// A justified waiver: the rule fires but the inline allow covers it.
pub fn bounded_pop(stack: &mut Vec<u8>) -> u8 {
    if stack.is_empty() {
        return 0;
    }
    // analyze: allow(unwrap) — statically infallible: emptiness checked above
    stack.pop().unwrap()
}

/// Strings and comments that merely *mention* banned constructs are fine:
/// panic!, unwrap(), vec![1], format!("x"), Box::new, String::from.
pub fn mentions() -> &'static str {
    "panic! unwrap() vec![collect] format! Box::new String::from HashMap mul_add"
}

/// An unsafe block with its adjacent justification.
pub fn documented_unsafe(v: &[f32]) -> f32 {
    if v.is_empty() {
        0.0
    } else {
        // SAFETY: the pointer read stays inside `v` — the emptiness check
        // directly above guarantees at least one element.
        unsafe { *v.as_ptr() }
    }
}

/// The dispatched-wrapper call shape: a const-generic turbofish marks the
/// `ispot_dsp::simd` wrapper, not the bare float method.
pub fn wrapper_mul_add(w: F32x8, t: F32x8, acc: F32x8) -> F32x8 {
    w.mul_add::<false>(t, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_allocate_and_unwrap_freely() {
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut out = vec![0.0; 8];
        assert!(hot_sum(&v, &mut out) > 0.0);
        assert_eq!(checked_get(&v, 0).unwrap(), 0.0);
        let msg = format!("{:?}", v.to_vec());
        assert!(!msg.is_empty());
    }
}
