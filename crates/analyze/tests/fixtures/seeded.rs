//! Fixture: seeded violations, one (or more) per rule. The fixture tests — and
//! the CI step proving the gate actually fails — assert the exact set of
//! (rule, line) pairs below. Never compiled.
//!
//! KEEP LINE NUMBERS STABLE or update `crates/analyze/tests/fixtures.rs`.

pub fn hot_panics(x: usize) -> usize {
    if x == 0 {
        panic!("zero"); // line 9: panic
    }
    x - 1
}

pub fn hot_unwraps(v: &[f64]) -> f64 {
    *v.first().unwrap() // line 15: unwrap
}

pub fn hot_expects(v: &[f64]) -> f64 {
    *v.last().expect("non-empty") // line 19: expect
}

pub fn hot_allocates(n: usize) -> usize {
    let v = vec![0u8; n]; // line 23: alloc (vec!)
    let w = v.to_vec(); // line 24: alloc (to_vec)
    let s: Vec<usize> = (0..n).collect(); // line 25: alloc (collect)
    let msg = format!("{n}"); // line 26: alloc (format!)
    let b = Box::new(n); // line 27: alloc (Box::new)
    let t = String::from("x"); // line 28: alloc (String::from)
    v.len() + w.len() + s.len() + msg.len() + *b + t.len()
}

pub fn bare_mul_add(x: f64) -> f64 {
    x.mul_add(2.0, 1.0) // line 33: mul_add (no turbofish = bare float method)
}

pub fn nondeterministic_scoring(scores: &HashMap<u32, f64>) -> f64 {
    // line 36: hash_map (iteration order feeds pinned numbers)
    scores.values().sum()
}

pub fn undocumented_unsafe(v: &[f32]) -> f32 {
    unsafe { *v.as_ptr() } // line 42: unsafe_no_safety
}

pub fn unjustified_waiver(v: &[f64]) -> f64 {
    // analyze: allow(unwrap)
    *v.first().unwrap() // line 47: unwrap still fires; line 46: bad_allow
}
