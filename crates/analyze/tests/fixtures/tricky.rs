//! Fixture: lexing traps. Every banned construct below is hidden where the
//! lexer must not see it — raw strings, nested block comments, char literals,
//! `#[cfg(test)]` regions — so fixture-mode analysis must report exactly ONE
//! violation: the real `.unwrap()` in `actually_hot` (line 55). Never compiled.

/// Raw strings with hashes: the terminator is the matching `"##`, nothing
/// inside counts as code.
pub fn raw_strings() -> &'static str {
    r##"panic!("boom") .unwrap() vec![1, 2] "# still inside "##
}

/// Byte and escaped strings.
pub fn byte_strings() -> (&'static [u8], &'static str) {
    (b"panic!()", "escaped quote \" then .expect(\"x\")")
}

/* Nested /* block /* comments */ hide */ panic!() and friends. */

/// Char literals and lifetimes must not desynchronise the lexer; if they did,
/// the `.unwrap()` below in `actually_hot` would be missed or misattributed.
pub fn chars<'a>(s: &'a str) -> (char, char, &'a str) {
    let quote = '\'';
    let newline = '\n';
    (quote, newline, s)
}

/// A macro body is still code: banned calls inside it are caught — but this
/// one is waived with a justification.
macro_rules! in_macro {
    ($v:expr) => {
        // analyze: allow(unwrap) — fixture: macro bodies are scanned, waiver works
        $v.first().unwrap()
    };
}

#[cfg(test)]
mod tests {
    // Test regions may do anything: none of these fire in fixture mode.
    #[test]
    fn test_code_is_exempt() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(*v.first().unwrap(), 0);
        let s = format!("{v:?}");
        assert!(!s.is_empty());
    }
}

#[cfg(not(test))]
pub fn not_test_is_live() -> usize {
    // This region is live code (cfg(not(test))): keep it clean.
    0
}

pub fn actually_hot(v: &[f64]) -> f64 {
    *v.first().unwrap() // the one real violation in this file
}
