//! Fixture-based accept/reject tests for the analyzer.
//!
//! The fixture files under `tests/fixtures/` are never compiled — they are
//! parsed by the analyzer in fixture mode (every function hot, every file
//! determinism- and ordering-scoped) and the expected violation sets are
//! asserted exactly, lines included, so a lexer regression cannot silently
//! shift what the gate catches.

use ispot_analyze::{Analyzer, Manifest, Rule};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn analyze(name: &str) -> ispot_analyze::Analysis {
    Analyzer::new(Manifest::all_hot()).analyze_source(name, &fixture(name))
}

#[test]
fn clean_fixture_is_accepted() {
    let analysis = analyze("clean.rs");
    assert!(
        analysis.violations.is_empty(),
        "clean fixture must pass, got: {:#?}",
        analysis.violations
    );
    // Its one unsafe block is documented and inventoried.
    assert_eq!(analysis.unsafe_inventory.len(), 1);
    assert!(analysis.unsafe_inventory[0].site.covered());
}

#[test]
fn seeded_fixture_trips_every_rule_at_the_expected_lines() {
    let analysis = analyze("seeded.rs");
    let got: Vec<(&str, u32)> = analysis
        .violations
        .iter()
        .map(|v| (v.rule.name(), v.line))
        .collect();
    let expected: Vec<(&str, u32)> = vec![
        ("panic", 9),
        ("unwrap", 15),
        ("expect", 19),
        ("alloc", 23),
        ("alloc", 24),
        ("alloc", 25),
        ("alloc", 26),
        ("alloc", 27),
        ("alloc", 28),
        ("mul_add", 33),
        ("hash_map", 36),
        ("unsafe_no_safety", 42),
        ("bad_allow", 46),
        ("unwrap", 47),
    ];
    assert_eq!(got, expected, "violations: {:#?}", analysis.violations);
    // Every rule family is represented.
    for rule in [
        Rule::Panic,
        Rule::Unwrap,
        Rule::Expect,
        Rule::Alloc,
        Rule::MulAdd,
        Rule::HashMap,
        Rule::UnsafeNoSafety,
        Rule::BadAllow,
    ] {
        assert!(
            analysis.violations.iter().any(|v| v.rule == rule),
            "rule {} not exercised by the seeded fixture",
            rule.name()
        );
    }
}

#[test]
fn seeded_violations_carry_their_enclosing_function() {
    let analysis = analyze("seeded.rs");
    let by_fn = |name: &str| {
        analysis
            .violations
            .iter()
            .filter(|v| v.function.as_deref() == Some(name))
            .count()
    };
    assert_eq!(by_fn("hot_panics"), 1);
    assert_eq!(by_fn("hot_allocates"), 6);
    assert_eq!(by_fn("bare_mul_add"), 1);
}

#[test]
fn tricky_fixture_defeats_the_lexing_traps() {
    let analysis = analyze("tricky.rs");
    let got: Vec<(&str, u32, Option<&str>)> = analysis
        .violations
        .iter()
        .map(|v| (v.rule.name(), v.line, v.function.as_deref()))
        .collect();
    assert_eq!(
        got,
        vec![("unwrap", 55, Some("actually_hot"))],
        "exactly the one real violation must survive the traps: {:#?}",
        analysis.violations
    );
}

#[test]
fn workspace_manifest_scopes_rules_to_listed_functions() {
    let analyzer = Analyzer::new(Manifest::workspace());
    // `make_scratch` is not in the hot list for srp_fast.rs: allocation fine.
    let cold = "impl X { pub fn make_scratch(&self) -> Vec<f64> { vec![0.0; 4] } }";
    assert!(analyzer
        .analyze_source("crates/ssl/src/srp_fast.rs", cold)
        .violations
        .is_empty());
    // `compute_map_into` is listed: the same allocation is denied.
    let hot = "impl X { pub fn compute_map_into(&self) -> Vec<f64> { vec![0.0; 4] } }";
    let v = analyzer
        .analyze_source("crates/ssl/src/srp_fast.rs", hot)
        .violations;
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, Rule::Alloc);
    // An unlisted file sees no hot-path rules at all.
    assert!(analyzer
        .analyze_source("crates/sed/src/detector.rs", hot)
        .violations
        .is_empty());
}

#[test]
fn unsafe_inventory_json_round_trips_the_seeded_site() {
    let analysis = analyze("seeded.rs");
    let json = ispot_analyze::report::unsafe_inventory_json(&analysis.unsafe_inventory);
    assert!(json.contains("\"total_sites\": 1"));
    assert!(json.contains("\"covered_sites\": 0"));
    assert!(json.contains("\"justification\": null"));
    assert!(json.contains("seeded.rs"));
}
