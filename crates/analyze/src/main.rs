//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p ispot-analyze --release                     # gate the workspace
//! cargo run -p ispot-analyze --release -- --fixture-mode \
//!     crates/analyze/tests/fixtures/seeded.rs              # must exit non-zero
//! ```
//!
//! With no path arguments the whole workspace is scanned under the
//! [`Manifest::workspace`] rule scoping and the unsafe inventory is written to
//! `ANALYZE_unsafe.json` at the workspace root. With explicit paths only those
//! files/directories are scanned and no inventory is written unless `--json`
//! names a destination. `--fixture-mode` treats every scanned file as
//! hot-path/determinism-scoped, which is how the seeded-violation fixtures
//! exercise every rule.
//!
//! Exit status: 0 when clean, 1 when any violation (including an undocumented
//! `unsafe`) was found, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use ispot_analyze::report::{render_violations, unsafe_inventory_json};
use ispot_analyze::{workspace_root, Analysis, Analyzer, Manifest};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    fixture_mode: bool,
    json_out: Option<PathBuf>,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        fixture_mode: false,
        json_out: None,
        quiet: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fixture-mode" => opts.fixture_mode = true,
            "--quiet" => opts.quiet = true,
            "--json" => {
                let path = args.next().ok_or("--json requires a path")?;
                opts.json_out = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ispot-analyze [--fixture-mode] [--quiet] [--json <path>] \
                            [paths...]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let manifest = if opts.fixture_mode {
        Manifest::all_hot()
    } else {
        Manifest::workspace()
    };
    let analyzer = Analyzer::new(manifest);
    let root = workspace_root();

    let (analysis, write_default_json) = if opts.paths.is_empty() {
        match analyzer.analyze_tree(&root) {
            Ok(a) => (a, true),
            Err(e) => {
                eprintln!("ispot-analyze: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut total = Analysis::default();
        for path in &opts.paths {
            let path = if path.is_absolute() {
                path.clone()
            } else {
                root.join(path)
            };
            let result = if path.is_dir() {
                analyzer.analyze_tree(&path)
            } else {
                std::fs::read_to_string(&path).map(|src| {
                    analyzer.analyze_source(&path.to_string_lossy().replace('\\', "/"), &src)
                })
            };
            match result {
                Ok(a) => {
                    total.violations.extend(a.violations);
                    total.unsafe_inventory.extend(a.unsafe_inventory);
                    total.files_scanned += a.files_scanned;
                }
                Err(e) => {
                    eprintln!("ispot-analyze: failed to scan {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        (total, false)
    };

    let json_path = opts
        .json_out
        .clone()
        .or_else(|| write_default_json.then(|| root.join("ANALYZE_unsafe.json")));
    if let Some(json_path) = json_path {
        let json = unsafe_inventory_json(&analysis.unsafe_inventory);
        if let Err(e) = std::fs::write(&json_path, json) {
            eprintln!(
                "ispot-analyze: failed to write {}: {e}",
                json_path.display()
            );
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!("unsafe inventory written to {}", json_path.display());
        }
    }

    let covered = analysis
        .unsafe_inventory
        .iter()
        .filter(|e| e.site.covered())
        .count();
    if !opts.quiet {
        if !analysis.violations.is_empty() {
            print!("{}", render_violations(&analysis.violations));
        }
        println!(
            "ispot-analyze: {} files, {} unsafe sites ({} documented), {} violation(s)",
            analysis.files_scanned,
            analysis.unsafe_inventory.len(),
            covered,
            analysis.violations.len()
        );
    }

    if analysis.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
