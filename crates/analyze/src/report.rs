//! Reporting: human-readable violation listings and the machine-readable
//! unsafe inventory (`ANALYZE_unsafe.json`), written with a tiny hand-rolled
//! JSON emitter so the analyzer stays dependency-free.

use crate::rules::Violation;
use crate::scan::UnsafeSite;
use std::fmt::Write as _;

/// One `unsafe` site attributed to its file, as collected across the tree.
#[derive(Debug, Clone)]
pub struct InventoryEntry {
    /// Workspace-relative path.
    pub file: String,
    /// The underlying site.
    pub site: UnsafeSite,
}

/// Escapes a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the unsafe inventory as pretty-printed JSON.
///
/// Entries are sorted by (file, line) so the artifact is byte-stable across
/// runs; the summary block makes the CI gate's "100% coverage" check a single
/// field comparison.
pub fn unsafe_inventory_json(entries: &[InventoryEntry]) -> String {
    let mut sorted: Vec<&InventoryEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (a.file.as_str(), a.site.line).cmp(&(b.file.as_str(), b.site.line)));
    let covered = sorted.iter().filter(|e| e.site.covered()).count();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"total_sites\": {},", sorted.len());
    let _ = writeln!(out, "  \"covered_sites\": {covered},");
    let _ = writeln!(
        out,
        "  \"coverage\": {},",
        if sorted.is_empty() {
            "1.0".to_string()
        } else {
            format!("{:.4}", covered as f64 / sorted.len() as f64)
        }
    );
    out.push_str("  \"sites\": [\n");
    for (i, e) in sorted.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"in_tests\": {}, \
             \"covered\": {}, \"justification\": {}}}",
            json_escape(&e.file),
            e.site.line,
            e.site.kind.label(),
            e.site.in_tests,
            e.site.covered(),
            match &e.site.justification {
                Some(j) => format!("\"{}\"", json_escape(j)),
                None => "null".to_string(),
            }
        );
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats violations for terminal output, grouped in (file, line) order.
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        let func = v
            .function
            .as_deref()
            .map(|f| format!(" (in fn {f})"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{}:{}: [{}]{} {}",
            v.file,
            v.line,
            v.rule.name(),
            func,
            v.message
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{UnsafeKind, UnsafeSite};

    #[test]
    fn inventory_json_is_sorted_and_escaped() {
        let entries = vec![
            InventoryEntry {
                file: "b.rs".into(),
                site: UnsafeSite {
                    line: 2,
                    kind: UnsafeKind::Block,
                    in_tests: false,
                    justification: Some("bounds \"quoted\" ok".into()),
                },
            },
            InventoryEntry {
                file: "a.rs".into(),
                site: UnsafeSite {
                    line: 9,
                    kind: UnsafeKind::Fn,
                    in_tests: true,
                    justification: None,
                },
            },
        ];
        let json = unsafe_inventory_json(&entries);
        assert!(json.contains("\"total_sites\": 2"));
        assert!(json.contains("\"covered_sites\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        let a = json.find("a.rs").unwrap();
        let b = json.find("b.rs").unwrap();
        assert!(a < b, "entries sorted by file");
    }

    #[test]
    fn empty_inventory_reports_full_coverage() {
        let json = unsafe_inventory_json(&[]);
        assert!(json.contains("\"coverage\": 1.0"));
    }
}
