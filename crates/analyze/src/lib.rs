//! # ispot-analyze
//!
//! Static workspace invariant analyzer for the I-SPOT real-time acoustic
//! perception stack. The runtime counting-allocator tests
//! (`crates/ssl/tests/zero_alloc.rs`, `crates/core/tests/zero_alloc.rs`) prove
//! the hot paths allocation-free for a handful of scenarios; this crate makes
//! the same invariants *statically checked properties of the whole workspace*,
//! so a new branch that panics, allocates, or silently falls back to libm
//! `mul_add` fails CI before it ships.
//!
//! Three rule families (details in [`rules`]):
//!
//! 1. **Hot-path discipline** — panicking and allocating constructs are denied
//!    inside a declarative manifest of hot-path functions ([`manifest`]).
//! 2. **Unsafe audit** — every `unsafe` needs an adjacent `// SAFETY:`
//!    comment; the full inventory is emitted as `ANALYZE_unsafe.json`.
//! 3. **Determinism guards** — bare `mul_add` outside the dispatched SIMD
//!    wrappers and `HashMap` in scoring code are denied.
//!
//! Denials are waived per site with
//! `// analyze: allow(<rule>) — <justification>`.
//!
//! The analyzer is dependency-free by construction: a hand-rolled lexer
//! ([`lexer`]) skips strings, comments and `#[cfg(test)]` regions, and a
//! structural pass ([`scan`]) recovers function spans and unsafe sites.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p ispot-analyze --release
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scan;

pub use manifest::Manifest;
pub use report::InventoryEntry;
pub use rules::{Rule, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All violations, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Every `unsafe` site encountered, for the JSON inventory.
    pub unsafe_inventory: Vec<InventoryEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the scanned tree satisfies every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The analyzer: a manifest plus entry points for single files and trees.
#[derive(Debug)]
pub struct Analyzer {
    manifest: Manifest,
}

impl Analyzer {
    /// Creates an analyzer with the given manifest.
    pub fn new(manifest: Manifest) -> Self {
        Analyzer { manifest }
    }

    /// Analyzes one file's source text under a workspace-relative path.
    pub fn analyze_source(&self, rel_path: &str, source: &str) -> Analysis {
        let lexed = lexer::lex(source);
        let st = scan::scan(&lexed);
        let violations = rules::check_file(rel_path, &lexed, &st, &self.manifest);
        let unsafe_inventory = st
            .unsafe_sites
            .iter()
            .map(|site| InventoryEntry {
                file: rel_path.to_string(),
                site: site.clone(),
            })
            .collect();
        Analysis {
            violations,
            unsafe_inventory,
            files_scanned: 1,
        }
    }

    /// Analyzes every `.rs` file under `root`, excluding build output
    /// (`target/`), VCS metadata, and the analyzer's own violation fixtures.
    pub fn analyze_tree(&self, root: &Path) -> io::Result<Analysis> {
        let mut files = Vec::new();
        collect_rs_files(root, root, &mut files)?;
        files.sort();
        let mut total = Analysis::default();
        for rel in files {
            let source = fs::read_to_string(root.join(&rel))?;
            let rel_str = rel
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            let one = self.analyze_source(&rel_str, &source);
            total.violations.extend(one.violations);
            total.unsafe_inventory.extend(one.unsafe_inventory);
            total.files_scanned += 1;
        }
        total
            .violations
            .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
        Ok(total)
    }
}

/// Paths (relative, `/`-separated) that the tree walk skips.
const EXCLUDED_DIR_NAMES: [&str; 2] = ["target", ".git"];
const EXCLUDED_SUBTREES: [&str; 1] = ["crates/analyze/tests/fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if EXCLUDED_DIR_NAMES.contains(&name.as_ref())
                || EXCLUDED_SUBTREES.iter().any(|s| rel == *s)
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from this crate's manifest directory
/// to the directory whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
