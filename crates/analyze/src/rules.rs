//! Rule matching over the scanned token stream.
//!
//! Three rule families (see ARCHITECTURE.md "Static invariant enforcement"):
//!
//! 1. **Hot-path discipline** — inside manifest-listed functions, constructs
//!    that panic or allocate are denied: `panic!`, `.unwrap()`, `.expect(`,
//!    `vec!`, `.to_vec()`, `.collect(`, `format!`, `Box::new`, `String::from`.
//! 2. **Determinism guards** — bare `f32::mul_add` / `f64::mul_add` calls are
//!    denied outside the SIMD wrapper module (on hosts without the `fma`
//!    target feature they lower to libm calls, a measured ~40× slowdown, and
//!    fused/unfused rounding differs); `F32x8::mul_add::<FUSED>` is
//!    distinguishable because it always carries a const-generic turbofish.
//!    `std::collections::HashMap` is denied in scoring/metrics files whose
//!    iteration order would feed pinned bench numbers.
//! 3. **Unsafe audit** — handled in [`crate::scan`]; a missing `// SAFETY:`
//!    comment surfaces here as an `unsafe_no_safety` violation.
//!
//! Any denial (except `unsafe_no_safety`, whose fix *is* a comment) can be
//! waived with an inline justification on the same or the preceding line:
//!
//! ```text
//! // analyze: allow(expect) — discard is bounded by available(), checked above
//! ```
//!
//! The rule list in `allow(…)` may be comma-separated; the justification after
//! the `—` (also accepted: `--` or `:`) must be non-empty. Unknown rule names
//! in an allow are themselves reported, so waivers cannot rot silently.

use crate::lexer::{Lexed, Tok};
use crate::manifest::{HotScope, Manifest};
use crate::scan::Structure;

/// Rule identifiers, as used in `analyze: allow(<rule>)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `panic!` in a hot-path function.
    Panic,
    /// `.unwrap()` in a hot-path function.
    Unwrap,
    /// `.expect(` in a hot-path function.
    Expect,
    /// An allocating construct in a hot-path function.
    Alloc,
    /// Bare `mul_add` outside the SIMD wrapper module.
    MulAdd,
    /// `HashMap` in ordering-sensitive scoring code.
    HashMap,
    /// `unsafe` without an adjacent `SAFETY:` comment.
    UnsafeNoSafety,
    /// A malformed or unknown `analyze: allow(...)` comment.
    BadAllow,
}

impl Rule {
    /// The stable name used in allow-comments and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Alloc => "alloc",
            Rule::MulAdd => "mul_add",
            Rule::HashMap => "hash_map",
            Rule::UnsafeNoSafety => "unsafe_no_safety",
            Rule::BadAllow => "bad_allow",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "panic" => Rule::Panic,
            "unwrap" => Rule::Unwrap,
            "expect" => Rule::Expect,
            "alloc" => Rule::Alloc,
            "mul_add" => Rule::MulAdd,
            "hash_map" => Rule::HashMap,
            "unsafe_no_safety" => Rule::UnsafeNoSafety,
            _ => return None,
        })
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// Enclosing function, when known.
    pub function: Option<String>,
}

/// Allows parsed from one comment line.
#[derive(Debug, Default, Clone)]
struct LineAllows {
    rules: Vec<Rule>,
    malformed: Option<String>,
}

/// Parses every `analyze: allow(...)` comment in the file into a per-line map.
///
/// The directive must *start* the comment (`// analyze: …`); an `analyze:`
/// mentioned mid-sentence — e.g. documentation describing the grammar — is
/// prose, not a waiver.
fn parse_allows(lexed: &Lexed) -> std::collections::BTreeMap<u32, LineAllows> {
    let mut map = std::collections::BTreeMap::new();
    for (&line, text) in &lexed.comments {
        if let Some(directive) = text.trim_start().strip_prefix("analyze:") {
            let rest = directive.trim_start();
            let mut allows = LineAllows::default();
            if let Some(rest) = rest.strip_prefix("allow(") {
                if let Some(close) = rest.find(')') {
                    let names = &rest[..close];
                    let after = rest[close + 1..].trim_start();
                    let justification = after
                        .strip_prefix('\u{2014}') // em dash
                        .or_else(|| after.strip_prefix("--"))
                        .or_else(|| after.strip_prefix(':'))
                        .map(str::trim);
                    match justification {
                        Some(j) if !j.is_empty() => {
                            for name in names.split(',').map(str::trim) {
                                match Rule::from_name(name) {
                                    Some(r) => allows.rules.push(r),
                                    None => {
                                        allows.malformed =
                                            Some(format!("unknown rule `{name}` in allow-comment"));
                                    }
                                }
                            }
                        }
                        _ => {
                            allows.malformed = Some(
                                "allow-comment is missing a `— justification` clause".to_string(),
                            );
                        }
                    }
                } else {
                    allows.malformed = Some("unterminated allow(...) comment".to_string());
                }
            } else {
                allows.malformed =
                    Some("`analyze:` comment without a recognised directive".to_string());
            }
            map.insert(line, allows);
        }
    }
    map
}

/// Checks every rule against one file. `rel_path` uses `/` separators.
pub fn check_file(
    rel_path: &str,
    lexed: &Lexed,
    st: &Structure,
    manifest: &Manifest,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let allows = parse_allows(lexed);

    for (line, a) in &allows {
        if let Some(msg) = &a.malformed {
            out.push(Violation {
                file: rel_path.to_string(),
                line: *line,
                rule: Rule::BadAllow,
                message: msg.clone(),
                function: None,
            });
        }
    }

    // A waiver covers its own line and any code line directly below the
    // contiguous comment block it belongs to (so multi-line justifications
    // work).
    let allowed = |rule: Rule, line: u32| -> bool {
        let hit = |l: u32| allows.get(&l).is_some_and(|a| a.rules.contains(&rule));
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let flags = lexed.flags(l);
            if !flags.has_comment || flags.has_code {
                break;
            }
            if hit(l) {
                return true;
            }
            l -= 1;
        }
        false
    };

    let hot_scope = manifest.hot_scope(rel_path);
    let in_hot_fn = |idx: usize| -> Option<Option<String>> {
        let scope = hot_scope.as_ref()?;
        let current = st.enclosing_fn(idx);
        match scope {
            HotScope::AllFunctions => Some(current.map(str::to_string)),
            HotScope::Functions(names) => {
                let name = current?;
                names
                    .iter()
                    .any(|n| n == name)
                    .then(|| Some(name.to_string()))
            }
        }
    };

    let toks = &lexed.tokens;
    let prev = |i: usize| -> Option<&Tok> { i.checked_sub(1).and_then(|j| toks.get(j)) };
    let next = |i: usize| -> Option<&Tok> { toks.get(i + 1) };

    let mut push = |rule: Rule, line: u32, message: String, function: Option<String>| {
        if !allowed(rule, line) {
            out.push(Violation {
                file: rel_path.to_string(),
                line,
                rule,
                message,
                function,
            });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        let Some(ident) = t.ident() else { continue };
        if st.in_tests(i) {
            continue;
        }

        // Determinism: bare `mul_add` (no const-generic turbofish) anywhere
        // outside the wrapper module.
        if ident == "mul_add" && !manifest.is_mul_add_wrapper(rel_path) {
            let turbofish = next(i).is_some_and(|n| n.is_punct(':'));
            if !turbofish {
                push(
                    Rule::MulAdd,
                    t.line,
                    "bare `mul_add` lowers to libm without the `fma` target feature (~40x) and \
                     changes rounding; use the dispatched wrappers in `ispot_dsp::simd`"
                        .to_string(),
                    st.enclosing_fn(i).map(str::to_string),
                );
            }
            continue;
        }

        // Ordering: HashMap in scoring/metrics code.
        if ident == "HashMap" && manifest.is_ordered_scoring(rel_path) {
            push(
                Rule::HashMap,
                t.line,
                "HashMap iteration order is nondeterministic; scoring/metrics must use BTreeMap \
                 or sorted Vec so pinned bench numbers stay stable"
                    .to_string(),
                st.enclosing_fn(i).map(str::to_string),
            );
            continue;
        }

        // Hot-path discipline, scoped by the manifest.
        let Some(function) = in_hot_fn(i) else {
            continue;
        };
        let dotted = prev(i).is_some_and(|p| p.is_punct('.'));
        let banged = next(i).is_some_and(|n| n.is_punct('!'));
        let pathed = next(i).is_some_and(|n| n.is_punct(':'));

        let hit = match ident {
            "panic" if banged => Some((Rule::Panic, "`panic!` in a hot path")),
            "unwrap" if dotted => Some((Rule::Unwrap, "`.unwrap()` can panic in a hot path")),
            "expect" if dotted => Some((Rule::Expect, "`.expect()` can panic in a hot path")),
            "vec" if banged => Some((Rule::Alloc, "`vec!` allocates in a hot path")),
            "format" if banged => Some((Rule::Alloc, "`format!` allocates in a hot path")),
            "to_vec" if dotted => Some((Rule::Alloc, "`.to_vec()` allocates in a hot path")),
            "collect" if dotted => Some((Rule::Alloc, "`.collect()` allocates in a hot path")),
            "Box" if pathed && toks.get(i + 3).is_some_and(|n| n.is_ident("new")) => {
                Some((Rule::Alloc, "`Box::new` allocates in a hot path"))
            }
            "String" if pathed && toks.get(i + 3).is_some_and(|n| n.is_ident("from")) => {
                Some((Rule::Alloc, "`String::from` allocates in a hot path"))
            }
            _ => None,
        };
        if let Some((rule, msg)) = hit {
            push(rule, t.line, msg.to_string(), function);
        }
    }

    // Unsafe audit: structural scan already found the sites; uncovered ones
    // are violations (never waivable by allow-comment — write the SAFETY
    // comment instead).
    for site in &st.unsafe_sites {
        if !site.covered() {
            out.push(Violation {
                file: rel_path.to_string(),
                line: site.line,
                rule: Rule::UnsafeNoSafety,
                message: format!(
                    "`unsafe` {} without an adjacent `// SAFETY:` comment",
                    site.kind.label()
                ),
                function: None,
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::scan;

    fn run(path: &str, src: &str, manifest: &Manifest) -> Vec<Violation> {
        let lexed = lex(src);
        let st = scan(&lexed);
        check_file(path, &lexed, &st, manifest)
    }

    #[test]
    fn hot_function_scoping_spares_constructors() {
        let manifest = Manifest {
            hot_paths: vec![crate::manifest::HotPathEntry {
                file: "x.rs".into(),
                scope: HotScope::Functions(vec!["hot".into()]),
            }],
            ..Manifest::default()
        };
        let src = "fn cold() { let v = vec![1]; }\nfn hot() { let v = vec![1]; }\n";
        let v = run("crates/a/src/x.rs", src, &manifest);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, Rule::Alloc);
        assert_eq!(v[0].function.as_deref(), Some("hot"));
    }

    #[test]
    fn allow_comment_waives_and_requires_justification() {
        let manifest = Manifest::all_hot();
        let ok = "fn hot() {\n    // analyze: allow(unwrap) — statically infallible here\n    x.unwrap();\n}\n";
        assert!(run("f.rs", ok, &manifest).is_empty());
        let missing = "fn hot() {\n    // analyze: allow(unwrap)\n    x.unwrap();\n}\n";
        let v = run("f.rs", missing, &manifest);
        assert!(v.iter().any(|v| v.rule == Rule::BadAllow));
        assert!(v.iter().any(|v| v.rule == Rule::Unwrap));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let manifest = Manifest::all_hot();
        let src = "fn hot() {\n    // analyze: allow(unwarp) — typo\n    x.unwrap();\n}\n";
        let v = run("f.rs", src, &manifest);
        assert!(v.iter().any(|v| v.rule == Rule::BadAllow));
    }

    #[test]
    fn turbofish_mul_add_is_the_wrapper_not_the_footgun() {
        let manifest = Manifest::workspace();
        let src = "fn k(w: F32x8, t: F32x8, a: F32x8) -> F32x8 { w.mul_add::<false>(t, a) }\n";
        assert!(run("crates/ssl/src/srp_kernels.rs", src, &manifest).is_empty());
        let bare = "fn k(x: f32) -> f32 { x.mul_add(2.0, 1.0) }\n";
        let v = run("crates/ssl/src/srp_kernels.rs", bare, &manifest);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MulAdd);
        // ... and the wrapper module itself may use it.
        assert!(run("crates/dsp/src/simd.rs", bare, &manifest).is_empty());
    }

    #[test]
    fn hashmap_denied_only_in_scoring_files() {
        let manifest = Manifest::workspace();
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }\n";
        assert!(!run("crates/ssl/src/metrics.rs", src, &manifest).is_empty());
        assert!(run("crates/ssl/src/steering.rs", src, &manifest).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_from_hot_rules_but_not_unsafe_audit() {
        let manifest = Manifest::all_hot();
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); unsafe { y() } }\n}\n";
        let v = run("f.rs", src, &manifest);
        assert!(!v.iter().any(|v| v.rule == Rule::Unwrap));
        assert!(v.iter().any(|v| v.rule == Rule::UnsafeNoSafety));
    }
}
