//! A minimal hand-rolled Rust lexer.
//!
//! The analyzer only needs a *sound approximation* of the token stream: it must
//! never mistake the inside of a string literal, character literal, or comment
//! for code (otherwise `"panic!"` in an error message would trip the hot-path
//! lint), and it must report accurate line numbers. It does not need to
//! understand numeric suffixes, operator precedence, or macro expansion.
//!
//! The lexer therefore produces three things per file:
//!
//! * a flat stream of **code tokens** — identifiers and single-character
//!   punctuation, each tagged with its 1-based line;
//! * a **comment map** — for each line, the concatenated text of every comment
//!   that starts on it (line comments `//`, doc comments `///` and `//!`, and
//!   block comments `/* .. */` including nested ones);
//! * per-line **flags** — whether the line carries any code token, whether it
//!   carries a comment, and whether its first code token is `#` (an attribute
//!   line, which the `// SAFETY:` walk-up is allowed to step over).
//!
//! String handling covers the forms that appear in real Rust: escapes inside
//! `"…"`, byte strings `b"…"`, raw strings `r"…"` / `r#"…"#` with any number of
//! hashes (and `br#"…"#`), character literals `'a'` / `'\n'` versus lifetimes
//! `'a`, and numeric literals (consumed opaquely so `0.5` never emits a `.`
//! punctuation token that could glue onto a method-call pattern).

use std::collections::HashMap;

/// The kind of a code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `(`, `{`, `:`, …).
    Punct(char),
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Returns the identifier text if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            TokKind::Punct(_) => None,
        }
    }

    /// Returns true if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Returns true if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }
}

/// Per-line metadata derived while lexing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineFlags {
    /// The line carries at least one code token (or a literal).
    pub has_code: bool,
    /// The line carries (part of) a comment.
    pub has_comment: bool,
    /// The first code token on the line is `#` — an attribute line.
    pub starts_with_attr: bool,
}

/// The output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Concatenated comment text per 1-based line (joined with a space when a
    /// line holds several comments).
    pub comments: HashMap<u32, String>,
    /// Per-line flags, indexed by 1-based line via [`Lexed::flags`].
    line_flags: Vec<LineFlags>,
}

impl Lexed {
    /// Flags for a 1-based line number; lines past EOF report default flags.
    pub fn flags(&self, line: u32) -> LineFlags {
        self.line_flags
            .get(line as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Comment text recorded for a 1-based line, if any.
    pub fn comment(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }
}

/// Lexes `source` into tokens, comments and line flags.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        let lines = source.lines().count() + 2;
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed {
                tokens: Vec::new(),
                comments: HashMap::new(),
                line_flags: vec![LineFlags::default(); lines],
            },
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn mark_code(&mut self) {
        let line = self.line as usize;
        if let Some(f) = self.out.line_flags.get_mut(line) {
            f.has_code = true;
        }
    }

    fn mark_comment_line(&mut self, line: u32) {
        if let Some(f) = self.out.line_flags.get_mut(line as usize) {
            f.has_comment = true;
        }
    }

    fn record_comment(&mut self, line: u32, text: &str) {
        let entry = self.out.comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text.trim());
    }

    fn push_ident(&mut self, ident: String) {
        self.mark_code();
        self.out.tokens.push(Tok {
            kind: TokKind::Ident(ident),
            line: self.line,
        });
    }

    fn push_punct(&mut self, c: char) {
        let line = self.line;
        let first_on_line = {
            let f = self.out.line_flags[line as usize];
            !f.has_code
        };
        self.mark_code();
        if c == '#' && first_on_line {
            if let Some(f) = self.out.line_flags.get_mut(line as usize) {
                f.starts_with_attr = true;
            }
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' => match self.peek(1) {
                    Some(b'/') => self.line_comment(),
                    Some(b'*') => self.block_comment(),
                    _ => {
                        self.push_punct('/');
                        self.bump();
                    }
                },
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_prefixed_literal(),
                other => {
                    // Multi-byte UTF-8 punctuation (em dashes in comments never
                    // reach here; in code it would be invalid Rust anyway) is
                    // consumed byte-wise and surfaced as a placeholder.
                    let c = if other.is_ascii() {
                        other as char
                    } else {
                        '\u{fffd}'
                    };
                    self.push_punct(c);
                    self.bump();
                    while self.peek(0).is_some_and(|b| (0x80..0xC0).contains(&b)) {
                        self.bump();
                    }
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let text = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        self.mark_comment_line(start_line);
        self.record_comment(start_line, &text);
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated comment: tolerate
            }
        }
        let end_line = self.line;
        let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let text = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .to_string();
        for line in start_line..=end_line {
            self.mark_comment_line(line);
        }
        self.record_comment(start_line, &text);
    }

    /// Consumes a `"…"` string (escape-aware). The opening quote has not been
    /// consumed yet.
    fn string_literal(&mut self) {
        self.mark_code();
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // escaped char, even `\"`
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `r"…"`, `r#"…"#`, … after the prefix identifier was read.
    /// Returns true if a raw string was actually present and consumed.
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump(); // hashes + opening quote
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        matched += 1;
                    }
                    if matched == hashes {
                        return true;
                    }
                }
                Some(_) => {}
                None => return true, // unterminated: tolerate
            }
        }
    }

    /// Distinguishes `'a'` / `'\n'` (char literals) from `'a` (lifetimes).
    fn char_or_lifetime(&mut self) {
        self.mark_code();
        match (self.peek(1), self.peek(2)) {
            (Some(b'\\'), _) => {
                // Escaped char literal: consume until the closing quote.
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char (enough for \n, \\, \'; unicode
                             // escapes close on the quote scan below)
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
            }
            (Some(_), Some(b'\'')) => {
                // Plain one-byte char literal 'x'.
                self.bump();
                self.bump();
                self.bump();
            }
            _ => {
                // Lifetime: consume the quote and the identifier after it.
                self.bump();
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a numeric literal opaquely (so `0.5` emits no `.` token).
    fn number(&mut self) {
        self.mark_code();
        while let Some(b) = self.peek(0) {
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1; // idents cannot contain newlines; no line tracking needed
        }
        let ident = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // Raw / byte string and byte char prefixes: the "identifier" was really
        // a literal prefix.
        match ident.as_str() {
            "r" | "br" | "b" if self.peek(0) == Some(b'"') || self.peek(0) == Some(b'#') => {
                if ident == "b" && self.peek(0) == Some(b'#') {
                    // `b#` is not a literal prefix; fall through to ident.
                } else if ident == "b" {
                    self.mark_code();
                    self.string_literal();
                    return;
                } else if self.raw_string() {
                    self.mark_code();
                    return;
                }
            }
            "b" if self.peek(0) == Some(b'\'') => {
                self.mark_code();
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        self.push_ident(ident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "panic!(\"inside\")"; // unwrap() in a comment
            /* vec![collect] */
            let b = r#"format!("raw")"#;
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "panic" || i == "unwrap" || i == "vec"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner panic!() */ still comment */ fn after() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "after"]);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail() {
        let src = "fn f<'a>(c: char) { let q = '\\''; let n = '\\n'; let x = 'y'; }";
        let ids = idents(src);
        assert!(ids.contains(&"char".to_string()));
        // The lifetime `'a` must not swallow the rest of the signature.
        assert!(ids.contains(&"q".to_string()) && ids.contains(&"x".to_string()));
    }

    #[test]
    fn numbers_do_not_emit_dot_puncts() {
        let src = "let x = 0.5f64; let y = x.to_vec();";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 1, "only the method-call dot survives");
    }

    #[test]
    fn raw_strings_with_hashes_close_on_matching_hash_count() {
        let src = r###"let s = r##"contains "# unwrap() inside"##; fn g() {}"###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(ids.contains(&"g".to_string()));
    }

    #[test]
    fn comment_text_and_flags_are_recorded() {
        let src = "// SAFETY: fine\nunsafe { work() } // trailing\n";
        let lexed = lex(src);
        assert!(lexed.comment(1).unwrap().contains("SAFETY: fine"));
        assert!(lexed.flags(1).has_comment && !lexed.flags(1).has_code);
        assert!(lexed.flags(2).has_code && lexed.flags(2).has_comment);
    }

    #[test]
    fn attribute_lines_are_flagged() {
        let src = "#[cfg(test)]\nfn t() {}\n";
        let lexed = lex(src);
        assert!(lexed.flags(1).starts_with_attr);
        assert!(!lexed.flags(2).starts_with_attr);
    }
}
