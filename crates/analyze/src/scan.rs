//! Structural scanning on top of the raw token stream.
//!
//! This pass recovers just enough structure for the rules to be scoped
//! correctly:
//!
//! * **test regions** — token ranges covered by a `#[cfg(test)]` attribute
//!   (attached to the following item, brace-block or `;`-terminated) or by a
//!   `mod tests { … }` block. Hot-path and determinism rules do not apply
//!   inside them; the unsafe audit still does.
//! * **function spans** — for every `fn name`, the token range of its body, so
//!   hot-path rules can be scoped to a manifest of function names. Nested
//!   functions attribute their tokens to the innermost named function.
//! * **unsafe sites** — every `unsafe` keyword introducing a block, `fn`,
//!   `impl` or `trait`, together with whether an adjacent `// SAFETY:` comment
//!   (same line, or the contiguous comment block directly above, stepping over
//!   attribute lines) justifies it.
//!
//! `#[cfg(not(test))]` is recognised and *not* treated as a test region: the
//! attribute scan requires a `test` identifier that is not preceded by `not`.

use crate::lexer::{Lexed, Tok};

/// Token-index range (half-open) of a region of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index in the region.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    /// Whether a token index falls inside the span.
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// A named function and the token span of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name (identifier after `fn`).
    pub name: String,
    /// Token span of the body, including the outer braces.
    pub body: Span,
}

/// The kind of construct an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }`
    Block,
    /// `unsafe fn …`
    Fn,
    /// `unsafe impl …`
    Impl,
    /// `unsafe trait …`
    Trait,
    /// `unsafe extern …` or other forms
    Other,
}

impl UnsafeKind {
    /// Stable lowercase label used in the JSON inventory.
    pub fn label(&self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Other => "other",
        }
    }
}

/// One `unsafe` occurrence and its SAFETY justification, if found.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// What the keyword introduces.
    pub kind: UnsafeKind,
    /// Whether the site sits inside a test region.
    pub in_tests: bool,
    /// The justification text after `SAFETY:` (or a `# Safety` doc section),
    /// when present.
    pub justification: Option<String>,
}

impl UnsafeSite {
    /// Whether the site carries a justification.
    pub fn covered(&self) -> bool {
        self.justification.is_some()
    }
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct Structure {
    /// Test regions (token spans), non-overlapping, in order.
    pub test_regions: Vec<Span>,
    /// Function body spans, in source order (may nest).
    pub functions: Vec<FnSpan>,
    /// All `unsafe` sites with their audit status.
    pub unsafe_sites: Vec<UnsafeSite>,
}

impl Structure {
    /// Whether the token at `idx` falls inside a test region.
    pub fn in_tests(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(idx))
    }

    /// Name of the innermost function whose body contains `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&str> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(idx))
            .min_by_key(|f| f.body.end - f.body.start)
            .map(|f| f.name.as_str())
    }
}

/// Scans a lexed file into its structural facts.
pub fn scan(lexed: &Lexed) -> Structure {
    let toks = &lexed.tokens;
    let mut st = Structure::default();

    st.test_regions = find_test_regions(toks);
    st.functions = find_functions(toks);
    st.unsafe_sites = find_unsafe_sites(lexed, &st);
    st
}

/// Finds the matching `}` for the `{` at `open`, returning one past it.
/// Falls back to the end of the stream for unbalanced input.
fn matching_brace_end(toks: &[Tok], open: usize) -> usize {
    debug_assert!(toks[open].is_punct('{'));
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    toks.len()
}

/// Detects `#[cfg(test)]`-attributed items and `mod tests { … }` blocks.
fn find_test_regions(toks: &[Tok]) -> Vec<Span> {
    let mut regions: Vec<Span> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(r) = regions.last() {
            if i < r.end {
                i = r.end;
                continue;
            }
        }
        // `#[ … test … ]` attribute (rejecting `not(test)`).
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("test") {
                    saw_test = true;
                } else if t.is_ident("not") {
                    saw_not = true;
                }
                j += 1;
            }
            let attr_has_cfg = toks[i + 2..j].iter().any(|t| t.is_ident("cfg"));
            if attr_has_cfg && saw_test && !saw_not {
                // Skip any further attributes between this one and the item.
                let mut k = j;
                while k < toks.len()
                    && toks[k].is_punct('#')
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 0usize;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // The attributed item extends to its block or terminating `;`.
                let mut m = k;
                let mut bracket = 0i32;
                let end = loop {
                    match toks.get(m) {
                        None => break toks.len(),
                        Some(t) if t.is_punct('{') => break matching_brace_end(toks, m),
                        Some(t) if t.is_punct('(') || t.is_punct('[') => bracket += 1,
                        Some(t) if t.is_punct(')') || t.is_punct(']') => bracket -= 1,
                        Some(t) if t.is_punct(';') && bracket == 0 => break m + 1,
                        Some(_) => {}
                    }
                    m += 1;
                };
                regions.push(Span { start: i, end });
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        // `mod tests { … }` without (or in addition to) the attribute.
        if toks[i].is_ident("mod")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let end = matching_brace_end(toks, i + 2);
            regions.push(Span { start: i, end });
            i = end;
            continue;
        }
        i += 1;
    }
    regions
}

/// Recovers `fn name { body }` spans (including nested functions).
fn find_functions(toks: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Walk the signature for the body `{`; a `;` at bracket depth 0
                // means a trait method declaration without a body.
                let mut j = i + 2;
                let mut bracket = 0i32;
                loop {
                    match toks.get(j) {
                        None => break,
                        Some(t) if t.is_punct('(') || t.is_punct('[') => bracket += 1,
                        Some(t) if t.is_punct(')') || t.is_punct(']') => bracket -= 1,
                        Some(t) if t.is_punct(';') && bracket == 0 => break,
                        Some(t) if t.is_punct('{') => {
                            let end = matching_brace_end(toks, j);
                            fns.push(FnSpan {
                                name: name.to_string(),
                                body: Span { start: j, end },
                            });
                            break;
                        }
                        Some(_) => {}
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    fns
}

/// Locates every `unsafe` keyword and pairs it with a SAFETY justification.
fn find_unsafe_sites(lexed: &Lexed, st: &Structure) -> Vec<UnsafeSite> {
    let toks = &lexed.tokens;
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => UnsafeKind::Block,
            Some(n) if n.is_ident("fn") => UnsafeKind::Fn,
            Some(n) if n.is_ident("impl") => UnsafeKind::Impl,
            Some(n) if n.is_ident("trait") => UnsafeKind::Trait,
            _ => UnsafeKind::Other,
        };
        sites.push(UnsafeSite {
            line: t.line,
            kind,
            in_tests: st.in_tests(i),
            justification: find_safety_comment(lexed, t.line),
        });
    }
    sites
}

/// Searches for a `SAFETY:` comment on the `unsafe` line itself or in the
/// contiguous comment block directly above it (attribute-only lines may sit in
/// between). For `unsafe fn`s documented rustdoc-style, a `# Safety` doc
/// section also counts.
fn find_safety_comment(lexed: &Lexed, line: u32) -> Option<String> {
    let extract = |text: &str| -> Option<String> {
        if let Some(pos) = text.find("SAFETY:") {
            return Some(text[pos + "SAFETY:".len()..].trim().to_string());
        }
        if text.contains("# Safety") {
            return Some(text.trim().to_string());
        }
        None
    };
    if let Some(text) = lexed.comment(line) {
        if let Some(j) = extract(text) {
            return Some(j);
        }
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let flags = lexed.flags(l);
        if flags.has_comment && !flags.has_code {
            if let Some(j) = lexed.comment(l).and_then(extract) {
                return Some(j);
            }
            // keep walking through a multi-line comment block
        } else if flags.starts_with_attr {
            // step over attribute lines like #[target_feature(...)]
        } else {
            break;
        }
        l -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn structure(src: &str) -> (Lexed, Structure) {
        let lexed = lex(src);
        let st = scan(&lexed);
        (lexed, st)
    }
    use crate::lexer::Lexed;

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let (lexed, st) = structure(src);
        let helper_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .unwrap();
        let live_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .unwrap();
        assert!(st.in_tests(helper_idx));
        assert!(!st.in_tests(live_idx));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { work(); }\n";
        let (lexed, st) = structure(src);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .unwrap();
        assert!(!st.in_tests(idx));
    }

    #[test]
    fn cfg_test_on_single_item_covers_only_that_item() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn live() { work(); }\n";
        let (lexed, st) = structure(src);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .unwrap();
        assert!(!st.in_tests(idx));
        let use_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("helpers"))
            .unwrap();
        assert!(st.in_tests(use_idx));
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let (lexed, st) = structure(src);
        let deep = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("deep"))
            .unwrap();
        let shallow = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("shallow"))
            .unwrap();
        assert_eq!(st.enclosing_fn(deep), Some("inner"));
        assert_eq!(st.enclosing_fn(shallow), Some("outer"));
    }

    #[test]
    fn trait_method_declarations_have_no_body_span() {
        let src = "trait T { fn decl(&self) -> usize; }\nfn real() { x(); }";
        let (_, st) = structure(src);
        assert_eq!(st.functions.len(), 1);
        assert_eq!(st.functions[0].name, "real");
    }

    #[test]
    fn unsafe_block_with_safety_above_is_covered() {
        let src = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { go() }\n}\n";
        let (_, st) = structure(src);
        assert_eq!(st.unsafe_sites.len(), 1);
        assert_eq!(
            st.unsafe_sites[0].justification.as_deref(),
            Some("bounds checked above.")
        );
    }

    #[test]
    fn unsafe_same_line_and_uncovered_sites() {
        let src = "fn f() {\n    let x = unsafe { go() }; // SAFETY: inline note\n    unsafe { bare() }\n}\n";
        let (_, st) = structure(src);
        assert_eq!(st.unsafe_sites.len(), 2);
        assert!(st.unsafe_sites[0].covered());
        assert!(!st.unsafe_sites[1].covered());
    }

    #[test]
    fn safety_walkup_steps_over_attribute_lines() {
        let src = "// SAFETY: caller checked cpuid.\n#[target_feature(enable = \"avx2\")]\nunsafe fn kernel() {}\n";
        let (_, st) = structure(src);
        assert_eq!(st.unsafe_sites.len(), 1);
        assert!(st.unsafe_sites[0].covered());
        assert_eq!(st.unsafe_sites[0].kind, UnsafeKind::Fn);
    }
}
